"""Rendering for ``repro watch``: one screen from live progress frames.

Two sources, one dashboard:

- a **frames file** (NDJSON written by ``--progress-out``) for local
  runs — the file is re-read and re-rendered every interval, tolerant
  of a partial final line;
- a **server address** — the ``stats`` op of ``repro.serve/2`` exposes
  per-job live state (each job's most recent frame), which renders as
  a job table.

Every function here is pure (frames/stats in, string out) so the
dashboard is unit-testable without a terminal; the CLI owns the loop,
the clearing escape codes, and the keyboard interrupt.
"""

from __future__ import annotations


def _fmt_bytes(n) -> str:
    try:
        n = float(n)
    except (TypeError, ValueError):
        return "?"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"


def _fmt_ms(ms) -> str:
    try:
        s = float(ms) / 1000.0
    except (TypeError, ValueError):
        return "?"
    if s < 60:
        return f"{s:.1f}s"
    return f"{int(s // 60)}m{s % 60:04.1f}s"


def _hit_rate(frame: dict) -> str:
    hits = frame.get("cache_hits")
    misses = frame.get("cache_misses")
    if not isinstance(hits, int) or not isinstance(misses, int):
        return ""
    total = hits + misses
    if total == 0:
        return ""
    return f"   cache {hits}/{total} ({hits / total:.0%} hit)"


def render_frame(frame: dict) -> str:
    """One frame as a compact single line (the ``--follow`` stream)."""
    parts = [f"[{frame.get('phase', '?')}]"]
    for name in ("rung", "configs", "edges", "frontier", "expansions",
                 "paths", "classes", "outstanding"):
        if name in frame:
            parts.append(f"{name}={frame[name]}")
    if "shard_depths" in frame:
        parts.append("shards=" + "/".join(str(d) for d in frame["shard_depths"]))
    if "shard_steals" in frame:
        parts.append("steals=" + str(sum(frame["shard_steals"])))
    if "msg_bytes" in frame:
        parts.append(f"net={_fmt_bytes(frame['msg_bytes'])}")
    if frame.get("suppressed"):
        parts.append(f"suppressed={frame['suppressed']}")
    hr = _hit_rate(frame)
    if hr:
        parts.append(hr.strip())
    if "wall_ms" in frame:
        parts.append(f"t={_fmt_ms(frame['wall_ms'])}")
    if "wall_rss_bytes" in frame:
        parts.append(f"rss={_fmt_bytes(frame['wall_rss_bytes'])}")
    return "  ".join(parts)


def render_file_dashboard(frames: list[dict], *, source: str = "") -> str:
    """The single-screen dashboard for a frames file."""
    lines = [f"repro watch — {source}" if source else "repro watch"]
    if not frames:
        lines.append("(no frames yet)")
        return "\n".join(lines)
    last = frames[-1]
    phase = last.get("phase", "?")
    done = any(f.get("phase") == "done" for f in frames)
    lines.append(
        f"phase {phase}"
        + (f"   rung {last['rung']}" if "rung" in last else "")
        + ("   [complete]" if done else "")
    )
    counters = []
    for name in ("configs", "edges", "frontier", "expansions", "paths",
                 "classes", "outstanding"):
        if name in last:
            counters.append(f"{name} {last[name]}")
    if counters:
        lines.append("   ".join(counters))
    hr = _hit_rate(last)
    if hr:
        lines.append(hr.strip())
    if "shard_depths" in last:
        depths = last["shard_depths"]
        steals = last.get("shard_steals", [])
        lines.append(
            "shards "
            + " ".join(
                f"w{i}:{d}" + (f"(+{steals[i]} stolen)" if i < len(steals) and steals[i] else "")
                for i, d in enumerate(depths)
            )
        )
    if "msg_bytes" in last:
        net = f"interconnect {_fmt_bytes(last['msg_bytes'])}"
        if last.get("suppressed"):
            net += f"   suppressed {last['suppressed']}"
        lines.append(net)
    wall = []
    if "wall_ms" in last:
        wall.append(f"elapsed {_fmt_ms(last['wall_ms'])}")
    if "wall_rss_bytes" in last:
        wall.append(f"rss {_fmt_bytes(last['wall_rss_bytes'])}")
    if wall:
        lines.append("   ".join(wall))
    lines.append(f"frames {len(frames)}   last seq {last.get('seq', '?')}")
    return "\n".join(lines)


def render_stats_dashboard(stats: dict, *, source: str = "") -> str:
    """The single-screen dashboard for a server's ``stats`` response."""
    lines = [f"repro watch — server {source}".rstrip()]
    counters = stats.get("counters", {})
    lines.append(
        f"in-flight {stats.get('in_flight', '?')}"
        f"   completed {counters.get('serve.jobs_completed', 0)}"
        f"   failed {counters.get('serve.jobs_failed', 0)}"
        f"   restarts {counters.get('serve.worker_restarts', 0)}"
        f"   coalesced {counters.get('serve.coalesced', 0)}"
    )
    store = stats.get("store", {})
    if store:
        lines.append(
            f"store hits {store.get('serve.store_hits', 0)}"
            f"   misses {store.get('serve.store_misses', 0)}"
            f"   evictions {store.get('serve.store_evictions', 0)}"
        )
    jobs = stats.get("jobs", {})
    if not jobs:
        lines.append("(no jobs in flight)")
        return "\n".join(lines)
    lines.append("")
    lines.append(f"{'KEY':<14} {'PHASE':<10} {'KIND':<18} LIVE")
    for key in sorted(jobs):
        job = jobs[key] or {}
        last = job.get("last") or {}
        live = []
        for name in ("configs", "expansions", "paths"):
            if name in last:
                live.append(f"{name}={last[name]}")
        if "wall_ms" in last:
            live.append(f"t={_fmt_ms(last['wall_ms'])}")
        if job.get("followers"):
            live.append(f"followers={job['followers']}")
        lines.append(
            f"{key[:12] + '..' if len(key) > 14 else key:<14} "
            f"{str(last.get('phase', '-')):<10} "
            f"{str(last.get('kind', '-')):<18} "
            + " ".join(live)
        )
    return "\n".join(lines)
