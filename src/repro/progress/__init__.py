"""Live telemetry plane: streamed in-run progress snapshots.

Usage::

    from repro.explore import explore
    from repro.progress import NdjsonSink, ProgressEmitter

    pe = ProgressEmitter(NdjsonSink("run.progress.ndjson"), interval_s=0.5)
    result = explore(program, "stubborn", observers=(pe,))

Every backend (serial BFS, sleep-set DFS, the parallel master, the
resilience ladder, schedules enumeration) feeds an attached emitter
with periodic snapshots; ``repro watch`` renders them live, and the
analysis service streams them to ``repro submit --follow`` clients as
interleaved NDJSON ``progress`` frames (protocol ``repro.serve/2``).
Without an attached emitter the engine skips every site with one
``is not None`` test.
"""

from repro.progress.emitter import (
    SCHEMA_VERSION,
    NdjsonSink,
    PipeSink,
    ProgressEmitter,
    read_frames,
)
from repro.progress.watch import (
    render_file_dashboard,
    render_frame,
    render_stats_dashboard,
)

__all__ = [
    "NdjsonSink",
    "PipeSink",
    "ProgressEmitter",
    "SCHEMA_VERSION",
    "read_frames",
    "render_file_dashboard",
    "render_frame",
    "render_stats_dashboard",
]
