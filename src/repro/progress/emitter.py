"""The live telemetry plane: periodic in-run progress snapshots.

A :class:`ProgressEmitter` is an ordinary engine observer (attach it
through ``observers=``) that the drivers additionally *feed* with
periodic snapshots of their own live state: configs/edges/frontier
depth, expansion counts, expand-cache hit rates, per-shard deque depths
and steal counts, the resilience ladder's current rung, resident-set
size.  Discovery is duck-typed exactly like the metrics registry and
the tracer: the engine looks for an observer exposing a non-None
``progress`` attribute, and without one every emission site is a single
``is not None`` test — the default path stays as fast as before the
telemetry plane existed.

Frames follow the trace plane's wall-clock quarantine: every
scheduling- or wall-clock-dependent field is ``wall_``-prefixed, so
:func:`repro.trace.tracer.strip_wall` of a frame stream is
deterministic for the serial drivers under a count-based cadence
(``every=``).  Parallel-backend fields (shard depths, steal counts) are
operational by nature — scheduling-dependent like
``ExploreStats.steals`` — and are documented as such rather than
quarantined: the *frames* are live operator telemetry, never inputs to
the byte-stable final documents.

Cadence
-------
``interval_s`` emits on a wall-clock period (the live default);
``every=N`` emits every N ticks of :meth:`ProgressEmitter.due`
(deterministic — what the strip-wall tests use).  Unconditional frames
(``start``, ``done``, ladder transitions) bypass the cadence via
:meth:`ProgressEmitter.emit`.

Sinks
-----
Any object with ``emit(frame: dict)`` (and an optional ``close()``).
A sink that raises is disabled for the rest of the run and counted in
``sink_failures`` — live telemetry must never kill an analysis.  The
emitter also retains the most recent frames in a bounded deque for
in-process consumers (tests, the CLI's final flush).
"""

from __future__ import annotations

import os
import sys
import time
from collections import deque

try:
    import resource as _resource
except ImportError:  # non-Unix platforms: RSS telemetry reads 0
    _resource = None

#: Version of the progress-frame vocabulary.
SCHEMA_VERSION = "repro.progress/1"

#: ``getrusage().ru_maxrss`` is kilobytes on Linux, bytes on macOS.
_RU_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024


def _rss_bytes() -> int:
    """Resident set size now (local copy of the explorer's helper — the
    progress plane must not import the engine it instruments)."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    if _resource is not None:
        ru = _resource.getrusage(_resource.RUSAGE_SELF)
        return ru.ru_maxrss * _RU_MAXRSS_SCALE
    return 0


class ProgressEmitter:
    """Observer + snapshot channel; see the module docstring.

    The observer callbacks are deliberate no-ops — the emitter is not a
    per-event consumer; the drivers feed it whole-state snapshots at the
    cadence it negotiates through :meth:`due`.
    """

    def __init__(
        self,
        *sinks,
        interval_s: float = 1.0,
        every: int | None = None,
        clock=time.monotonic,
        keep: int = 512,
        record_wall: bool = True,
    ) -> None:
        #: duck-typed discovery handle (mirrors ``registry``/``tracer``)
        self.progress = self
        self.sinks: list = list(sinks)
        self.interval_s = interval_s
        self.every = every
        self.record_wall = record_wall
        self._clock = clock
        self._t0 = clock()
        self._next_at = self._t0 + interval_s
        self._ticks = 0
        self.seq = 0
        #: sticky fields merged into every frame (ladder rung, job key)
        self.context: dict = {}
        #: frames lost to raising sinks (the sink is then disabled)
        self.sink_failures = 0
        #: recent frames, newest last (bounded)
        self.frames: deque = deque(maxlen=keep)

    # -- observer protocol (no-ops: snapshots, not per-event consumers)
    def on_config(self, graph, cid, config, fresh, status) -> None:
        pass

    def on_edge(self, graph, src, dst, actions) -> None:
        pass

    def on_done(self, graph) -> None:
        pass

    # -- cadence -------------------------------------------------------

    def due(self) -> bool:
        """One tick of the driver's loop; True when a periodic frame is
        owed.  Count-based when ``every`` is set (deterministic), else
        wall-clock (one comparison per tick)."""
        if self.every is not None:
            self._ticks += 1
            if self._ticks >= self.every:
                self._ticks = 0
                return True
            return False
        now = self._clock()
        if now >= self._next_at:
            self._next_at = now + self.interval_s
            return True
        return False

    # -- emission ------------------------------------------------------

    def set_context(self, **fields) -> None:
        """Merge sticky fields into every subsequent frame (a value of
        None removes the key)."""
        for name, value in fields.items():
            if value is None:
                self.context.pop(name, None)
            else:
                self.context[name] = value

    def emit(self, phase: str, **fields) -> dict:
        """Build one frame, fan it to the sinks, and return it."""
        frame = {
            "schema": SCHEMA_VERSION,
            "kind": "progress",
            "seq": self.seq,
            "phase": phase,
        }
        self.seq += 1
        frame.update(self.context)
        frame.update(fields)
        if self.record_wall:
            frame["wall_ms"] = round((self._clock() - self._t0) * 1000.0, 3)
            frame["wall_rss_bytes"] = _rss_bytes()
        self.frames.append(frame)
        if self.sinks:
            dead = []
            for sink in self.sinks:
                try:
                    sink.emit(frame)
                except Exception:
                    dead.append(sink)
                    self.sink_failures += 1
            if dead:
                self.sinks = [s for s in self.sinks if s not in dead]
        return frame

    def close(self) -> None:
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is None:
                continue
            try:
                close()
            except Exception:
                pass


class NdjsonSink:
    """One frame per line, canonical JSON, flushed per frame — the
    file format ``repro watch`` tails for non-serve runs."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")

    def emit(self, frame: dict) -> None:
        from repro.trace.tracer import encode_record

        self._fh.write(encode_record(frame) + "\n")
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


class PipeSink:
    """Ship frames over a :mod:`multiprocessing` connection — the serve
    worker's end of the server's progress pipe."""

    def __init__(self, conn) -> None:
        self.conn = conn

    def emit(self, frame: dict) -> None:
        self.conn.send(frame)

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass


def read_frames(path: str) -> list[dict]:
    """Parse an NDJSON frames file, skipping malformed lines (the tail
    of a live file may hold a partial write)."""
    import json

    frames = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except ValueError:
                    continue
                if isinstance(obj, dict):
                    frames.append(obj)
    except OSError:
        return []
    return frames
