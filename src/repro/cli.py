"""Command-line interface.

::

    repro parse FILE              # check & disassemble
    repro run FILE [--scheduler S --seed N --trace]
    repro explore FILE [--policy P --coarsen --sleep]
    repro explore FILE --checkpoint PATH --checkpoint-every N
    repro explore FILE --resume PATH
    repro explore FILE --resilient [--time-limit S --max-rss-mb M]
    repro explore FILE --trace-out T.jsonl --metrics-out M.json
    repro explore FILE --progress-out P.ndjson    # live telemetry frames
    repro schedules FILE [--sample N --seed S --out SCHED.json]
    repro schedules FILE --replay SCHED.json
    repro report T.jsonl [--metrics M.json --out R.html --perfetto P.json]
    repro analyze FILE            # the full §5/§7 report
    repro fold FILE [--clans --domain D]
    repro corpus                  # list bundled programs
    repro demo NAME               # analyze a bundled program
    repro serve ADDRESS --store DIR      # crash-safe analysis service
    repro submit FILE ADDRESS [--policy P --deadline S --follow]
    repro submit ADDRESS --ping | --stats | --shutdown
    repro watch P.ndjson | repro watch ADDRESS    # live dashboard
    repro store gc --store DIR --max-bytes 256m --max-age 7d

``FILE`` may be a path or ``corpus:NAME`` for a bundled program.

Library errors (:class:`~repro.util.errors.ReproError`) exit with code
2 and a one-line message — front-end errors name their source location.
"""

from __future__ import annotations

import argparse
import sys

from repro.explore import ExploreOptions, explore
from repro.lang import parse_program
from repro.semantics import StepOptions, run_program
from repro.util.errors import ReproError, SourceError


def _load(spec: str):
    from repro.programs.corpus import CORPUS

    if spec.startswith("corpus:"):
        name = spec.split(":", 1)[1]
        if name not in CORPUS:
            raise SystemExit(
                f"unknown corpus program {name!r}; try: {', '.join(sorted(CORPUS))}"
            )
        return CORPUS[name]()
    with open(spec, "r", encoding="utf-8") as fh:
        return parse_program(fh.read())


def _progress_emitter(args):
    """Build the ``--progress-out`` NDJSON-backed emitter (or None)."""
    if not args.progress_out:
        return None
    from repro.progress import NdjsonSink, ProgressEmitter

    try:
        sink = NdjsonSink(args.progress_out)
    except OSError as exc:
        raise ReproError(
            f"cannot write progress frames {args.progress_out!r}: {exc}"
        )
    return ProgressEmitter(
        sink,
        interval_s=args.progress_interval,
        every=args.progress_every,
    )


def _parse_bytes(text: str) -> int:
    """``500k`` / ``64m`` / ``2g`` → bytes (binary multiples)."""
    t = text.strip().lower()
    mult = 1
    if t and t[-1] in "kmg":
        mult = {"k": 2**10, "m": 2**20, "g": 2**30}[t[-1]]
        t = t[:-1]
    try:
        return int(float(t) * mult)
    except ValueError:
        raise ReproError(
            f"cannot parse size {text!r} (use e.g. 500k, 64m, 2g)"
        )


def _parse_age(text: str) -> float:
    """``90s`` / ``15m`` / ``6h`` / ``7d`` → seconds."""
    t = text.strip().lower()
    mult = 1.0
    if t and t[-1] in "smhd":
        mult = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}[t[-1]]
        t = t[:-1]
    try:
        return float(t) * mult
    except ValueError:
        raise ReproError(
            f"cannot parse age {text!r} (use e.g. 90s, 15m, 6h, 7d)"
        )


def _cmd_parse(args) -> int:
    prog = _load(args.file)
    print(prog.disassemble())
    return 0


def _cmd_run(args) -> int:
    prog = _load(args.file)
    result = run_program(
        prog,
        scheduler=args.scheduler,
        seed=args.seed,
        keep_trace=args.trace,
    )
    if args.trace:
        for a in result.trace:
            print(f"  pid={a.pid} {a.label} ({a.kind})")
    status = (
        "faulted: " + (result.config.fault or "")
        if result.faulted
        else ("deadlocked" if result.deadlocked else "terminated")
    )
    print(f"{status} after {result.steps} steps")
    print("globals:", dict(zip(prog.global_names, result.config.globals)))
    return 1 if result.faulted else 0


#: CLI policy name -> degradation-ladder rung to start at.
_POLICY_RUNG = {
    "full": "full",
    "stubborn": "stubborn",
    "stubborn-proc": "stubborn-proc+coarsen",
}


def _cmd_explore(args) -> int:
    prog = _load(args.file)
    max_rss = args.max_rss_mb * 2**20 if args.max_rss_mb else None
    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
    # --jobs N with N > 1 implies the parallel backend; --backend wins
    # when given explicitly
    backend = args.backend or ("parallel" if args.jobs > 1 else "serial")
    opts = ExploreOptions(
        policy=args.policy,
        coarsen=args.coarsen,
        sleep=args.sleep,
        backend=backend,
        jobs=args.jobs,
        max_configs=args.max_configs,
        time_limit_s=args.time_limit,
        max_rss_bytes=max_rss,
        memo=not args.no_memo,
    )

    observers: list = []
    metrics_ob = None
    if args.metrics_out:
        from repro.metrics import MetricsObserver

        metrics_ob = MetricsObserver()
        observers.append(metrics_ob)
    tracer = None
    trace_sink = None
    if args.trace_out:
        from repro.trace import JsonlFileSink, TraceRecorder, Tracer

        try:
            trace_sink = JsonlFileSink(args.trace_out)
        except OSError as exc:
            raise ReproError(
                f"cannot write trace {args.trace_out!r}: {exc}"
            )
        tracer = Tracer(trace_sink)
        observers.append(TraceRecorder(tracer))
    progress = _progress_emitter(args)
    if progress is not None:
        observers.append(progress)

    try:
        if args.resilient:
            from repro.resilience import Budgets, explore_resilient

            rr = explore_resilient(
                prog,
                budgets=Budgets(
                    max_configs=args.max_configs,
                    time_limit_s=args.time_limit,
                    max_rss_bytes=max_rss,
                ),
                start=_POLICY_RUNG[args.policy],
                backend=backend,
                jobs=args.jobs,
                observers=tuple(observers),
            )
            for line in rr.trail:
                print(f"escalated {line}")
            print(
                f"answered by rung {rr.rung}"
                + ("" if rr.exact else " (approximate)")
            )
            if rr.fold is not None:
                print(
                    f"abstract fold: states={rr.fold.stats.num_states} "
                    f"edges={rr.fold.stats.num_edges} "
                    f"widenings={rr.fold.stats.widenings}"
                )
            result = rr.result
        else:
            checkpointer = None
            if args.checkpoint:
                from repro.resilience import Checkpointer

                checkpointer = Checkpointer(
                    args.checkpoint, every=args.checkpoint_every
                )
            result = explore(
                prog,
                options=opts,
                checkpointer=checkpointer,
                resume_from=args.resume,
                observers=tuple(observers),
            )
        s = result.stats
        truncated = (
            f" TRUNCATED({s.truncation_reason or 'budget'})"
            if s.truncated else ""
        )
        resumed = " resumed" if s.resumed else ""
        print(
            f"policy={result.options.describe()} configs={s.num_configs} "
            f"edges={s.num_edges} "
            f"terminated={s.num_terminated} deadlocks={s.num_deadlocks} "
            f"faults={s.num_faults}" + truncated + resumed
        )
        if s.stubborn is not None and s.stubborn.steps:
            print(
                f"stubborn: mean chosen/enabled = "
                f"{s.stubborn.mean_reduction:.3f}, "
                f"singleton steps = "
                f"{s.stubborn.singleton_steps}/{s.stubborn.steps}"
            )
        for name_vals in sorted(result.terminal_globals()):
            print("  outcome:", dict(zip(prog.global_names, name_vals)))
        if args.witness:
            from repro.analyses.witness import (
                deadlock_witness,
                fault_witness,
            )

            finder = (
                deadlock_witness
                if args.witness == "deadlock"
                else fault_witness
            )
            w = finder(result)
            if w is None:
                print(f"no {args.witness} reachable")
                if tracer is not None:
                    tracer.event("witness.absent", target=args.witness)
            else:
                # replay the witness as a canonical schedule and check
                # the predicate actually holds where it lands — the
                # trace event is a *checked* counterexample
                from repro.schedules import verified_witness_schedule

                schedule = verified_witness_schedule(result, w, args.witness)
                print(f"shortest execution reaching a {args.witness}:")
                print(w.describe())
                print(
                    "replay-verified: reaches configuration digest "
                    f"{schedule.final_digest:#018x}"
                )
                if tracer is not None:
                    tracer.event(
                        "witness.found",
                        target=args.witness,
                        length=len(w.steps),
                        steps=[
                            f"pid={pid} {label}" for pid, label in w.steps
                        ],
                        verified=True,
                        final_digest=f"{schedule.final_digest:#018x}",
                    )
    finally:
        if trace_sink is not None:
            trace_sink.close()
        if progress is not None:
            progress.close()

    if metrics_ob is not None:
        import json

        from repro.metrics import SCHEMA_VERSION as METRICS_SCHEMA

        try:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                json.dump(
                    {
                        "schema": METRICS_SCHEMA,
                        "metrics": metrics_ob.registry.snapshot(),
                    },
                    fh,
                    indent=1,
                    sort_keys=True,
                )
                fh.write("\n")
        except OSError as exc:
            raise ReproError(
                f"cannot write metrics {args.metrics_out!r}: {exc}"
            )
    return 0


def _cmd_schedules(args) -> int:
    import json

    prog = _load(args.file)

    from repro.schedules import (
        DEFAULT_MAX_PATHS,
        DEFAULT_MAX_SCHEDULES,
        dumps_document,
        generate,
        schedule_document,
        schedules_from_document,
        verify_schedule,
        verify_set,
        write_schedule_perfetto,
        write_schedules,
    )

    if args.replay:
        # replay mode: run a previously emitted scheduler script
        try:
            with open(args.replay, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        except OSError as exc:
            raise ReproError(f"cannot read {args.replay!r}: {exc}")
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"{args.replay}: not a schedule document ({exc.msg})"
            )
        schedules = schedules_from_document(document)
        for i, schedule in enumerate(schedules):
            verify_schedule(prog, schedule)
            print(
                f"schedule {i}: ok ({schedule.num_actions} actions, "
                f"{schedule.status}, digest "
                f"{schedule.final_digest:#018x})"
            )
        print(f"replayed {len(schedules)} schedules: all reached their "
              "recorded configuration digests")
        return 0

    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
    backend = args.backend or ("parallel" if args.jobs > 1 else "serial")
    opts = ExploreOptions(
        policy=args.policy,
        coarsen=args.coarsen,
        sleep=args.sleep,
        backend=backend,
        jobs=args.jobs,
        max_configs=args.max_configs,
    )

    observers: list = []
    metrics_ob = None
    if args.metrics_out:
        from repro.metrics import MetricsObserver

        metrics_ob = MetricsObserver()
        observers.append(metrics_ob)
    tracer = None
    trace_sink = None
    if args.trace_out:
        from repro.trace import JsonlFileSink, TraceRecorder, Tracer

        try:
            trace_sink = JsonlFileSink(args.trace_out)
        except OSError as exc:
            raise ReproError(
                f"cannot write trace {args.trace_out!r}: {exc}"
            )
        tracer = Tracer(trace_sink)
        observers.append(TraceRecorder(tracer))
    progress = _progress_emitter(args)
    if progress is not None:
        observers.append(progress)

    try:
        result = explore(prog, options=opts, observers=tuple(observers))
        registry = metrics_ob.registry if metrics_ob is not None else None
        sset = generate(
            result,
            sample=args.sample,
            seed=args.seed,
            max_paths=args.max_paths or DEFAULT_MAX_PATHS,
            max_schedules=args.max_schedules or DEFAULT_MAX_SCHEDULES,
            metrics=registry,
            progress=progress,
        )
        replayed = None
        if not args.no_verify:
            replayed = verify_set(result, sset, metrics=registry)
        mode = (
            f"sample={sset.sample} seed={sset.seed}"
            if sset.sample is not None else "exhaustive"
        )
        coverage = (
            f"edge_coverage={sset.edge_coverage:.3f}"
            + (
                f" class_coverage={sset.class_coverage:.3f}"
                if sset.class_coverage is not None
                else " class_coverage=unknown"
            )
        )
        print(
            f"policy={sset.policy} {mode} classes={sset.num_classes} "
            f"paths={sset.num_paths} {coverage}"
            + (" TRUNCATED" if sset.truncated else "")
        )
        if sset.cycles_skipped:
            print(f"  busy-wait cycles skipped: {sset.cycles_skipped}")
        if replayed is not None:
            print(
                f"replay-verified {replayed}/{sset.num_classes} schedules "
                "against the explorer's configuration digests"
            )
        if tracer is not None:
            tracer.event(
                "schedules.done",
                classes=sset.num_classes,
                paths=sset.num_paths,
                edges_covered=sset.edges_covered,
                edge_coverage=sset.edge_coverage,
                class_coverage=sset.class_coverage,
                cycles_skipped=sset.cycles_skipped,
                truncated=sset.truncated,
                sample=sset.sample,
                seed=sset.seed if sset.sample is not None else None,
                replays=replayed,
            )
    finally:
        if trace_sink is not None:
            trace_sink.close()
        if progress is not None:
            progress.close()

    if args.out:
        try:
            write_schedules(args.out, sset)
        except OSError as exc:
            raise ReproError(f"cannot write {args.out!r}: {exc}")
        print(f"wrote {args.out} ({sset.num_classes} schedules)")
    if args.perfetto:
        try:
            write_schedule_perfetto(args.perfetto, sset)
        except OSError as exc:
            raise ReproError(
                f"cannot write Perfetto export {args.perfetto!r}: {exc}"
            )
        print(f"wrote {args.perfetto} (open at https://ui.perfetto.dev)")
    if args.print_schedules:
        document = schedule_document(sset)
        print(dumps_document(document), end="")
    if metrics_ob is not None:
        from repro.metrics import SCHEMA_VERSION as METRICS_SCHEMA

        try:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                json.dump(
                    {
                        "schema": METRICS_SCHEMA,
                        "metrics": metrics_ob.registry.snapshot(),
                    },
                    fh,
                    indent=1,
                    sort_keys=True,
                )
                fh.write("\n")
        except OSError as exc:
            raise ReproError(
                f"cannot write metrics {args.metrics_out!r}: {exc}"
            )
    return 0


def _cmd_report(args) -> int:
    import json

    from repro.trace import read_trace, render_report, write_chrome_trace

    records = read_trace(args.trace)
    metrics = None
    if args.metrics:
        try:
            with open(args.metrics, "r", encoding="utf-8") as fh:
                dump = json.load(fh)
        except OSError as exc:
            raise ReproError(f"cannot read metrics {args.metrics!r}: {exc}")
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"{args.metrics}: not a metrics dump ({exc.msg})"
            )
        metrics = dump.get("metrics") if isinstance(dump, dict) else None
        if metrics is None:
            raise ReproError(
                f"{args.metrics}: missing 'metrics' key (expected the JSON "
                "written by 'repro explore --metrics-out')"
            )
    progress_frames = None
    if args.progress:
        from repro.progress import read_frames

        progress_frames = read_frames(args.progress)
        if not progress_frames:
            raise ReproError(
                f"{args.progress}: no progress frames (expected the NDJSON "
                "written by 'repro explore --progress-out')"
            )
    title = args.title or f"repro run report: {args.trace}"
    html = render_report(
        trace_records=records, metrics=metrics,
        progress_frames=progress_frames, title=title,
    )
    try:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(html)
    except OSError as exc:
        raise ReproError(f"cannot write report {args.out!r}: {exc}")
    print(f"wrote {args.out} ({len(records)} trace records)")
    if args.perfetto:
        try:
            write_chrome_trace(args.perfetto, records)
        except OSError as exc:
            raise ReproError(
                f"cannot write Perfetto export {args.perfetto!r}: {exc}"
            )
        print(f"wrote {args.perfetto} (open at https://ui.perfetto.dev)")
    return 0


def _cmd_analyze(args) -> int:
    from repro.analyses.report import full_report

    prog = _load(args.file)
    opts = ExploreOptions(
        policy="full",
        step=StepOptions(gc=False, track_procstrings=True),
        max_configs=args.max_configs,
    )
    result = explore(prog, options=opts)
    print(full_report(prog, result))
    return 0


def _cmd_fold(args) -> int:
    from repro.absdomain import (
        AbsValueDomain,
        FlatConstDomain,
        IntervalDomain,
        KSetDomain,
        ParityDomain,
        SignDomain,
    )
    from repro.abstraction import AbsOptions, fold_explore, taylor_key

    prog = _load(args.file)
    num = {
        "const": FlatConstDomain,
        "sign": SignDomain,
        "interval": IntervalDomain,
        "parity": ParityDomain,
        "kset": KSetDomain,
    }[args.domain]()
    res = fold_explore(
        prog, AbsOptions(dom=AbsValueDomain(num), clan_fold=args.clans),
        key_fn=taylor_key,
    )
    print(
        f"folded states={res.stats.num_states} edges={res.stats.num_edges} "
        f"widenings={res.stats.widenings} (domain={args.domain}, "
        f"clans={'on' if args.clans else 'off'})"
    )
    for w in res.warnings:
        print("  warning:", w)
    return 0


def _cmd_dot(args) -> int:
    prog = _load(args.file)
    opts = ExploreOptions(
        policy=args.policy, coarsen=args.coarsen, max_configs=args.max_nodes + 1
    )
    result = explore(prog, options=opts)
    print(result.graph.to_dot(max_nodes=args.max_nodes))
    return 0


def _cmd_optimize(args) -> int:
    from repro.analyses.optimize import optimize_program

    prog = _load(args.file)
    result = optimize_program(prog)
    print(result.describe())
    print()
    print(result.source)
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import format_summary, run_bench, write_report

    def progress(name, combo, entry):
        if args.verbose:
            print(
                f"  {name:<24} {combo:<24} configs={entry['configs']:<7} "
                f"wall={entry['wall_time_s']:.3f}s"
            )

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()

    report = run_bench(
        programs=args.programs or None,
        smoke=args.smoke,
        max_configs=args.max_configs,
        time_limit_s=args.time_limit,
        watchdog_s=args.watchdog,
        jobs=args.jobs or (),
        serve_load=args.serve_load,
        schedules_bench=args.schedules,
        progress=progress,
        profiler=profiler,
    )
    write_report(report, args.out)
    print(format_summary(report))
    print(f"wrote {args.out}")
    if profiler is not None:
        import os

        stem, _ = os.path.splitext(args.out)
        pstats_path = stem + ".pstats"
        try:
            profiler.dump_stats(pstats_path)
        except OSError as exc:
            raise ReproError(f"cannot write profile {pstats_path!r}: {exc}")
        print(
            f"wrote {pstats_path} (inspect with "
            f"'python -m pstats {pstats_path}')"
        )
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.metrics import MetricsRegistry
    from repro.serve import ReproServer, ResultStore, ServeOptions

    registry = MetricsRegistry()
    store = ResultStore(args.store, metrics=registry)
    server = ReproServer(
        store,
        ServeOptions(
            max_pending=args.max_pending,
            max_active=args.max_active,
            max_restarts=args.max_restarts,
            checkpoint_every=args.checkpoint_every,
            worker_watchdog_s=args.watchdog,
            heartbeat_s=args.heartbeat if args.heartbeat > 0 else None,
            progress_interval_s=args.progress_interval,
        ),
        metrics=registry,
    )
    if args.drill_worker_kill:
        # fault drill (CI's watch-smoke job): SIGKILL the first N
        # workers mid-run; shared=True spans the forked workers, so
        # each kill fires once and the restarted worker runs clean
        from repro.resilience import chaos

        inj = chaos.FaultInjector()
        inj.arm(
            "serve-worker-kill", times=args.drill_worker_kill, shared=True
        )
        chaos.install(inj)

    def ready() -> None:
        # parseable by scripts (and the CI smoke job) that must wait
        # for the socket before submitting
        print(f"serving on {args.address} (store: {args.store})", flush=True)

    asyncio.run(server.serve(args.address, ready=ready))
    print("server stopped")
    return 0


def _cmd_submit(args) -> int:
    import json

    from repro.serve import request

    ops = [op for op in ("ping", "stats", "shutdown") if getattr(args, op)]
    if len(ops) > 1:
        raise ReproError("pass at most one of --ping/--stats/--shutdown")
    if ops:
        # control ops take no program: `repro submit ADDR --ping` puts
        # the address in the FILE slot
        address = args.address or args.file
        if address is None:
            raise ReproError("missing server ADDRESS")
        response = request(address, {"op": ops[0]}, timeout=args.timeout)
        print(json.dumps(response, indent=1, sort_keys=True))
        return 0 if response.get("ok") else 2

    if args.file is None or args.address is None:
        raise ReproError("usage: repro submit FILE ADDRESS [options]")
    if args.file.startswith("corpus:"):
        program = {"kind": "corpus", "name": args.file.split(":", 1)[1]}
    else:
        try:
            with open(args.file, "r", encoding="utf-8") as fh:
                program = {"kind": "source", "text": fh.read()}
        except OSError as exc:
            raise ReproError(f"cannot read {args.file!r}: {exc}")
    options: dict = {
        "policy": args.policy,
        "coarsen": args.coarsen,
        "sleep": args.sleep,
        "max_configs": args.max_configs,
    }
    if args.no_memo:
        options["memo"] = False
    op = "schedules" if args.schedules else "submit"
    req: dict = {"op": op, "program": program, "options": options}
    if args.schedules:
        sched: dict = {}
        if args.sample is not None:
            sched["sample"] = args.sample
            sched["seed"] = args.seed
        req["schedules"] = sched
    if args.deadline is not None:
        req["deadline_s"] = args.deadline
    if args.follow:
        from repro.serve import request_stream
        from repro.progress import render_frame

        def on_frame(obj: dict) -> None:
            frame = obj.get("frame")
            if isinstance(frame, dict):
                print(f"progress {render_frame(frame)}", flush=True)

        response = request_stream(
            args.address, req, timeout=args.timeout, on_frame=on_frame
        )
    else:
        response = request(args.address, req, timeout=args.timeout)
    print(json.dumps(response, indent=1, sort_keys=True))
    if response.get("ok"):
        return 0
    # overload is transient back-off, not an error in the request
    return 3 if response.get("overloaded") else 2


def _cmd_watch(args) -> int:
    import os
    import time

    from repro.progress import (
        read_frames,
        render_file_dashboard,
        render_stats_dashboard,
    )

    file_mode = os.path.isfile(args.target)

    def render() -> str:
        if file_mode:
            return render_file_dashboard(
                read_frames(args.target), source=args.target
            )
        from repro.serve import request

        stats = request(
            args.target, {"op": "stats"}, timeout=args.timeout
        )
        if not stats.get("ok"):
            err = stats.get("error", {})
            raise ReproError(
                f"stats request failed: {err.get('message', stats)}"
            )
        return render_stats_dashboard(stats, source=args.target)

    if args.once:
        print(render())
        return 0
    clear = "\x1b[2J\x1b[H" if sys.stdout.isatty() else ""
    try:
        while True:
            screen = render()
            print(f"{clear}{screen}", flush=True)
            if file_mode and "[complete]" in screen:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_store_gc(args) -> int:
    from repro.serve import ResultStore

    max_bytes = _parse_bytes(args.max_bytes) if args.max_bytes else None
    max_age = _parse_age(args.max_age) if args.max_age else None
    if max_bytes is None and max_age is None:
        raise ReproError("pass --max-bytes and/or --max-age")
    store = ResultStore(args.store)
    out = store.gc(max_bytes=max_bytes, max_age_s=max_age)
    print(
        f"evicted {out['evicted_entries']} entries + "
        f"{out['evicted_caches']} caches "
        f"({out['freed_bytes']} bytes freed); "
        f"kept {out['kept_items']} items ({out['kept_bytes']} bytes)"
    )
    return 0


def _cmd_bench_diff(args) -> int:
    from repro.bench import diff_reports, load_report

    new = load_report(args.new)
    baseline = load_report(args.baseline)
    drift = diff_reports(new, baseline)
    if drift:
        print(f"bench drift vs {args.baseline}:")
        for line in drift:
            print(f"  {line}")
        return 1
    shared = sorted(set(new["programs"]) & set(baseline["programs"]))
    print(
        f"no drift: {len(shared)} shared programs match {args.baseline} "
        "on all deterministic fields"
    )
    return 0


def _cmd_corpus(_args) -> int:
    from repro.programs.corpus import CORPUS

    for name in CORPUS:
        print(name)
    return 0


def _cmd_demo(args) -> int:
    args.file = f"corpus:{args.name}"
    args.max_configs = 200_000
    return _cmd_analyze(args)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Analyze shared-memory cobegin programs "
        "(Chow & Harrison, ICPP 1992 reproduction).",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("parse", help="check and disassemble a program")
    p.add_argument("file")
    p.set_defaults(fn=_cmd_parse)

    p = sub.add_parser("run", help="execute under a scheduler")
    p.add_argument("file")
    p.add_argument("--scheduler", default="roundrobin",
                   choices=["roundrobin", "random", "first"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", action="store_true")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("explore", help="build the configuration graph")
    p.add_argument("file")
    p.add_argument("--policy", default="stubborn",
                   choices=["full", "stubborn", "stubborn-proc"])
    p.add_argument("--coarsen", action="store_true")
    p.add_argument("--sleep", action="store_true")
    p.add_argument("--backend", choices=["serial", "parallel"], default=None,
                   help="exploration driver (default: serial, or parallel "
                        "when --jobs > 1)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the parallel backend")
    p.add_argument("--max-configs", type=int, default=1_000_000)
    p.add_argument("--time-limit", type=float, default=None,
                   help="wall-clock budget in seconds (graceful truncation)")
    p.add_argument("--max-rss-mb", type=int, default=None,
                   help="peak-memory budget in MiB (graceful truncation)")
    p.add_argument("--checkpoint", metavar="PATH", default=None,
                   help="snapshot the search to PATH periodically")
    p.add_argument("--checkpoint-every", type=int, default=1000,
                   metavar="N", help="expansions between snapshots")
    p.add_argument("--resume", metavar="PATH", default=None,
                   help="continue from a checkpoint (same program & policy)")
    p.add_argument("--no-memo", action="store_true",
                   help="disable footprint memoization of per-process "
                        "expansions (the incremental engine; results are "
                        "identical either way — this is a perf ablation)")
    p.add_argument("--resilient", action="store_true",
                   help="degradation ladder: on budget exhaustion escalate "
                   "to cheaper sound policies, then abstract folding")
    p.add_argument("--witness", choices=["deadlock", "fault"], default=None,
                   help="print the shortest execution reaching the event")
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="dump the run's metrics registry as JSON to PATH")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="stream a structured span/event trace (JSONL) to "
                        "PATH; render it with 'repro report'")
    p.add_argument("--progress-out", metavar="PATH", default=None,
                   help="stream live progress frames (NDJSON) to PATH; "
                        "tail them with 'repro watch PATH'")
    p.add_argument("--progress-interval", type=float, default=1.0,
                   metavar="S", help="seconds between progress frames "
                        "(default: 1.0)")
    p.add_argument("--progress-every", type=int, default=None, metavar="N",
                   help="emit a frame every N driver steps instead of on "
                        "a wall-clock interval (deterministic cadence)")
    p.set_defaults(fn=_cmd_explore)

    p = sub.add_parser(
        "schedules",
        help="generate one replay-verified canonical schedule per "
        "equivalence class of the reduced graph (or a seeded sample), "
        "with coverage accounting",
    )
    p.add_argument("file")
    p.add_argument("--policy", default="stubborn",
                   choices=["full", "stubborn", "stubborn-proc"])
    p.add_argument("--coarsen", action="store_true")
    p.add_argument("--sleep", action="store_true")
    p.add_argument("--backend", choices=["serial", "parallel"], default=None,
                   help="exploration driver (default: serial, or parallel "
                        "when --jobs > 1)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for the parallel backend")
    p.add_argument("--max-configs", type=int, default=1_000_000)
    p.add_argument("--sample", type=int, default=None, metavar="N",
                   help="seeded sampling: stop after N distinct classes "
                        "(without-replacement walk; bit-deterministic "
                        "per --seed)")
    p.add_argument("--seed", type=int, default=0,
                   help="sampling seed (default: 0)")
    p.add_argument("--max-paths", type=int, default=None,
                   help="path-enumeration budget (explicit truncation "
                        "accounting beyond it)")
    p.add_argument("--max-schedules", type=int, default=None,
                   help="cap on emitted classes in exhaustive mode")
    p.add_argument("--no-verify", action="store_true",
                   help="skip replaying each schedule against the "
                        "explorer-recorded configuration digest")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write the scheduler-script JSON document to PATH")
    p.add_argument("--perfetto", metavar="PATH", default=None,
                   help="export the schedules as Perfetto tracks")
    p.add_argument("--print", dest="print_schedules", action="store_true",
                   help="print the schedule document to stdout")
    p.add_argument("--replay", metavar="SCHED.json", default=None,
                   help="replay a previously emitted schedule document "
                        "against FILE instead of generating")
    p.add_argument("--metrics-out", metavar="PATH", default=None,
                   help="dump the run's metrics registry as JSON to PATH")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="stream a structured trace (JSONL) to PATH; the "
                        "schedules.done event feeds 'repro report'")
    p.add_argument("--progress-out", metavar="PATH", default=None,
                   help="stream live progress frames (NDJSON) to PATH "
                        "(exploration and enumeration both feed it)")
    p.add_argument("--progress-interval", type=float, default=1.0,
                   metavar="S", help="seconds between progress frames "
                        "(default: 1.0)")
    p.add_argument("--progress-every", type=int, default=None, metavar="N",
                   help="emit a frame every N driver steps instead of on "
                        "a wall-clock interval (deterministic cadence)")
    p.set_defaults(fn=_cmd_schedules)

    p = sub.add_parser(
        "report",
        help="render a self-contained HTML run report from a trace "
        "(and optional metrics dump) written by 'repro explore'",
    )
    p.add_argument("trace", help="JSONL trace from --trace-out")
    p.add_argument("--metrics", metavar="PATH", default=None,
                   help="metrics JSON from --metrics-out")
    p.add_argument("--progress", metavar="PATH", default=None,
                   help="progress frames NDJSON from --progress-out "
                        "(renders the progress-timeline section)")
    p.add_argument("--out", default="report.html",
                   help="output HTML path (default: report.html)")
    p.add_argument("--perfetto", metavar="PATH", default=None,
                   help="also export a Chrome trace-event JSON for "
                        "ui.perfetto.dev")
    p.add_argument("--title", default=None, help="report title")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("analyze", help="full side-effect/dependence/"
                       "lifetime/race report")
    p.add_argument("file")
    p.add_argument("--max-configs", type=int, default=200_000)
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("fold", help="abstract exploration with folding")
    p.add_argument("file")
    p.add_argument("--domain", default="const",
                   choices=["const", "sign", "interval", "parity", "kset"])
    p.add_argument("--clans", action="store_true")
    p.set_defaults(fn=_cmd_fold)

    p = sub.add_parser("dot", help="emit the configuration graph as Graphviz DOT")
    p.add_argument("file")
    p.add_argument("--policy", default="full",
                   choices=["full", "stubborn", "stubborn-proc"])
    p.add_argument("--coarsen", action="store_true")
    p.add_argument("--max-nodes", type=int, default=500)
    p.set_defaults(fn=_cmd_dot)

    p = sub.add_parser(
        "optimize", help="interference-aware constant folding (source out)"
    )
    p.add_argument("file")
    p.set_defaults(fn=_cmd_optimize)

    p = sub.add_parser(
        "bench",
        help="sweep the corpus across all policy combinations, check "
        "reduction soundness, emit a BENCH_*.json telemetry baseline",
    )
    p.add_argument("--out", default="BENCH_explore.json",
                   help="output JSON path (default: BENCH_explore.json)")
    p.add_argument("--smoke", action="store_true",
                   help="fast representative subset (CI)")
    p.add_argument("--programs", nargs="*", default=None,
                   help="explicit corpus program names (default: all)")
    p.add_argument("--max-configs", type=int, default=200_000)
    p.add_argument("--time-limit", type=float, default=None,
                   help="per-exploration wall-clock budget in seconds")
    p.add_argument("--jobs", type=int, nargs="*", default=None, metavar="N",
                   help="extend the grid with the parallel backend at "
                        "these worker counts (e.g. --jobs 2 4)")
    p.add_argument("--watchdog", type=float, default=None, metavar="S",
                   help="per-program wall-clock watchdog: a hung program is "
                   "retried once, then skipped with an error entry")
    p.add_argument("--profile", action="store_true",
                   help="accumulate a cProfile of every exploration cell "
                        "and write <out stem>.pstats next to the JSON")
    p.add_argument("--serve-load", action="store_true",
                   help="also load-bench the analysis service (N "
                        "concurrent submissions, cold vs warm store) into "
                        "the document's 'serve' section")
    p.add_argument("--schedules", action="store_true",
                   help="also bench canonical schedule generation "
                        "(class counts + coverage on the philosophers "
                        "family) into the document's 'schedules' section")
    p.add_argument("--verbose", action="store_true",
                   help="print one line per program × combo")
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "bench-diff",
        help="compare a bench run against a baseline; exit 1 on drift "
        "in any deterministic field",
    )
    p.add_argument("new", help="freshly generated BENCH_*.json")
    p.add_argument("baseline", help="checked-in baseline BENCH_*.json")
    p.set_defaults(fn=_cmd_bench_diff)

    p = sub.add_parser(
        "serve",
        help="run the crash-safe analysis service (durable result "
        "store, request coalescing, bounded admission, checkpointed "
        "jobs with crash recovery)",
    )
    p.add_argument("address",
                   help="unix-socket path, or host:port for TCP")
    p.add_argument("--store", required=True, metavar="DIR",
                   help="durable store directory (created if missing)")
    p.add_argument("--max-pending", type=int, default=16,
                   help="distinct in-flight jobs before shedding load")
    p.add_argument("--max-active", type=int, default=2,
                   help="jobs exploring concurrently")
    p.add_argument("--max-restarts", type=int, default=2,
                   help="worker relaunches per job after a crash")
    p.add_argument("--checkpoint-every", type=int, default=200, metavar="N",
                   help="expansions between a job's snapshots")
    p.add_argument("--watchdog", type=float, default=300.0, metavar="S",
                   help="kill a worker running longer than S seconds")
    p.add_argument("--heartbeat", type=float, default=2.0, metavar="S",
                   help="surface a worker silent longer than S seconds as "
                        "a 'progress.stalled' frame (0 disables)")
    p.add_argument("--progress-interval", type=float, default=0.5,
                   metavar="S",
                   help="seconds between the live frames each worker "
                        "ships (default: 0.5)")
    p.add_argument("--drill-worker-kill", type=int, default=0, metavar="N",
                   help="fault drill: SIGKILL the first N workers mid-run "
                        "to exercise stall detection and checkpoint "
                        "resume (CI)")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit a program to a running 'repro serve' instance "
        "(or --ping/--stats/--shutdown it)",
    )
    p.add_argument("file", nargs="?", default=None,
                   help="program path or corpus:NAME (ADDRESS for "
                        "control ops)")
    p.add_argument("address", nargs="?", default=None,
                   help="server unix-socket path or host:port")
    p.add_argument("--policy", default="stubborn",
                   choices=["full", "stubborn", "stubborn-proc"])
    p.add_argument("--coarsen", action="store_true")
    p.add_argument("--sleep", action="store_true")
    p.add_argument("--no-memo", action="store_true")
    p.add_argument("--max-configs", type=int, default=1_000_000)
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="server-side wall-clock budget for this request")
    p.add_argument("--timeout", type=float, default=600.0, metavar="S",
                   help="client-side wait for the response")
    p.add_argument("--schedules", action="store_true",
                   help="request a canonical schedule set instead of a "
                        "plain analysis (cached by program+options+"
                        "generation key)")
    p.add_argument("--sample", type=int, default=None, metavar="N",
                   help="with --schedules: seeded random sample of N "
                        "classes instead of exhaustive enumeration")
    p.add_argument("--seed", type=int, default=0,
                   help="with --schedules --sample: sampling seed")
    p.add_argument("--follow", action="store_true",
                   help="stream the job's live progress frames (one "
                        "'progress ...' line each) before the final "
                        "response; the result is identical either way")
    p.add_argument("--ping", action="store_true")
    p.add_argument("--stats", action="store_true")
    p.add_argument("--shutdown", action="store_true")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser(
        "watch",
        help="live dashboard: tail a --progress-out frames file, or "
        "poll a server's per-job live state",
    )
    p.add_argument("target",
                   help="frames NDJSON path, or a server address "
                        "(unix-socket path / host:port)")
    p.add_argument("--interval", type=float, default=1.0, metavar="S",
                   help="seconds between refreshes (default: 1.0)")
    p.add_argument("--once", action="store_true",
                   help="render one screen and exit (scripts, tests)")
    p.add_argument("--timeout", type=float, default=10.0, metavar="S",
                   help="per-poll stats timeout in server mode")
    p.set_defaults(fn=_cmd_watch)

    p = sub.add_parser(
        "store",
        help="maintain a serve result store",
    )
    store_sub = p.add_subparsers(dest="store_cmd", required=True)
    p = store_sub.add_parser(
        "gc",
        help="evict finished results and warm caches, least recently "
        "hit first (quarantined artifacts and pending jobs are never "
        "touched)",
    )
    p.add_argument("--store", required=True, metavar="DIR",
                   help="store directory (as given to 'repro serve')")
    p.add_argument("--max-bytes", default=None, metavar="N",
                   help="evict oldest items until the store fits "
                        "(suffixes: k, m, g)")
    p.add_argument("--max-age", default=None, metavar="AGE",
                   help="evict items idle longer than AGE "
                        "(suffixes: s, m, h, d)")
    p.set_defaults(fn=_cmd_store_gc)

    p = sub.add_parser("corpus", help="list bundled programs")
    p.set_defaults(fn=_cmd_corpus)

    p = sub.add_parser("demo", help="analyze a bundled program")
    p.add_argument("name")
    p.set_defaults(fn=_cmd_demo)

    args = ap.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        # One line, exit code 2 — never a Python traceback.  Front-end
        # errors lead with their source location.
        if isinstance(exc, SourceError) and exc.line is not None:
            loc = f"line {exc.line}"
            if exc.col is not None:
                loc += f", col {exc.col}"
            print(f"error: {loc}: {exc.message}", file=sys.stderr)
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
