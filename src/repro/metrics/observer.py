"""Exploration telemetry as an :class:`~repro.explore.observers.Observer`.

Attaching a :class:`MetricsObserver` to :func:`repro.explore.explore`
does two things:

1. the observer itself counts graph-level events (configs, edges,
   actions, terminal statuses) from the standard callbacks;
2. the engine notices the attached registry and turns on its *deep*
   instrumentation — frontier depth, intern hit-rate, stubborn closure
   sizes, coarsened block lengths, wall-clock — none of which runs when
   no registry is attached.

Metric names emitted by the engine (the stable telemetry schema,
version :data:`repro.metrics.SCHEMA_VERSION`):

======================================  =========  =========================
name                                    type       meaning
======================================  =========  =========================
``explore.configs``                     counter    configurations interned
``explore.edges``                       counter    transitions recorded
``explore.actions``                     counter    atomic actions executed
``explore.expansions``                  counter    configurations expanded
``explore.frontier_depth``              histogram  queue/stack depth per step
``explore.intern.hits``                 counter    add_config found existing
``explore.intern.misses``               counter    add_config interned fresh
``explore.terminal.<status>``           counter    per terminal status
``explore.wall_s``                      timer      exploration wall-clock
``explore.expansions_per_s``            gauge      expansions / wall seconds
``stubborn.enabled``                    histogram  candidate-set sizes
``stubborn.chosen``                     histogram  chosen stubborn-set sizes
``stubborn.closure_iterations``         histogram  worklist pops per closure
``stubborn.singleton_steps``            counter    steps with |chosen| == 1
``coarsen.block_len``                   histogram  fused-block lengths
``expand.cache_hits``                   counter    memoized expansions replayed
``expand.cache_misses``                 counter    expansions computed fresh
``expand.invalidations``                counter    footprint mismatches (stale)
``expand.cache_evictions``              counter    memo entries evicted (bound)
``expand.cache_uncacheable``            counter    outcomes not memoizable
``expand.cache_hit_rate``               gauge      hits / (hits + misses)
``digest.incremental``                  counter    component digests reused
``digest.component_new``                counter    component digests computed
``digest.config_composed``              counter    config digests composed
``digest.config_cached``                counter    config digests served cached
``digest.incremental_rate``             gauge      reused / (reused + new)
``fold.hits``                           counter    successor hit existing key
``fold.misses``                         counter    successor opened a new key
``fold.widenings``                      counter    joins replaced by widening
``explore.peak_rss_bytes``              gauge      peak resident set (bytes)
``explore.observer_faults``             counter    observer callbacks isolated
``explore.selector_faults``             counter    selector crashes (fallback)
``explore.engine_faults``               counter    expansion crashes (dropped)
``resilience.escalations``              counter    ladder rung escalations
``resilience.final_rung``               gauge      rung index of the answer
``trace.dropped_spans``                 gauge      records lost to a full ring
======================================  =========  =========================
"""

from __future__ import annotations

from repro.explore.graph import ConfigGraph
from repro.explore.observers import Observer
from repro.metrics.registry import MetricsRegistry


class MetricsObserver(Observer):
    """Collects exploration telemetry into a :class:`MetricsRegistry`."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    # ------------------------------------------------------------------
    # Observer callbacks
    # ------------------------------------------------------------------

    def on_config(self, graph, cid, config, fresh, status) -> None:
        if fresh:
            self.registry.inc("explore.configs")
        if status is not None:
            self.registry.inc(f"explore.terminal.{status}")

    def on_edge(self, graph, src, dst, actions) -> None:
        self.registry.inc("explore.edges")
        self.registry.inc("explore.actions", len(actions))

    def on_done(self, graph: ConfigGraph) -> None:
        self.registry.set_gauge("graph.configs", graph.num_configs)
        self.registry.set_gauge("graph.edges", graph.num_edges)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        return self.registry.snapshot()


def attached_registry(observers) -> MetricsRegistry | None:
    """The registry of the first :class:`MetricsObserver` among
    *observers*, or None — how the engine decides whether to run its
    deep instrumentation."""
    for ob in observers:
        if isinstance(ob, MetricsObserver):
            return ob.registry
    return None
