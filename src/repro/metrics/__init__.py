"""Exploration telemetry: registry, instruments, and the observer that
wires them into the engine.

Usage::

    from repro.explore import explore
    from repro.metrics import MetricsObserver

    mo = MetricsObserver()
    result = explore(program, "stubborn", coarsen=True, observers=(mo,))
    print(mo.snapshot()["explore.frontier_depth"])

Without an attached :class:`MetricsObserver` the engine allocates no
registry and skips every telemetry update (a single ``is not None``
test per site) — the default path stays as fast as before telemetry
existed.
"""

from repro.metrics.observer import MetricsObserver, attached_registry
from repro.metrics.registry import (
    LAST_WRITE_GAUGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)

#: Version of the metric-name vocabulary emitted by the engine (see
#: :mod:`repro.metrics.observer` for the table).  Bump on any rename or
#: semantic change; ``repro bench`` embeds it in ``BENCH_*.json``.
#: ``/2`` adds the resilience series: ``explore.peak_rss_bytes``,
#: ``explore.observer_faults``, ``explore.selector_faults``,
#: ``explore.engine_faults``, ``resilience.escalations``,
#: ``resilience.final_rung``.
#: ``/3``: the parallel backend merges worker registries into the
#: master registry (``MetricsRegistry.merge``), so deep series
#: (``explore.expansions``, ``stubborn.*``, ``coarsen.*``,
#: ``explore.intern.misses``) now cover worker-side work instead of
#: being silently dropped; ``explore.intern.hits`` under ``--jobs`` now
#: counts worker-side interning hits (out-batch dedup makes it smaller
#: than the serial count, which already made it backend-specific).
#: ``/4`` adds the incremental-engine series: ``expand.cache_hits`` /
#: ``expand.cache_misses`` / ``expand.invalidations`` /
#: ``expand.cache_evictions`` / ``expand.cache_uncacheable`` (the
#: footprint memo, :mod:`repro.explore.memo`), ``digest.incremental`` /
#: ``digest.component_new`` / ``digest.config_composed`` /
#: ``digest.config_cached`` (O(delta) digest composition), and the
#: derived gauges ``expand.cache_hit_rate`` /
#: ``digest.incremental_rate``.
#: ``/5`` adds the schedule-generation series (:mod:`repro.schedules`):
#: ``schedules.classes`` / ``schedules.paths`` /
#: ``schedules.edges_covered`` / ``schedules.edge_coverage`` /
#: ``schedules.class_coverage`` / ``schedules.cycles_skipped`` /
#: ``schedules.truncated`` / ``schedules.sample`` / ``schedules.seed``
#: (coverage accounting of canonical-schedule enumeration and seeded
#: sampling) and ``schedules.replays`` / ``schedules.replay_failures``
#: (the replay-verification harness).
#: ``/6`` adds ``trace.dropped_spans`` (gauge): records lost to a full
#: :class:`~repro.trace.RingBufferSink` — a truncated trace is no
#: longer indistinguishable from a complete one — and
#: ``serve.store_evictions`` (``repro store gc``).
SCHEMA_VERSION = "repro.metrics/6"

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LAST_WRITE_GAUGES",
    "MetricsObserver",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "Timer",
    "attached_registry",
]
