"""Exploration telemetry: registry, instruments, and the observer that
wires them into the engine.

Usage::

    from repro.explore import explore
    from repro.metrics import MetricsObserver

    mo = MetricsObserver()
    result = explore(program, "stubborn", coarsen=True, observers=(mo,))
    print(mo.snapshot()["explore.frontier_depth"])

Without an attached :class:`MetricsObserver` the engine allocates no
registry and skips every telemetry update (a single ``is not None``
test per site) — the default path stays as fast as before telemetry
existed.
"""

from repro.metrics.observer import MetricsObserver, attached_registry
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
)

#: Version of the metric-name vocabulary emitted by the engine (see
#: :mod:`repro.metrics.observer` for the table).  Bump on any rename or
#: semantic change; ``repro bench`` embeds it in ``BENCH_*.json``.
#: ``/2`` adds the resilience series: ``explore.peak_rss_bytes``,
#: ``explore.observer_faults``, ``explore.selector_faults``,
#: ``explore.engine_faults``, ``resilience.escalations``,
#: ``resilience.final_rung``.
SCHEMA_VERSION = "repro.metrics/2"

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsObserver",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "Timer",
    "attached_registry",
]
