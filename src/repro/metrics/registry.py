"""The metrics registry: counters, gauges, histograms, timers.

Exploration telemetry lives here so the engine can argue its
precision/cost tradeoffs with numbers instead of prose — the same
per-phase statistics style Miné's parallel-C analyzer and the BMC
partial-order literature report.  Design constraints:

- **zero cost when absent** — the engine threads an optional registry
  through its hot paths and guards every update with ``is not None``;
  the default :func:`repro.explore.explore` call never allocates one;
- **no wall-clock in values** — histograms bucket by powers of two and
  snapshots are plain JSON-able dicts, so telemetry is deterministic
  except for the explicitly-named ``*_s`` timer series;
- **flat namespace** — metric names are dotted strings
  (``explore.frontier_depth``); the registry is a dictionary, not a
  tree, so snapshots diff cleanly across runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


def _bucket_of(value: float) -> int:
    """Power-of-two bucket index: values in ``[2^k, 2^(k+1))`` map to
    ``k + 1``; values < 1 map to 0."""
    b = 0
    v = int(value)
    while v >= 1:
        v >>= 1
        b += 1
    return b


@dataclass
class Histogram:
    """Streaming distribution summary with power-of-two buckets.

    Tracks count/sum/min/max exactly and the shape approximately;
    memory is O(log max) regardless of how many observations arrive —
    safe to feed every expansion of a million-configuration run.
    """

    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        b = _bucket_of(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


@dataclass
class Timer:
    """Accumulated wall-clock (seconds) over any number of spans."""

    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def add(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s

    def as_dict(self) -> dict:
        return {
            "type": "timer",
            "count": self.count,
            "total_s": self.total_s,
            "max_s": self.max_s,
        }


#: Gauges where merging takes the *other* snapshot's value instead of
#: the maximum: series that mean "final state", not "peak".
LAST_WRITE_GAUGES = frozenset(
    {
        "resilience.final_rung",
    }
)

#: Series that are deterministic but **worker-local**: their values
#: legitimately depend on *where* work ran, so a parallel run's merged
#: registry must not be compared against a serial run's on them.  The
#: single source of truth for the cross-backend differential suite —
#: add any new worker-local series here, or the equality check silently
#: starts comparing scheduling noise.
#:
#: - ``parallel.*`` — no serial counterpart at all;
#: - ``expand.*`` / ``digest.*`` — memo-cache and digest-reuse splits
#:   follow per-shard locality (the expansion *outcomes* are asserted
#:   equal through the graph checks instead);
#: - ``explore.frontier_depth`` — a BFS queue and a sharded frontier
#:   have different shapes;
#: - ``explore.intern.hits`` — workers dedup successor batches before
#:   interning, so parallel hit counts are legitimately lower.
WORKER_LOCAL_PREFIXES = ("parallel.", "expand.", "digest.")
WORKER_LOCAL_SERIES = frozenset(
    {"explore.frontier_depth", "explore.intern.hits"}
)


class MetricsRegistry:
    """A flat name → instrument table with get-or-create accessors.

    Instruments are typed on first use; asking for an existing name with
    a different type raises (a misspelled dashboard is a bug, not data).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    # ------------------------------------------------------------------
    # get-or-create
    # ------------------------------------------------------------------

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls()
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    # ------------------------------------------------------------------
    # convenience updates (what the engine's hot paths call)
    # ------------------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    @contextmanager
    def time(self, name: str):
        """Context manager: time a span into timer *name*."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.timer(name).add(time.perf_counter() - t0)

    # ------------------------------------------------------------------
    # merge (parallel workers ship snapshots back to the master)
    # ------------------------------------------------------------------

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Semantics per instrument type:

        - **counters** add — every worker's count is part of the total;
        - **gauges** take the maximum (peaks like
          ``explore.peak_rss_bytes`` compose as max), except the names
          in :data:`LAST_WRITE_GAUGES`, where the merged-in value wins;
        - **histograms** merge exactly: counts/sums add, min/max
          combine, power-of-two buckets add bucket-wise — the merged
          histogram equals one built from the union of observations;
        - **timers** add count/total and take the max of maxima.

        A name present in both registries with different types raises
        ``TypeError``; an unknown ``type`` tag raises ``ValueError``.

        Merged parallel registries are only serial-comparable outside
        the worker-local series named by :data:`WORKER_LOCAL_PREFIXES`
        and :data:`WORKER_LOCAL_SERIES` — the differential suite builds
        its comparable slice from those constants.
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).inc(data["value"])
            elif kind == "gauge":
                fresh = name not in self._instruments
                gauge = self.gauge(name)
                if (
                    fresh
                    or name in LAST_WRITE_GAUGES
                    or data["value"] > gauge.value
                ):
                    gauge.set(data["value"])
            elif kind == "histogram":
                hist = self.histogram(name)
                hist.count += data["count"]
                hist.total += data["sum"]
                for bound in ("min", "max"):
                    other = data.get(bound)
                    if other is None:
                        continue
                    ours = getattr(hist, bound)
                    if ours is None:
                        setattr(hist, bound, other)
                    elif bound == "min":
                        setattr(hist, bound, min(ours, other))
                    else:
                        setattr(hist, bound, max(ours, other))
                for bucket, count in data.get("buckets", {}).items():
                    b = int(bucket)
                    hist.buckets[b] = hist.buckets.get(b, 0) + count
            elif kind == "timer":
                timer = self.timer(name)
                timer.count += data["count"]
                timer.total_s += data["total_s"]
                if data["max_s"] > timer.max_s:
                    timer.max_s = data["max_s"]
            else:
                raise ValueError(
                    f"cannot merge metric {name!r}: unknown type {kind!r}"
                )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def value(self, name: str):
        """Scalar shortcut: counter/gauge value, histogram mean, timer
        total — handy in tests and report code."""
        inst = self._instruments[name]
        if isinstance(inst, (Counter, Gauge)):
            return inst.value
        if isinstance(inst, Histogram):
            return inst.mean
        assert isinstance(inst, Timer)
        return inst.total_s

    def snapshot(self) -> dict:
        """JSON-able dump of every instrument, sorted by name."""
        return {
            name: self._instruments[name].as_dict()
            for name in sorted(self._instruments)
        }
