"""Interference-aware constant propagation (paper intro + §7).

The introduction's cautionary example: a thread busy-waits on a shared
flag; a *sequential* optimizer concludes the flag is loop-invariant
(nothing in the loop body writes it), hoists the load, and the wait
never succeeds.  "Even the simplest optimization, like constant
propagation, will fail if applied without modification."

Two analyses:

- :func:`constants_at` — sound constants per statement, from abstract
  exploration (Taylor-folded, flat constant domain): a global is a
  constant at a label iff it holds that constant in *every* reachable
  (abstract) configuration where the label is about to execute.  All
  interleavings are in the abstract space, so cross-thread interference
  is respected by construction.
- :func:`licm_report` — the loop-invariant-code-motion contrast: per
  loop, the globals a sequential analysis would call invariant, split
  into genuinely safe ones and those a concurrent sibling may write
  (critical reads, Definition 4) where hoisting is unsound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.absdomain.absvalue import AbsValueDomain
from repro.absdomain.flat import FlatConstDomain
from repro.abstraction.folding import FoldResult
from repro.abstraction.taylor import taylor_explore
from repro.analyses.accesses import access_analysis
from repro.lang.instructions import IBranch, ICall, IJump, RFunc
from repro.lang.program import Program


@dataclass
class ConstantsReport:
    """Per-label known-constant globals."""

    #: label -> {global name: constant int}
    at: dict[str, dict[str, int]]
    fold: FoldResult

    def constant(self, label: str, name: str) -> int | None:
        return self.at.get(label, {}).get(name)


def constants_at(program: Program, fold: FoldResult | None = None) -> ConstantsReport:
    """Sound constants before each labeled statement."""
    flat = FlatConstDomain()
    dom = AbsValueDomain(flat)
    result = fold if fold is not None else taylor_explore(program, dom)
    # label -> global idx -> joined abstract value
    joined: dict[str, list] = {}
    for cfg in result.table.values():
        for proc in cfg.procs:
            for m, _count in proc.points:
                if not m.frames or m.status != "run":
                    continue
                top = m.frames[-1]
                label = program.label_of_pc.get((top.func, top.pc))
                if label is None:
                    continue
                cur = joined.get(label)
                if cur is None:
                    joined[label] = list(cfg.aglobals)
                else:
                    joined[label] = [
                        dom.join(a, b) for a, b in zip(cur, cfg.aglobals)
                    ]
    at: dict[str, dict[str, int]] = {}
    for label, vals in joined.items():
        consts: dict[str, int] = {}
        for name, av in zip(program.global_names, vals):
            num, ptrs, funcs = av
            if ptrs or funcs:
                continue
            v = flat.value_of(num)
            if v is not None:
                consts[name] = v
        at[label] = consts
    return ConstantsReport(at=at, fold=result)


@dataclass(frozen=True)
class LoopInvariance:
    """LICM facts for one loop."""

    loop_label: str
    func: str
    seq_invariant: tuple[str, ...]  # sequential analysis: invariant reads
    safe: tuple[str, ...]  # still invariant under interference
    unsafe: tuple[str, ...]  # a concurrent thread may write these


def licm_report(program: Program) -> list[LoopInvariance]:
    """Per-loop invariant-load classification (the busy-wait contrast)."""
    access = access_analysis(program)
    out: list[LoopInvariance] = []
    for fname in sorted(program.funcs):
        instrs = program.funcs[fname].instrs
        for pc, ins in enumerate(instrs):
            if not isinstance(ins, IBranch):
                continue
            # while-loop shape: a later jump back to the branch
            back = [
                j
                for j, other in enumerate(instrs)
                if isinstance(other, IJump) and other.target == pc and j > pc
            ]
            if not back:
                continue
            body = range(pc + 1, back[-1])
            cond_reads = {
                loc
                for loc in access.gen_at(fname, pc).reads
                if loc[0] == "g" and loc[1] != "*"
            }
            body_writes: set = set()
            for bpc in body:
                body_writes |= access.gen_at(fname, bpc).writes
                bins = instrs[bpc]
                if isinstance(bins, ICall):
                    callees = (
                        {bins.callee.name}
                        if isinstance(bins.callee, RFunc)
                        else access.pts.callees(fname, bins.callee)
                    )
                    for callee in callees:
                        if callee in program.funcs and program.funcs[callee].instrs:
                            body_writes |= access.future(callee, 0).writes
            seq_inv = sorted(
                program.global_names[loc[1]]
                for loc in cond_reads
                if loc not in body_writes and ("g", "*") not in body_writes
            )
            unsafe = sorted(
                name
                for name in seq_inv
                if access.crit_read(("g", program.global_index(name)))
            )
            safe = sorted(set(seq_inv) - set(unsafe))
            out.append(
                LoopInvariance(
                    loop_label=ins.label,
                    func=fname,
                    seq_invariant=tuple(seq_inv),
                    safe=tuple(safe),
                    unsafe=tuple(unsafe),
                )
            )
    return out
