"""Further parallelization of procedure calls (Example 15 / Figure 8).

    "The techniques in [SS88, MP90] can be easily extended to procedure
    calls."

Given a cobegin of call statements, the side-effect and dependence
analyses tell which *pairs of calls* interfere.  Calls with no
dependence between them can run in parallel; dependent pairs must stay
ordered (program order within a segment) or be separated by delays.

The output is a maximal parallel schedule: a DAG whose edges are the
realized dependences restricted to program order, topologically layered
— every layer is a set of calls that can execute concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyses.conflictgraph import Segments, extract_segments
from repro.lang.program import Program


@dataclass
class ParallelSchedule:
    """The Example-15 result."""

    segments: Segments
    dependent_pairs: set[frozenset]
    independent_pairs: set[frozenset]
    layers: list[list[str]]

    @property
    def width(self) -> int:
        return max((len(layer) for layer in self.layers), default=0)

    def describe(self) -> str:
        lines = [
            "dependent pairs: "
            + ", ".join(
                "(" + ", ".join(sorted(p)) + ")"
                for p in sorted(self.dependent_pairs, key=sorted)
            ),
            "schedule:",
        ]
        for i, layer in enumerate(self.layers):
            lines.append(f"  step {i}: " + " || ".join(layer))
        return "\n".join(lines)


def further_parallelize(
    program: Program, result, func: str = "main"
) -> ParallelSchedule:
    """Compute the Example-15 schedule for the cobegin in *func*.

    Dependences between statements (including call statements, which
    absorb their callees' side effects) come from the explored graph in
    *result*.
    """
    from repro.analyses.sideeffects import (
        effects_conflict,
        label_effects_with_callees,
    )

    segments = extract_segments(program, func)
    all_labels = [l for seg in segments.labels for l in seg]

    effs = label_effects_with_callees(program, result)
    dep_pairs: set[frozenset] = set()
    for i, a in enumerate(all_labels):
        for b in all_labels[i + 1 :]:
            ea, eb = effs.get(a), effs.get(b)
            if ea is not None and eb is not None and effects_conflict(ea, eb):
                dep_pairs.add(frozenset((a, b)))
    independent = {
        frozenset((a, b))
        for i, a in enumerate(all_labels)
        for b in all_labels[i + 1 :]
        if frozenset((a, b)) not in dep_pairs
    }

    # ordering constraints: program order within a segment, but only
    # between (transitively) dependent statements; plus cross-segment
    # dependences keep their observed direction conservatively — we
    # schedule them sequentially by layering.
    order: dict[str, set[str]] = {l: set() for l in all_labels}
    for seg in segments.labels:
        for i, a in enumerate(seg):
            for b in seg[i + 1 :]:
                if frozenset((a, b)) in dep_pairs:
                    order[b].add(a)
    # cross-segment dependent pairs: order by (segment, position) to get
    # a deterministic valid sequentialization
    pos = {
        lbl: (si, i)
        for si, seg in enumerate(segments.labels)
        for i, lbl in enumerate(seg)
    }
    for p in dep_pairs:
        a, b = sorted(p, key=lambda l: pos[l])
        if pos[a][0] != pos[b][0]:
            order[b].add(a)

    layers: list[list[str]] = []
    placed: set[str] = set()
    remaining = list(all_labels)
    while remaining:
        layer = [l for l in remaining if order[l] <= placed]
        if not layer:  # pragma: no cover - order is acyclic by construction
            layer = remaining[:]
        layers.append(sorted(layer, key=lambda l: pos[l]))
        placed.update(layer)
        remaining = [l for l in remaining if l not in placed]

    return ParallelSchedule(
        segments=segments,
        dependent_pairs=dep_pairs,
        independent_pairs=independent,
        layers=layers,
    )
