"""Access-anomaly (data race) detection.

The debugging-side application the paper contrasts itself with ([MH89]):
an *anomaly* is a pair of conflicting accesses (same location, at least
one write) by concurrent processes that are **simultaneously enabled**
in some reachable configuration — neither synchronization nor program
order separates them.

Detection is a single pass over the explored graph: at every
configuration, compare the out-edges of distinct processes.  (Use full
exploration: reduced graphs may expand only one of the racing processes
at the witnessing configuration.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.explore.explorer import ExploreResult
from repro.lang.program import Program


@dataclass(frozen=True)
class Race:
    """A simultaneously-enabled conflicting access pair."""

    label_a: str
    label_b: str
    loc: tuple  # ("g", name) | ("site", site)
    both_write: bool
    witness_config: int

    def pair(self) -> frozenset:
        return frozenset((self.label_a, self.label_b))


def _report_loc(program: Program, loc):
    if loc[0] == "g":
        return ("g", program.global_names[loc[1]])
    if loc[0] == "h":
        return ("site", loc[1][0])
    return None


def races(program: Program, result: ExploreResult) -> list[Race]:
    """All access anomalies witnessed by the explored graph."""
    graph = result.graph
    found: dict[tuple, Race] = {}
    for cid in range(graph.num_configs):
        eids = graph.out_edges.get(cid, [])
        if len(eids) < 2:
            continue
        edges = [graph.edges[e] for e in eids]
        for i in range(len(edges)):
            for j in range(i + 1, len(edges)):
                a, b = edges[i].actions[0], edges[j].actions[0]
                if a.pid == b.pid:
                    continue
                # lock operations are synchronization, not data accesses:
                # contended acquires are the mechanism, not an anomaly
                if a.kind in ("IAcquire", "IRelease") or b.kind in (
                    "IAcquire",
                    "IRelease",
                ):
                    continue
                aw = {l for l in a.writes}
                ar = {l for l in a.reads}
                bw = {l for l in b.writes}
                br = {l for l in b.reads}
                for loc in (aw & (bw | br)) | (bw & ar):
                    rep = _report_loc(program, loc)
                    if rep is None:
                        continue
                    key = (frozenset((a.label, b.label)), rep)
                    if key not in found:
                        la, lb = sorted((a.label, b.label))
                        found[key] = Race(
                            label_a=la,
                            label_b=lb,
                            loc=rep,
                            both_write=loc in aw and loc in bw,
                            witness_config=cid,
                        )
    return sorted(
        found.values(), key=lambda r: (r.label_a, r.label_b, r.loc)
    )
