"""Object-lifetime analysis (paper §5.3).

For every heap object the instrumented semantics records a *birthdate*
(the creating process and its procedure string); exploration then tells:

- **escapes its creating activation** — the object may be accessed after
  the activation that allocated it has returned (if not: it can go on
  the creating function's *deallocation list*, the [Har89] application
  of §7);
- **is multi-thread** — accessed by concurrent processes (pids neither
  of which is an ancestor of the other), which drives memory placement:
  such an object must live at a memory level visible to all accessors.

Escape detection is sound via *stack-depth watermarks*: the creating
activation of an object allocated by process π at frame depth *d* has
exited exactly when π's stack first drops below *d* (stack discipline),
or π terminates.  A forward may-analysis over the configuration graph
tracks the objects whose creator may have exited; any later access
flags the escape.  (Procedure strings give the reporting vocabulary —
birth paths — and, being normalized, identify repeated activations at
one path; the watermarks keep the analysis exact where normalization
is lossy.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.explore.explorer import ExploreResult
from repro.lang.program import Program
from repro.semantics import procstring as PS
from repro.util.fixpoint import Worklist


def _is_ancestor(a: tuple, b: tuple) -> bool:
    """pid *a* is (a non-strict) ancestor of pid *b*."""
    return len(a) <= len(b) and b[: len(a)] == a


def concurrent_pids(a: tuple, b: tuple) -> bool:
    return not _is_ancestor(a, b) and not _is_ancestor(b, a)


def _lca(a: tuple, b: tuple) -> tuple:
    out = []
    for x, y in zip(a, b):
        if x != y:
            break
        out.append(x)
    return tuple(out)


@dataclass
class ObjectLifetime:
    """Lifetime facts for one heap object (by canonical oid)."""

    oid: tuple
    site: str
    birth_pid: tuple
    birth_depth: int
    birth_func: str
    birth_ps: PS.ProcString = ()
    escapes_creator: bool = False
    accessor_pids: set = field(default_factory=set)
    accessor_labels: set = field(default_factory=set)

    @property
    def multi_thread(self) -> bool:
        pids = list(self.accessor_pids)
        for i in range(len(pids)):
            for j in range(i + 1, len(pids)):
                if concurrent_pids(pids[i], pids[j]):
                    return True
        return False

    @property
    def placement_pid(self) -> tuple:
        """The deepest thread all accessors (and the creator) share —
        allocate at this thread's memory level (§7)."""
        level = self.birth_pid
        for p in self.accessor_pids:
            level = _lca(level, p)
        return level

    @property
    def stack_allocatable(self) -> bool:
        """May be placed on / deallocated at exit of the creating
        activation (the §7 deallocation-list application)."""
        return not self.escapes_creator and not self.multi_thread


@dataclass
class Lifetimes:
    objects: dict[tuple, ObjectLifetime]

    def by_site(self) -> dict[str, list[ObjectLifetime]]:
        out: dict[str, list[ObjectLifetime]] = {}
        for lt in self.objects.values():
            out.setdefault(lt.site, []).append(lt)
        return out

    def site_summary(self, site: str) -> dict:
        lts = [lt for lt in self.objects.values() if lt.site == site]
        return {
            "site": site,
            "escapes_creator": any(lt.escapes_creator for lt in lts),
            "multi_thread": any(lt.multi_thread for lt in lts),
            "stack_allocatable": all(lt.stack_allocatable for lt in lts),
        }

    def dealloc_lists(self) -> dict[str, list[str]]:
        """func -> sites whose objects can be freed at its exit."""
        out: dict[str, list[str]] = {}
        for lt in self.objects.values():
            if not lt.escapes_creator:
                out.setdefault(lt.birth_func, [])
                if lt.site not in out[lt.birth_func]:
                    out[lt.birth_func].append(lt.site)
        return {f: sorted(sites) for f, sites in out.items()}


def lifetimes(program: Program, result: ExploreResult) -> Lifetimes:
    """Compute §5.3 lifetimes from an explored graph.

    Explore with ``StepOptions(gc=False, track_procstrings=True)`` for
    stable object identities and birthdates (the benchmark and example
    drivers do).
    """
    graph = result.graph

    # pass 1: birth records (watermarks); conservative max over paths
    objects: dict[tuple, ObjectLifetime] = {}
    for edge in graph.iter_edges():
        for action in edge.actions:
            for oid in action.allocs:
                lt = objects.get(oid)
                depth = action.depth
                if lt is None:
                    objects[oid] = ObjectLifetime(
                        oid=oid,
                        site=oid[0],
                        birth_pid=action.pid,
                        birth_depth=depth,
                        birth_func=action.stack[-1] if action.stack else "",
                        birth_ps=action.ps,
                    )
                elif depth > lt.birth_depth:
                    lt.birth_depth = depth  # conservative: exits sooner

    # pass 2: forward may-"creator exited" dataflow.  Per configuration
    # we carry (born, exited): the exit check only applies to objects
    # already allocated along the path — without the born component an
    # object would count as "creator exited" before its creating call
    # even starts.
    empty = (frozenset(), frozenset())
    state: dict[int, tuple[frozenset, frozenset]] = {graph.initial: empty}
    wl = Worklist([graph.initial])
    while wl:
        cid = wl.pop()
        born_in, exited_in = state.get(cid, empty)
        for eid in graph.out_edges[cid]:
            edge = graph.edges[eid]
            born = set(born_in)
            exited = set(exited_in)
            for action in edge.actions:
                # accesses happen against the pre-action exit state
                for loc in list(action.reads) + list(action.writes):
                    if loc[0] == "h" and loc[1] in objects:
                        lt = objects[loc[1]]
                        lt.accessor_pids.add(action.pid)
                        lt.accessor_labels.add(action.label)
                        if loc[1] in exited:
                            lt.escapes_creator = True
                born.update(action.allocs)
                # did this action pop the creator of any live object?
                dst_cfg = graph.configs[edge.dst]
                depth_after = None
                alive = False
                for p in dst_cfg.procs:
                    if p.pid == action.pid:
                        alive = p.status != "done"
                        depth_after = p.depth
                        break
                for oid in born:
                    if oid in exited:
                        continue
                    lt = objects[oid]
                    if lt.birth_pid != action.pid:
                        continue
                    if (
                        not alive
                        or depth_after is None
                        or depth_after < lt.birth_depth
                    ):
                        exited.add(oid)
            prev = state.get(edge.dst)
            if prev is None:
                merged = (frozenset(born), frozenset(exited))
            else:
                merged = (prev[0] | born, prev[1] | exited)
            if prev is None or merged != prev:
                state[edge.dst] = merged
                wl.push(edge.dst)

    return Lifetimes(objects=objects)
