"""May-happen-in-parallel (MHP) relations.

Two statements may happen in parallel when some reachable configuration
has two processes poised at them simultaneously.  Exploration gives the
*dynamic* (exact, up to reduction) relation; the CFG gives a cheap
*static* over-approximation (labels in sibling cobegin branches,
interprocedurally).  Client analyses and the race detector consume
these.
"""

from __future__ import annotations

from repro.analyses.accesses import access_analysis
from repro.explore.explorer import ExploreResult
from repro.lang.instructions import ICobegin
from repro.lang.program import Program

Pair = frozenset  # frozenset({label_a, label_b})


def _current_labels(program: Program, config) -> list[tuple]:
    out = []
    for p in config.procs:
        # a joining parent is blocked *between* statements (its spawn
        # already happened); only running processes are "at" a statement
        if p.status != "run" or not p.frames:
            continue
        top = p.frames[-1]
        label = program.label_of_pc.get((top.func, top.pc))
        if label is not None:
            out.append((p.pid, label))
    return out


def mhp_dynamic(program: Program, result: ExploreResult) -> set[Pair]:
    """Label pairs simultaneously current in some explored configuration.

    Run on a *full* exploration for the exact relation; reduced graphs
    under-approximate it (the reductions preserve result configurations,
    not intermediate co-locations).
    """
    pairs: set[Pair] = set()
    for config in result.graph.configs:
        if config.fault is not None:
            continue
        cur = _current_labels(program, config)
        for i in range(len(cur)):
            for j in range(i + 1, len(cur)):
                if cur[i][0] != cur[j][0]:
                    pairs.add(frozenset((cur[i][1], cur[j][1])))
    return pairs


def mhp_static(program: Program) -> set[Pair]:
    """Static over-approximation: labels reachable from distinct sibling
    branches of some cobegin (through calls and nested cobegins)."""
    access = access_analysis(program)
    pairs: set[Pair] = set()
    for fname in sorted(program.funcs):
        for ins in program.funcs[fname].instrs:
            if not isinstance(ins, ICobegin):
                continue
            branch_labels = []
            for t in ins.branch_targets:
                labels = set()
                for f2, pc2 in access.reachable_from(fname, t):
                    lbl = program.label_of_pc.get((f2, pc2))
                    if lbl is not None:
                        labels.add(lbl)
                branch_labels.append(labels)
            for i in range(len(branch_labels)):
                for j in range(i + 1, len(branch_labels)):
                    for a in branch_labels[i]:
                        for b in branch_labels[j]:
                            if a != b:
                                pairs.add(frozenset((a, b)))
    return pairs
