"""Data-dependence analysis (paper §5.2).

Flow (write→read), anti (read→write) and output (write→write)
dependences between statements, including *cross-thread* dependences
through shared variables and heap objects.

Implemented as a forward dataflow over the explored configuration
graph: each configuration carries, per shared location, the set of
possible last writers and the readers since — merged by union over
incoming paths; a transition then realizes dependences against that
environment.  Running it over the *full* graph yields exactly the
dependences realizable in some interleaving (the paper's point that the
framework derives dependence information directly from the explored
space).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.explore.explorer import ExploreResult
from repro.lang.program import Program
from repro.util.fixpoint import Worklist

FLOW = "flow"
ANTI = "anti"
OUTPUT = "output"

#: the pseudo-label of initializing writes (globals start initialized)
INIT = "<init>"


def _concurrent(a: tuple, b: tuple) -> bool:
    """Pids are concurrent iff neither is an ancestor of the other —
    a parent is blocked at its join while descendants run, so
    ancestor-ordered accesses are sequential, not cross-thread."""
    shorter = min(len(a), len(b))
    return a[:shorter] != b[:shorter]


@dataclass(frozen=True)
class Dependence:
    """A realized dependence ``src --kind--> dst`` on ``loc``."""

    kind: str
    src: str
    dst: str
    loc: tuple  # ("g", name) or ("site", site)
    cross_thread: bool

    def __str__(self) -> str:
        where = "×" if self.cross_thread else "·"
        return f"{self.src} -{self.kind}{where}-> {self.dst} on {self.loc}"


@dataclass
class Dependences:
    deps: set[Dependence]

    def pairs(self, *, cross_only: bool = False) -> set[frozenset]:
        """Unordered dependent statement pairs (Example 15's currency);
        initializing writes are not statements and are excluded."""
        out: set[frozenset] = set()
        for d in self.deps:
            if cross_only and not d.cross_thread:
                continue
            if d.src == INIT:
                continue
            out.add(frozenset((d.src, d.dst)))
        return out

    def of_kind(self, kind: str) -> list[Dependence]:
        return sorted(
            (d for d in self.deps if d.kind == kind),
            key=lambda d: (d.src, d.dst, d.loc),
        )


def _report_loc(program: Program, loc) -> tuple | None:
    if loc[0] == "g":
        return ("g", program.global_names[loc[1]])
    if loc[0] == "h":
        return ("site", loc[1][0])
    return None


def dependences(program: Program, result: ExploreResult) -> Dependences:
    """Compute §5.2 dependences from an explored graph (use ``full``)."""
    graph = result.graph
    # env: loc -> (frozenset[(label, pid)], frozenset[(label, pid)])
    empty_env: dict = {}
    envs: dict[int, dict] = {graph.initial: _initial_env(program)}
    deps: set[Dependence] = set()

    wl = Worklist([graph.initial])
    while wl:
        cid = wl.pop()
        env = envs.get(cid, empty_env)
        for eid in graph.out_edges[cid]:
            edge = graph.edges[eid]
            new_env = dict(env)
            for action in edge.actions:
                _transfer(program, action, new_env, deps)
            dst = edge.dst
            cur = envs.get(dst)
            merged = _merge(cur, new_env)
            if merged is not cur:
                envs[dst] = merged
                wl.push(dst)
    return Dependences(deps=deps)


def _initial_env(program: Program) -> dict:
    env = {}
    for i in range(len(program.global_names)):
        env[("g", i)] = (frozenset(((INIT, ()),)), frozenset())
    return env


def _transfer(program: Program, action, env: dict, deps: set) -> None:
    me = (action.label, action.pid)
    for loc in action.reads:
        rep = _report_loc(program, loc)
        if rep is None:
            continue
        writers, readers = env.get(loc, (frozenset(), frozenset()))
        for w_label, w_pid in writers:
            deps.add(
                Dependence(
                    kind=FLOW,
                    src=w_label,
                    dst=action.label,
                    loc=rep,
                    cross_thread=w_label != INIT and _concurrent(w_pid, action.pid),
                )
            )
        env[loc] = (writers, readers | {me})
    for loc in action.writes:
        rep = _report_loc(program, loc)
        if rep is None:
            continue
        writers, readers = env.get(loc, (frozenset(), frozenset()))
        for w_label, w_pid in writers:
            deps.add(
                Dependence(
                    kind=OUTPUT,
                    src=w_label,
                    dst=action.label,
                    loc=rep,
                    cross_thread=w_label != INIT and _concurrent(w_pid, action.pid),
                )
            )
        for r_label, r_pid in readers:
            if r_label == action.label and r_pid == action.pid:
                continue
            deps.add(
                Dependence(
                    kind=ANTI,
                    src=r_label,
                    dst=action.label,
                    loc=rep,
                    cross_thread=_concurrent(r_pid, action.pid),
                )
            )
        env[loc] = (frozenset((me,)), frozenset())


def _merge(cur: dict | None, new: dict):
    """Union-merge two environments; returns ``cur`` when nothing new."""
    if cur is None:
        return new
    changed = False
    merged = dict(cur)
    for loc, (w, r) in new.items():
        cw, cr = merged.get(loc, (frozenset(), frozenset()))
        mw, mr = cw | w, cr | r
        if mw != cw or mr != cr:
            merged[loc] = (mw, mr)
            changed = True
    return merged if changed else cur
