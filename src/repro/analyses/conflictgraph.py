"""Shasha–Snir conflict graphs and minimal delay insertion ([SS88], §7/§8).

For straight-line cobegin segments, build:

- **P** — directed program-order edges within each segment;
- **C** — undirected conflict edges between statements of different
  segments (conflicting shared accesses, from the dependence analysis).

[SS88]: an execution order is sequentially consistent iff P ∪ E is
acyclic for the chosen orientation E of C; the hardware may reorder
within a segment unless a *delay* enforces a P edge.  Delays must be
chosen so that every *critical cycle* of P ∪ C — a simple cycle mixing
program and conflict edges — passes through an enforced edge.  We
enumerate the critical cycles and return a minimum hitting set of
P edges (exact search; segments are small).

The classic instance (the paper's Figure 2 / our E1, E9): segments
``A=1; y=B`` ‖ ``B=1; x=A`` have the single critical cycle
``s1 → s2 ~ s3 → s4 ~ s1`` and need **both** P edges delayed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.instructions import ICobegin
from repro.lang.program import Program
from repro.util.errors import AnalysisError


@dataclass
class Segments:
    """Ordered statement labels of each branch of one cobegin."""

    labels: list[list[str]]

    def program_edges(self) -> list[tuple[str, str]]:
        out = []
        for seg in self.labels:
            for a, b in zip(seg, seg[1:]):
                out.append((a, b))
        return out

    def segment_of(self) -> dict[str, int]:
        return {
            lbl: i for i, seg in enumerate(self.labels) for lbl in seg
        }


def extract_segments(program: Program, func: str = "main") -> Segments:
    """The straight-line segments of the (single) cobegin in *func*.

    Raises :class:`AnalysisError` if there is no cobegin or a branch is
    not straight-line (the [SS88] setting).
    """
    fc = program.funcs[func]
    cobegins = [
        (pc, ins) for pc, ins in enumerate(fc.instrs) if isinstance(ins, ICobegin)
    ]
    if not cobegins:
        raise AnalysisError(f"no cobegin in {func!r}")
    if len(cobegins) > 1:
        raise AnalysisError(f"multiple cobegins in {func!r}; pass segments explicitly")
    _, ins = cobegins[0]
    bounds = list(ins.branch_targets) + [ins.join_target]
    segments: list[list[str]] = []
    for i in range(len(ins.branch_targets)):
        labels: list[str] = []
        for pc in range(bounds[i], bounds[i + 1]):
            sub = fc.instrs[pc]
            kind = type(sub).__name__
            if kind in ("IBranch", "ICobegin"):
                raise AnalysisError(
                    "segments must be straight-line for Shasha–Snir delays"
                )
            if kind in ("IJump", "IThreadEnd"):
                continue
            if sub.label:
                labels.append(sub.label)
        segments.append(labels)
    return Segments(labels=segments)


@dataclass
class ConflictGraph:
    segments: Segments
    conflicts: set[frozenset]  # unordered label pairs across segments

    def critical_cycles(self) -> list[tuple[str, ...]]:
        """Simple cycles of P ∪ C using ≥2 conflict edges (each conflict
        traversed one way), found by DFS over the mixed graph."""
        p_edges = self.segments.program_edges()
        seg_of = self.segments.segment_of()
        adj: dict[str, list[tuple[str, str]]] = {}
        for a, b in p_edges:
            adj.setdefault(a, []).append((b, "P"))
        for pair in self.conflicts:
            a, b = sorted(pair)
            adj.setdefault(a, []).append((b, "C"))
            adj.setdefault(b, []).append((a, "C"))

        cycles: set[tuple[str, ...]] = set()
        nodes = sorted(adj)

        def dfs(start: str, node: str, path: list[str], kinds: list[str]) -> None:
            for nxt, kind in adj.get(node, []):
                if kind == "C" and kinds and kinds[-1] == "C":
                    continue  # alternate: no two conflict hops in a row
                if nxt == start and len(path) >= 2:
                    if kinds.count("C") + (kind == "C") >= 2:
                        cyc = _canon_cycle(path)
                        cycles.add(cyc)
                    continue
                if nxt in path or nxt < start:
                    continue
                dfs(start, nxt, path + [nxt], kinds + [kind])

        for n in nodes:
            dfs(n, n, [n], [])
        return sorted(cycles)

    def minimal_delays(self) -> list[tuple[str, str]]:
        """The [SS88] delay set: for every critical cycle, each maximal
        program-order run through a segment must be enforced end to end
        (one delay pair per run).  Leaving any run unenforced lets the
        hardware flip it and realize the cycle — the 2×2 example needs
        delays in *both* segments.  Runs shared between cycles are
        emitted once; the result is minimal for straight-line segments
        because each pair is necessary for its own cycle."""
        cycles = self.critical_cycles()
        p_edges = set(self.segments.program_edges())
        delays: set[tuple[str, str]] = set()
        for cyc in cycles:
            ring = list(cyc) + [cyc[0]]
            run_start: str | None = None
            prev: str | None = None
            for a, b in zip(ring, ring[1:]):
                if (a, b) in p_edges:
                    if run_start is None:
                        run_start = a
                    prev = b
                else:
                    if run_start is not None and prev is not None:
                        delays.add((run_start, prev))
                    run_start = None
                    prev = None
            if run_start is not None and prev is not None:
                delays.add((run_start, prev))
        return sorted(delays)


def _canon_cycle(path: list[str]) -> tuple[str, ...]:
    i = path.index(min(path))
    rot = tuple(path[i:] + path[:i])
    rev = tuple([rot[0]] + list(reversed(rot[1:])))
    return min(rot, rev)


def conflict_graph(program: Program, result, func: str = "main") -> ConflictGraph:
    """Build the [SS88] conflict graph from an explored graph.

    Conflicts are computed at *effect-set* granularity, so a segment of
    procedure calls (Example 15 / Figure 8) conflicts exactly where the
    callees' side effects interfere.
    """
    from repro.analyses.sideeffects import (
        effects_conflict,
        label_effects_with_callees,
    )

    segments = extract_segments(program, func)
    seg_of = segments.segment_of()
    effs = label_effects_with_callees(program, result)
    labels = [l for seg in segments.labels for l in seg]
    conflicts: set[frozenset] = set()
    for i, a in enumerate(labels):
        for b in labels[i + 1 :]:
            if seg_of[a] == seg_of[b]:
                continue
            ea = effs.get(a)
            eb = effs.get(b)
            if ea is not None and eb is not None and effects_conflict(ea, eb):
                conflicts.add(frozenset((a, b)))
    return ConflictGraph(segments=segments, conflicts=conflicts)
