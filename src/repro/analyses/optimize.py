"""Interference-aware constant folding as a source transformation (§7).

    "The information obtained facilitates program optimization,
    restructuring, and memory management."

This module closes the loop from analysis to *optimization*: globals
proven constant at a statement (by the abstract exploration of
:mod:`repro.analyses.constprop`, which accounts for every interleaving)
are substituted by their values, and literal subexpressions are folded.
The busy-wait flag of the introduction example is **not** substituted —
that is the whole point — while genuinely stable values are.

The rewriter works on the AST and mirrors the compiler's label
assignment exactly, so the per-label constant table lines up with the
statements it rewrites.  ``optimize_program`` returns new source text
plus a report of the substitutions; semantic preservation is checked in
the test suite by comparing exploration outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.absdomain.concrete_ops import apply_binop, apply_unop
from repro.analyses.constprop import ConstantsReport, constants_at
from repro.lang import ast_nodes as A
from repro.lang.parser import parse
from repro.lang.pretty import pretty_program
from repro.lang.program import Program
from repro.util.errors import AnalysisError


@dataclass
class Substitution:
    label: str
    name: str
    value: int


@dataclass
class OptimizeResult:
    source: str
    substitutions: list[Substitution] = field(default_factory=list)
    folded_ops: int = 0

    def describe(self) -> str:
        lines = [f"{len(self.substitutions)} substitutions, "
                 f"{self.folded_ops} operations folded"]
        for s in self.substitutions:
            lines.append(f"  at {s.label}: {s.name} -> {s.value}")
        return "\n".join(lines)


class _Rewriter:
    """Walks one function body in compiler label order, substituting
    known-constant globals into expressions."""

    def __init__(
        self,
        func_name: str,
        constants: ConstantsReport,
        global_names: set[str],
        result: OptimizeResult,
    ):
        self._func = func_name
        self._constants = constants
        self._globals = global_names
        self._result = result
        self._auto = 0
        self._locals: set[str] = set()

    # -- label bookkeeping (mirrors _FunctionCompiler) --------------------

    def _label_of(self, stmt: A.Stmt) -> str:
        if stmt.label is not None:
            return stmt.label
        label = f"{self._func}#{self._auto}"
        self._auto += 1
        return label

    # -- expressions -------------------------------------------------------

    def _subst(self, expr: A.Expr, consts: dict[str, int], label: str) -> A.Expr:
        if isinstance(expr, A.Name):
            name = expr.ident
            if (
                name in self._globals
                and name not in self._locals
                and name in consts
            ):
                self._result.substitutions.append(
                    Substitution(label=label, name=name, value=consts[name])
                )
                return A.IntLit(value=consts[name])
            return expr
        if isinstance(expr, A.Deref):
            return A.Deref(
                base=self._subst(expr.base, consts, label),
                index=self._subst(expr.index, consts, label),
            )
        if isinstance(expr, A.Unary):
            return self._fold(
                A.Unary(op=expr.op, operand=self._subst(expr.operand, consts, label))
            )
        if isinstance(expr, A.Binary):
            return self._fold(
                A.Binary(
                    op=expr.op,
                    left=self._subst(expr.left, consts, label),
                    right=self._subst(expr.right, consts, label),
                )
            )
        return expr

    def _fold(self, expr: A.Expr) -> A.Expr:
        if isinstance(expr, A.Binary):
            if isinstance(expr.left, A.IntLit) and isinstance(expr.right, A.IntLit):
                v = apply_binop(expr.op, expr.left.value, expr.right.value)
                if v is not None:
                    self._result.folded_ops += 1
                    return A.IntLit(value=v)
        if isinstance(expr, A.Unary) and isinstance(expr.operand, A.IntLit):
            v = apply_unop(expr.op, expr.operand.value)
            if v is not None:
                self._result.folded_ops += 1
                return A.IntLit(value=v)
        return expr

    # -- statements --------------------------------------------------------

    def rewrite_body(self, body: tuple[A.Stmt, ...]) -> tuple[A.Stmt, ...]:
        return tuple(self._rewrite_stmt(s) for s in body)

    def _lvalue(self, lv: A.LValue, consts, label) -> A.LValue:
        if isinstance(lv, A.DerefLV):
            return A.DerefLV(
                base=self._subst(lv.base, consts, label),
                index=self._subst(lv.index, consts, label),
            )
        return lv

    def _rewrite_stmt(self, stmt: A.Stmt) -> A.Stmt:
        if isinstance(stmt, A.VarDecl):
            if stmt.init is not None:
                label = self._label_of(stmt)
                consts = self._constants.at.get(label, {})
                new = A.VarDecl(
                    ident=stmt.ident,
                    init=self._subst(stmt.init, consts, label),
                    label=stmt.label,
                )
            else:
                new = stmt
            self._locals.add(stmt.ident)
            return new
        if isinstance(stmt, A.Assign):
            label = self._label_of(stmt)
            consts = self._constants.at.get(label, {})
            return A.Assign(
                target=self._lvalue(stmt.target, consts, label),
                expr=self._subst(stmt.expr, consts, label),
                label=stmt.label,
            )
        if isinstance(stmt, A.Malloc):
            label = self._label_of(stmt)
            consts = self._constants.at.get(label, {})
            return A.Malloc(
                target=self._lvalue(stmt.target, consts, label),
                size=self._subst(stmt.size, consts, label),
                label=stmt.label,
            )
        if isinstance(stmt, A.CallStmt):
            label = self._label_of(stmt)
            consts = self._constants.at.get(label, {})
            return A.CallStmt(
                callee=stmt.callee,
                args=tuple(self._subst(a, consts, label) for a in stmt.args),
                target=(
                    self._lvalue(stmt.target, consts, label)
                    if stmt.target is not None
                    else None
                ),
                label=stmt.label,
            )
        if isinstance(stmt, A.Return):
            label = self._label_of(stmt)
            consts = self._constants.at.get(label, {})
            return A.Return(
                expr=(
                    self._subst(stmt.expr, consts, label)
                    if stmt.expr is not None
                    else None
                ),
                label=stmt.label,
            )
        if isinstance(stmt, A.If):
            label = self._label_of(stmt)
            consts = self._constants.at.get(label, {})
            cond = self._subst(stmt.cond, consts, label)
            return A.If(
                cond=cond,
                then_body=self.rewrite_body(stmt.then_body),
                else_body=self.rewrite_body(stmt.else_body),
                label=stmt.label,
            )
        if isinstance(stmt, A.While):
            label = self._label_of(stmt)
            consts = self._constants.at.get(label, {})
            # the loop guard executes repeatedly: only constants that
            # hold at *every* iteration are in the table for the guard
            # label, so substitution is sound here too
            return A.While(
                cond=self._subst(stmt.cond, consts, label),
                body=self.rewrite_body(stmt.body),
                label=stmt.label,
            )
        if isinstance(stmt, A.Cobegin):
            self._label_of(stmt)  # consume the cobegin's label slot
            return A.Cobegin(
                branches=tuple(self.rewrite_body(b) for b in stmt.branches),
                label=stmt.label,
            )
        if isinstance(stmt, A.Assume):
            label = self._label_of(stmt)
            consts = self._constants.at.get(label, {})
            return A.Assume(
                cond=self._subst(stmt.cond, consts, label), label=stmt.label
            )
        if isinstance(stmt, A.Assert):
            label = self._label_of(stmt)
            consts = self._constants.at.get(label, {})
            return A.Assert(
                cond=self._subst(stmt.cond, consts, label), label=stmt.label
            )
        if isinstance(stmt, (A.Acquire, A.Release, A.Skip)):
            self._label_of(stmt)
            return stmt
        raise AnalysisError(f"unknown statement {type(stmt).__name__}")


def optimize_program(program: Program) -> OptimizeResult:
    """Constant-fold *program* using interference-aware constants.

    Requires the program to carry its source text (programs built via
    :func:`repro.lang.parse_program` do).
    """
    if program.source is None:
        raise AnalysisError("optimize_program needs a program with source text")
    constants = constants_at(program)
    ast = parse(program.source)
    result = OptimizeResult(source="")
    global_names = {g.ident for g in ast.globals}
    funcs = []
    for f in ast.funcs:
        rw = _Rewriter(f.name, constants, global_names, result)
        rw._locals.update(f.params)
        funcs.append(
            A.FuncDef(name=f.name, params=f.params, body=rw.rewrite_body(f.body))
        )
    new_ast = A.ProgramAST(globals=ast.globals, funcs=tuple(funcs))
    result.source = pretty_program(new_ast)
    return result
