"""Side-effect analysis (paper §5.1).

    "We say function f makes a reference to an object if the evaluation
    of f reads or writes the object."

Every explored transition carries the acting process's activation stack,
so one pass over the configuration graph attributes each shared access
to *every* active activation (callees' effects surface in their callers
— the interprocedural accumulation the paper gets from procedure
strings).  Locations are reported as globals by name and heap objects by
allocation site.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.explore.explorer import ExploreResult
from repro.lang.program import Program


@dataclass
class EffectSet:
    """Mod/ref sets over abstract locations:
    ``("g", name)`` / ``("site", site)``."""

    ref: set[tuple] = field(default_factory=set)
    mod: set[tuple] = field(default_factory=set)

    @property
    def pure(self) -> bool:
        """No shared references at all (the strongest §5.1 fact: calls
        to this function can be freely reordered/parallelized)."""
        return not self.ref and not self.mod

    @property
    def read_only(self) -> bool:
        return not self.mod


@dataclass
class SideEffects:
    """Per-function, per-statement and per-thread mod/ref information."""

    by_func: dict[str, EffectSet]
    by_label: dict[str, EffectSet]
    by_thread: dict[tuple, EffectSet]

    def functions_pure(self) -> list[str]:
        return sorted(f for f, e in self.by_func.items() if e.pure)

    def functions_read_only(self) -> list[str]:
        return sorted(f for f, e in self.by_func.items() if e.read_only)


def label_effects_with_callees(
    program: Program, result: ExploreResult
) -> dict[str, EffectSet]:
    """Statement-level effects where a call statement *absorbs its
    callees' effects* — the §5.1 device that lifts dependence testing to
    call granularity (Example 15: calls are dependent iff their callee
    effect sets conflict)."""
    from repro.analyses.accesses import access_analysis
    from repro.lang.instructions import ICall, RFunc

    eff = side_effects(program, result)
    access = access_analysis(program)
    out: dict[str, EffectSet] = {}
    for label, info in program.labels.items():
        base = eff.by_label.get(label, EffectSet())
        merged = EffectSet(ref=set(base.ref), mod=set(base.mod))
        ins = program.funcs[info.func].instrs[info.pc]
        if isinstance(ins, ICall):
            callees = (
                frozenset((ins.callee.name,))
                if isinstance(ins.callee, RFunc)
                else access.pts.callees(info.func, ins.callee)
            )
            for callee in sorted(callees):
                ceff = eff.by_func.get(callee)
                if ceff is not None:
                    merged.ref.update(ceff.ref)
                    merged.mod.update(ceff.mod)
        out[label] = merged
    return out


def effects_conflict(a: EffectSet, b: EffectSet) -> bool:
    """Do two effect sets interfere (write/any overlap)?"""
    return bool(a.mod & (b.ref | b.mod)) or bool(b.mod & a.ref)


def _abstract_loc(loc) -> tuple | None:
    if loc[0] == "g":
        return ("g", loc[1])
    if loc[0] == "h":
        return ("site", loc[1][0])
    return None  # process pseudo-locations are not objects


def side_effects(program: Program, result: ExploreResult) -> SideEffects:
    """Compute §5.1 side effects from an explored graph.

    Use a *full* (or at least reduction-without-truncation) exploration:
    every statement that can execute appears on some explored edge, so
    mod/ref sets are complete for the explored behaviours.
    """
    by_func: dict[str, EffectSet] = {f: EffectSet() for f in program.funcs}
    by_label: dict[str, EffectSet] = {}
    by_thread: dict[tuple, EffectSet] = {}

    def glob_name(loc):
        return ("g", program.global_names[loc[1]]) if loc[0] == "g" else _abstract_loc(loc)

    for edge in result.graph.iter_edges():
        for action in edge.actions:
            reads = [glob_name(l) for l in action.reads]
            writes = [glob_name(l) for l in action.writes]
            reads = [l for l in reads if l is not None]
            writes = [l for l in writes if l is not None]
            if not reads and not writes:
                continue
            lbl_eff = by_label.setdefault(action.label, EffectSet())
            lbl_eff.ref.update(reads)
            lbl_eff.mod.update(writes)
            thr_eff = by_thread.setdefault(action.pid, EffectSet())
            thr_eff.ref.update(reads)
            thr_eff.mod.update(writes)
            # A return's store into the call target is the *caller's*
            # write (§5.1 attributes references to the evaluation of f,
            # and the destination belongs to the call statement).
            write_stack = action.stack
            if action.kind == "IReturn" and len(write_stack) > 0:
                write_stack = write_stack[:-1]
            for func in set(action.stack):
                eff = by_func.setdefault(func, EffectSet())
                eff.ref.update(reads)
                if func in write_stack:
                    eff.mod.update(writes)
            for func in set(write_stack) - set(action.stack):  # pragma: no cover
                by_func.setdefault(func, EffectSet()).mod.update(writes)

    return SideEffects(by_func=by_func, by_label=by_label, by_thread=by_thread)
