"""Plain-text reports assembling the analyses — used by the CLI and the
examples to present results the way the paper's §5/§7 narrate them."""

from __future__ import annotations

from repro.analyses.constprop import licm_report
from repro.analyses.dependence import dependences
from repro.analyses.lifetime import lifetimes
from repro.analyses.memplace import placements
from repro.analyses.races import races
from repro.analyses.sideeffects import side_effects
from repro.explore.explorer import ExploreResult
from repro.lang.program import Program


def _fmt_loc(loc: tuple) -> str:
    if loc[0] == "g":
        return loc[1]
    return f"obj@{loc[1]}"


def full_report(program: Program, result: ExploreResult) -> str:
    """Run every §5/§7 analysis on an explored graph and render them."""
    lines: list[str] = []
    g = result.graph
    lines.append(
        f"exploration[{result.options.describe()}]: "
        f"{g.num_configs} configurations, {g.num_edges} transitions"
    )
    summary = g.result_summary()
    lines.append(
        f"results: {summary['terminated']} terminated, "
        f"{summary['deadlock']} deadlocked, {summary['fault']} faulted"
    )

    eff = side_effects(program, result)
    lines.append("")
    lines.append("side effects (per function):")
    for fname in sorted(eff.by_func):
        e = eff.by_func[fname]
        ref = ", ".join(sorted(_fmt_loc(l) for l in e.ref)) or "-"
        mod = ", ".join(sorted(_fmt_loc(l) for l in e.mod)) or "-"
        tag = " [pure]" if e.pure else (" [read-only]" if e.read_only else "")
        lines.append(f"  {fname}: ref={{{ref}}} mod={{{mod}}}{tag}")

    deps = dependences(program, result)
    cross = sorted(
        {d for d in deps.deps if d.cross_thread}, key=lambda d: (d.src, d.dst)
    )
    lines.append("")
    lines.append(f"cross-thread dependences ({len(cross)}):")
    for d in cross:
        lines.append(f"  {d.src} -{d.kind}-> {d.dst} on {_fmt_loc(d.loc)}")

    found_races = races(program, result)
    lines.append("")
    lines.append(f"access anomalies ({len(found_races)}):")
    for r in found_races:
        kind = "write/write" if r.both_write else "read/write"
        lines.append(f"  {{{r.label_a}, {r.label_b}}} on {_fmt_loc(r.loc)} ({kind})")

    lts = lifetimes(program, result)
    if lts.objects:
        lines.append("")
        lines.append("object lifetimes / placement:")
        for site, place in placements(lts).items():
            lines.append("  " + place.describe())
        dealloc = lts.dealloc_lists()
        if dealloc:
            lines.append("deallocation lists (free at function exit):")
            for fname, sites in sorted(dealloc.items()):
                lines.append(f"  {fname}: {', '.join(sites)}")

    licm = [l for l in licm_report(program) if l.seq_invariant]
    if licm:
        lines.append("")
        lines.append("loop-invariant loads (sequential vs interference-aware):")
        for l in licm:
            lines.append(
                f"  loop {l.loop_label} in {l.func}: sequential says "
                f"{list(l.seq_invariant)}; safe={list(l.safe)} "
                f"UNSAFE={list(l.unsafe)}"
            )

    return "\n".join(lines)
