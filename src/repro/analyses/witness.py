"""Witness extraction: shortest executions reaching a configuration.

The configuration graph is evidence; a *witness* turns it into an
explanation — the shortest interleaving that reaches a deadlock, a
fault, or any chosen outcome.  Useful both as a debugging aid (the
[MH89] side of the motivation) and in tests, where a claimed-reachable
result must be demonstrable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.explore.explorer import ExploreResult
from repro.explore.graph import DEADLOCK, FAULT, TERMINATED, ConfigGraph


@dataclass(frozen=True)
class Witness:
    """A shortest path ``initial → target`` through the explored graph."""

    target: int
    steps: tuple[tuple, ...]  # ((pid, label), ...) in execution order
    #: edge ids of the path, in order — lets the schedule generator
    #: (:mod:`repro.schedules`) canonicalize and replay-verify a witness
    eids: tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        lines = []
        for i, (pid, label) in enumerate(self.steps):
            lines.append(f"  {i + 1:3d}. thread {pid}: {label}")
        return "\n".join(lines)


def shortest_path_to(graph: ConfigGraph, target: int) -> Witness | None:
    """BFS from the initial configuration to *target*."""
    if target == graph.initial:
        return Witness(target=target, steps=())
    parent: dict[int, int] = {graph.initial: -1}
    via: dict[int, int] = {}
    queue: deque[int] = deque([graph.initial])
    while queue:
        cid = queue.popleft()
        for eid in graph.out_edges.get(cid, []):
            edge = graph.edges[eid]
            if edge.dst in parent:
                continue
            parent[edge.dst] = cid
            via[edge.dst] = eid
            if edge.dst == target:
                return _unwind(graph, target, parent, via)
            queue.append(edge.dst)
    return None


def _unwind(graph, target, parent, via) -> Witness:
    steps: list[tuple] = []
    eids: list[int] = []
    cid = target
    while parent[cid] != -1:
        eids.append(via[cid])
        edge = graph.edges[via[cid]]
        for action in reversed(edge.actions):
            steps.append((action.pid, action.label))
        cid = parent[cid]
    steps.reverse()
    eids.reverse()
    return Witness(target=target, steps=tuple(steps), eids=tuple(eids))


def deadlock_witness(result: ExploreResult) -> Witness | None:
    """Shortest execution reaching some deadlock (None if none exist)."""
    targets = result.graph.terminals(DEADLOCK)
    return _best(result.graph, targets)


def fault_witness(result: ExploreResult) -> Witness | None:
    """Shortest execution reaching some fault."""
    targets = result.graph.terminals(FAULT)
    return _best(result.graph, targets)


def outcome_witness(result: ExploreResult, **globals_values: int) -> Witness | None:
    """Shortest execution terminating with the given global values,
    e.g. ``outcome_witness(r, x=0, y=1)``.

    Only TERMINATED configurations qualify — a deadlocked configuration
    whose globals happen to match is not a terminating execution (it
    used to slip through the old ``fault is None`` filter, so a caller
    asking "can the program *finish* with x=1?" could get a deadlock
    path as its "yes").
    """
    program = result.program
    idx = {program.global_index(k): v for k, v in globals_values.items()}
    targets = [
        cid
        for cid in result.graph.terminals(TERMINATED)
        if all(result.graph.configs[cid].globals[i] == v for i, v in idx.items())
    ]
    return _best(result.graph, targets)


def replay(program, witness: Witness, *, opts=None):
    """Re-execute a witness concretely, step by step.

    Returns the final :class:`~repro.semantics.config.Config`; raises
    ``AssertionError`` if a scheduled process is not enabled or executes
    a different statement than recorded — the cross-check that the
    explored graph's paths are genuine executions.
    """
    from repro.semantics.config import initial_config
    from repro.semantics.step import StepOptions, enabledness, execute

    options = opts if opts is not None else StepOptions()
    config = initial_config(
        program, track_procstrings=options.track_procstrings
    )
    for pid, label in witness.steps:
        proc = config.proc(pid)
        enabled, _, _ = enabledness(program, config, proc)
        assert enabled, f"witness step {label} of {pid} is not enabled"
        config, action = execute(program, config, proc, options)
        assert action.label == label, (
            f"witness expected {label}, executed {action.label}"
        )
    return config


def _best(graph: ConfigGraph, targets: list[int]) -> Witness | None:
    best: Witness | None = None
    for t in targets:
        w = shortest_path_to(graph, t)
        if w is not None and (best is None or len(w) < len(best)):
            best = w
    return best
