"""Client analyses of the framework (paper §5 and §7).

Substrate analyses (imported eagerly — the exploration engine depends
on them):

- :mod:`repro.analyses.pointsto` — Andersen-style points-to;
- :mod:`repro.analyses.accesses` — static future access sets and
  critical-reference classification.

Derived analyses (lazy, to keep the engine→analyses→engine import
chain acyclic):

- :mod:`repro.analyses.mhp` — may-happen-in-parallel;
- :mod:`repro.analyses.sideeffects` — per-function/thread mod-ref (§5.1);
- :mod:`repro.analyses.dependence` — data dependences (§5.2);
- :mod:`repro.analyses.lifetime` — object lifetimes/extents (§5.3);
- :mod:`repro.analyses.races` — access-anomaly detection;
- :mod:`repro.analyses.conflictgraph` — Shasha–Snir conflict graphs and
  minimal delay insertion;
- :mod:`repro.analyses.parallelize` — further parallelization (Ex. 15);
- :mod:`repro.analyses.memplace` — memory placement (§7);
- :mod:`repro.analyses.constprop` — interference-aware constants/LICM;
- :mod:`repro.analyses.report` — assembled text reports.
"""

from repro.analyses.accesses import (
    AccessAnalysis,
    StaticAccess,
    access_analysis,
    matches,
)
from repro.analyses.pointsto import PointsTo, points_to

_LAZY = {
    "ConflictGraph": ("repro.analyses.conflictgraph", "ConflictGraph"),
    "conflict_graph": ("repro.analyses.conflictgraph", "conflict_graph"),
    "extract_segments": ("repro.analyses.conflictgraph", "extract_segments"),
    "constants_at": ("repro.analyses.constprop", "constants_at"),
    "licm_report": ("repro.analyses.constprop", "licm_report"),
    "Dependence": ("repro.analyses.dependence", "Dependence"),
    "Dependences": ("repro.analyses.dependence", "Dependences"),
    "dependences": ("repro.analyses.dependence", "dependences"),
    "Lifetimes": ("repro.analyses.lifetime", "Lifetimes"),
    "ObjectLifetime": ("repro.analyses.lifetime", "ObjectLifetime"),
    "lifetimes": ("repro.analyses.lifetime", "lifetimes"),
    "Placement": ("repro.analyses.memplace", "Placement"),
    "placements": ("repro.analyses.memplace", "placements"),
    "mhp_dynamic": ("repro.analyses.mhp", "mhp_dynamic"),
    "mhp_static": ("repro.analyses.mhp", "mhp_static"),
    "ParallelSchedule": ("repro.analyses.parallelize", "ParallelSchedule"),
    "further_parallelize": ("repro.analyses.parallelize", "further_parallelize"),
    "Race": ("repro.analyses.races", "Race"),
    "races": ("repro.analyses.races", "races"),
    "full_report": ("repro.analyses.report", "full_report"),
    "EffectSet": ("repro.analyses.sideeffects", "EffectSet"),
    "SideEffects": ("repro.analyses.sideeffects", "SideEffects"),
    "side_effects": ("repro.analyses.sideeffects", "side_effects"),
    "OptimizeResult": ("repro.analyses.optimize", "OptimizeResult"),
    "optimize_program": ("repro.analyses.optimize", "optimize_program"),
    "Witness": ("repro.analyses.witness", "Witness"),
    "deadlock_witness": ("repro.analyses.witness", "deadlock_witness"),
    "fault_witness": ("repro.analyses.witness", "fault_witness"),
    "outcome_witness": ("repro.analyses.witness", "outcome_witness"),
}

__all__ = [
    "AccessAnalysis",
    "PointsTo",
    "StaticAccess",
    "access_analysis",
    "matches",
    "points_to",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    entry = _LAZY.get(name)
    if entry is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(entry[0])
    value = getattr(module, entry[1])
    globals()[name] = value
    return value
