"""Memory placement (paper §7, "memory management").

    "In a system with hierarchical memories, suppose each cobegin thread
    is executed in a processor.  If we know an object will be referenced
    by another concurrent thread, then it should be allocated in the
    memory accessible to both threads."

From the lifetime analysis: each allocation site is placed at the
memory level of the deepest thread shared by all its accessors — the
thread-tree LCA.  Site-level summary (a site is as shared as its most
shared object).  For Example 8: *b1* lands at the level of the common
ancestor (shared memory), *b2* stays thread-local.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyses.lifetime import Lifetimes


@dataclass(frozen=True)
class Placement:
    """Where objects of one site should be allocated."""

    site: str
    level_pid: tuple  # the thread whose memory level hosts the objects
    thread_local: bool  # no concurrent sharing observed
    stack_allocatable: bool

    def describe(self) -> str:
        kind = "thread-local" if self.thread_local else "shared"
        extra = ", stack-allocatable" if self.stack_allocatable else ""
        return f"{self.site}: {kind} at thread {self.level_pid}{extra}"


def placements(lifetimes: Lifetimes) -> dict[str, Placement]:
    """Per-site placement decisions."""
    out: dict[str, Placement] = {}
    for site, lts in sorted(lifetimes.by_site().items()):
        level: tuple | None = None
        multi = False
        stack_ok = True
        for lt in lts:
            p = lt.placement_pid
            level = p if level is None else _lca(level, p)
            multi = multi or lt.multi_thread
            stack_ok = stack_ok and lt.stack_allocatable
        assert level is not None
        out[site] = Placement(
            site=site,
            level_pid=level,
            thread_local=not multi,
            stack_allocatable=stack_ok,
        )
    return out


def _lca(a: tuple, b: tuple) -> tuple:
    out = []
    for x, y in zip(a, b):
        if x != y:
            break
        out.append(x)
    return tuple(out)
