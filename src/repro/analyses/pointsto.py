"""Flow-insensitive, inclusion-based points-to analysis (Andersen-style).

A static substrate analysis used by:

- the static *future access sets* (:mod:`repro.analyses.accesses`) that
  the stubborn-set closure consults for processes outside the candidate
  set — pointer dereferences resolve to allocation-*site* sets instead
  of "the whole heap";
- the call graph for first-class function values.

Abstract locations:

- ``("g", i)`` — global variable *i*;
- ``("l", func, slot)`` — a local slot of *func* (all activations);
- ``("cell", site)`` — any cell of any object allocated at *site*
  (field-insensitive heap summarization, the allocation-site abstraction
  of the paper's §6);
- ``("ret", func)`` — the return value of *func*.

Pointed-to targets:

- ``("site", site)`` — objects of an allocation site;
- ``("gobj",)`` — the globals area (targets of ``&g``);
- ``("func", name)`` — a function value.

The solver iterates simple sweeps to a fixpoint; subject programs are
small, so the cubic worst case is irrelevant in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.instructions import (
    IAlloc,
    IAssert,
    IAssign,
    IAssume,
    IBranch,
    ICall,
    IReturn,
    LDeref,
    LGlobal,
    LLocal,
    RAddrGlobal,
    RBinary,
    RConst,
    RDeref,
    RExpr,
    RFunc,
    RGlobal,
    RLocal,
    RUnary,
)
from repro.lang.program import Program

Node = tuple
Target = tuple

GOBJ: Target = ("gobj",)


@dataclass
class PointsTo:
    """The points-to solution for one program."""

    program: Program
    _sol: dict[Node, set[Target]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def node(self, node: Node) -> frozenset[Target]:
        return frozenset(self._sol.get(node, ()))

    def targets_of_expr(self, func: str, expr: RExpr) -> frozenset[Target]:
        """Possible pointer/function targets of *expr* evaluated in *func*."""
        return frozenset(self._eval(func, expr))

    def deref_sites(self, func: str, base: RExpr) -> tuple[frozenset[str], bool]:
        """Sites a dereference of *base* may touch, plus whether it may
        touch the globals area (``&g`` pointers)."""
        targets = self._eval(func, base)
        sites = frozenset(t[1] for t in targets if t[0] == "site")
        return sites, GOBJ in targets

    def callees(self, func: str, callee: RExpr) -> frozenset[str]:
        """Functions an indirect call may invoke."""
        return frozenset(t[1] for t in self._eval(func, callee) if t[0] == "func")

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------

    def solve(self) -> "PointsTo":
        program = self.program
        changed = True
        sweeps = 0
        while changed:
            changed = False
            sweeps += 1
            if sweeps > 1000:  # pragma: no cover - safety valve
                raise RuntimeError("points-to failed to converge")
            for fname in sorted(program.funcs):
                fc = program.funcs[fname]
                for ins in fc.instrs:
                    changed |= self._constrain(fname, ins)
        return self

    def _get(self, node: Node) -> set[Target]:
        return self._sol.setdefault(node, set())

    def _add(self, node: Node, targets: set[Target]) -> bool:
        cur = self._get(node)
        before = len(cur)
        cur |= targets
        return len(cur) != before

    def _eval(self, func: str, expr: RExpr) -> set[Target]:
        if isinstance(expr, (RConst,)):
            return set()
        if isinstance(expr, RLocal):
            return set(self._get(("l", func, expr.slot)))
        if isinstance(expr, RGlobal):
            return set(self._get(("g", expr.index)))
        if isinstance(expr, RAddrGlobal):
            return {GOBJ}
        if isinstance(expr, RFunc):
            return {("func", expr.name)}
        if isinstance(expr, RDeref):
            base = self._eval(func, expr.base)
            out: set[Target] = set()
            for t in base:
                if t[0] == "site":
                    out |= self._get(("cell", t[1]))
            if GOBJ in base:
                for i in range(len(self.program.global_names)):
                    out |= self._get(("g", i))
            return out
        if isinstance(expr, RUnary):
            return self._eval(func, expr.operand)
        if isinstance(expr, RBinary):
            return self._eval(func, expr.left) | self._eval(func, expr.right)
        return set()

    def _assign_to(self, func: str, lv, targets: set[Target]) -> bool:
        if isinstance(lv, LLocal):
            return self._add(("l", func, lv.slot), targets)
        if isinstance(lv, LGlobal):
            return self._add(("g", lv.index), targets)
        if isinstance(lv, LDeref):
            base = self._eval(func, lv.base)
            changed = False
            for t in base:
                if t[0] == "site":
                    changed |= self._add(("cell", t[1]), targets)
            if GOBJ in base:
                for i in range(len(self.program.global_names)):
                    changed |= self._add(("g", i), targets)
            return changed
        return False

    def _constrain(self, func: str, ins) -> bool:
        changed = False
        if isinstance(ins, IAssign):
            changed |= self._assign_to(func, ins.target, self._eval(func, ins.expr))
        elif isinstance(ins, IAlloc):
            changed |= self._assign_to(func, ins.target, {("site", ins.site)})
        elif isinstance(ins, ICall):
            callees = {t[1] for t in self._eval(func, ins.callee) if t[0] == "func"}
            for callee in sorted(callees):
                fc = self.program.funcs.get(callee)
                if fc is None:
                    continue
                for slot, arg in enumerate(ins.args[: fc.num_params]):
                    changed |= self._add(("l", callee, slot), self._eval(func, arg))
                if ins.target is not None:
                    changed |= self._assign_to(
                        func, ins.target, set(self._get(("ret", callee)))
                    )
        elif isinstance(ins, IReturn):
            if ins.expr is not None:
                changed |= self._add(("ret", func), self._eval(func, ins.expr))
        elif isinstance(ins, (IBranch, IAssume, IAssert)):
            pass  # conditions produce no pointer flow
        return changed


def points_to(program: Program) -> PointsTo:
    """Compute and return the points-to solution for *program*."""
    return PointsTo(program).solve()
