"""Static access sets and sharedness classification.

Two static substrates used by the exploration reductions:

1. **Future access sets** — for every program point ``(func, pc)``, an
   over-approximation of every shared location the process could read or
   write *from that point on* (through calls, spawned threads, loops).
   The stubborn-set closure uses them for processes outside the
   candidate set: if the candidate's next action cannot conflict with
   anything an outside process will *ever* do, that process can safely
   stay outside (the paper's §2.2-2.3 "locality" argument).

2. **Sharedness / critical references** — the paper's Definition 4:
   a read is *critical* if the location may be written by a concurrent
   thread; a write is critical if the location may be read or written by
   a concurrent thread.  Virtual coarsening (Observation 5) fuses atomic
   actions as long as a block holds at most one critical reference.
   Concurrency is structural: only sibling cobegin branches (and their
   descendants) overlap, so we intersect the branch-start future sets of
   sibling pairs.

Static locations:

- ``("g", i)`` — a specific global;
- ``("g", "*")`` — any global (dereference of an ``&g`` pointer);
- ``("site", s)`` — any cell of any object allocated at site *s*.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import ClassVar

from repro.analyses.pointsto import PointsTo, points_to
from repro.lang.instructions import (
    IAcquire,
    IAlloc,
    IAssert,
    IAssign,
    IAssume,
    IBranch,
    ICall,
    ICobegin,
    IJump,
    IRelease,
    IReturn,
    LDeref,
    LGlobal,
    LLocal,
    RBinary,
    RDeref,
    RExpr,
    RGlobal,
    RUnary,
)
from repro.lang.program import Program
from repro.semantics.config import Loc, Process
from repro.util.fixpoint import Worklist

StaticLoc = tuple

ANY_GLOBAL: StaticLoc = ("g", "*")


@dataclass(frozen=True)
class StaticAccess:
    """A pair of static read/write location sets."""

    reads: frozenset[StaticLoc]
    writes: frozenset[StaticLoc]

    EMPTY: ClassVar["StaticAccess"]

    def union(self, other: "StaticAccess") -> "StaticAccess":
        return StaticAccess(self.reads | other.reads, self.writes | other.writes)

    @property
    def all(self) -> frozenset[StaticLoc]:
        return self.reads | self.writes


StaticAccess.EMPTY = StaticAccess(frozenset(), frozenset())


def matches(static_set: frozenset[StaticLoc], loc: Loc) -> bool:
    """Does a *dynamic* location fall under a static location set?"""
    kind = loc[0]
    if kind == "g":
        return ("g", loc[1]) in static_set or ANY_GLOBAL in static_set
    if kind == "h":
        return ("site", loc[1][0]) in static_set
    return False  # ("p", pid) pseudo-locations are handled structurally


def _covered(a: StaticLoc, sset: frozenset[StaticLoc]) -> bool:
    """May static location *a* denote a location also denoted in *sset*?"""
    if a in sset:
        return True
    if a[0] == "g":
        if a[1] == "*":
            return any(x[0] == "g" for x in sset)
        return ANY_GLOBAL in sset
    return False


class AccessAnalysis:
    """Future access sets plus sharedness classification for a program."""

    def __init__(
        self,
        program: Program,
        pts: PointsTo | None = None,
        *,
        coarse_derefs: bool = False,
    ):
        """``coarse_derefs=True`` disables the points-to refinement:
        every dereference statically touches every allocation site (and
        the globals area) — the ablation baseline for how much pointer
        precision buys the reductions."""
        self.program = program
        self.coarse_derefs = coarse_derefs
        self.pts = pts if pts is not None else points_to(program)
        self._future: dict[tuple[str, int], StaticAccess] = {}
        self._gen_cache: dict[tuple[str, int], StaticAccess] = {}
        self._compute_structure()
        self._compute_futures()
        self._compute_sharedness()

    def gen_at(self, func: str, pc: int) -> StaticAccess:
        """Cached static access sets of the instruction at ``(func, pc)``."""
        acc = self._gen_cache.get((func, pc))
        if acc is None:
            acc = self.gen(func, self.program.funcs[func].instrs[pc])
            self._gen_cache[(func, pc)] = acc
        return acc

    # ------------------------------------------------------------------
    # per-instruction generated accesses
    # ------------------------------------------------------------------

    def _expr_reads(self, func: str, expr: RExpr | None, out: set[StaticLoc]) -> None:
        if expr is None:
            return
        if isinstance(expr, RGlobal):
            out.add(("g", expr.index))
        elif isinstance(expr, RDeref):
            self._expr_reads(func, expr.base, out)
            self._expr_reads(func, expr.index, out)
            out |= self._deref_locs(func, expr.base)
        elif isinstance(expr, RUnary):
            self._expr_reads(func, expr.operand, out)
        elif isinstance(expr, RBinary):
            self._expr_reads(func, expr.left, out)
            self._expr_reads(func, expr.right, out)

    def _deref_locs(self, func: str, base: RExpr) -> set[StaticLoc]:
        if self.coarse_derefs:
            locs: set[StaticLoc] = {("site", s) for s in self.program.sites}
            locs.add(ANY_GLOBAL)
            return locs
        sites, gobj = self.pts.deref_sites(func, base)
        locs = {("site", s) for s in sites}
        if gobj:
            locs.add(ANY_GLOBAL)
        return locs

    def gen(self, func: str, ins) -> StaticAccess:
        """Static read/write sets of a single instruction."""
        reads: set[StaticLoc] = set()
        writes: set[StaticLoc] = set()
        if isinstance(ins, IAssign):
            self._expr_reads(func, ins.expr, reads)
            self._lvalue_access(func, ins.target, reads, writes)
        elif isinstance(ins, IAlloc):
            self._expr_reads(func, ins.size, reads)
            self._lvalue_access(func, ins.target, reads, writes)
        elif isinstance(ins, (IBranch, IAssume, IAssert)):
            self._expr_reads(func, ins.cond, reads)
        elif isinstance(ins, IAcquire):
            reads.add(("g", ins.index))
            writes.add(("g", ins.index))
        elif isinstance(ins, IRelease):
            writes.add(("g", ins.index))
        elif isinstance(ins, ICall):
            self._expr_reads(func, ins.callee, reads)
            for a in ins.args:
                self._expr_reads(func, a, reads)
            if ins.target is not None:
                self._lvalue_access(func, ins.target, reads, writes)
        elif isinstance(ins, IReturn):
            self._expr_reads(func, ins.expr, reads)
        return StaticAccess(frozenset(reads), frozenset(writes))

    def _lvalue_access(
        self, func: str, lv, reads: set[StaticLoc], writes: set[StaticLoc]
    ) -> None:
        if isinstance(lv, LGlobal):
            writes.add(("g", lv.index))
        elif isinstance(lv, LDeref):
            self._expr_reads(func, lv.base, reads)
            self._expr_reads(func, lv.index, reads)
            writes |= self._deref_locs(func, lv.base)
        elif isinstance(lv, LLocal):
            pass

    # ------------------------------------------------------------------
    # control structure
    # ------------------------------------------------------------------

    def succs(self, func: str, pc: int) -> list[tuple[str, int]]:
        """Intraprocedural CFG successors (branch targets, fallthrough,
        cobegin branches + join)."""
        return self._succs(func, pc)

    def preds(self, func: str, pc: int) -> tuple[tuple[str, int], ...]:
        """Intraprocedural CFG predecessors."""
        return self._preds.get((func, pc), ())

    def entry_callers(self, func: str) -> tuple[tuple[str, int], ...]:
        """Call instructions (anywhere) that may invoke *func*."""
        return self._entry_callers.get(func, ())

    def returns_of(self, func: str) -> tuple[int, ...]:
        """PCs of the return instructions of *func*."""
        return self._returns.get(func, ())

    def threadends_of(self, func: str) -> tuple[int, ...]:
        """PCs of the thread-end instructions of *func*."""
        return self._threadends.get(func, ())

    def call_targets(self, func: str, pc: int) -> list[str]:
        return self._call_targets(func, self.program.funcs[func].instrs[pc])

    def reachable_from(self, func: str, pc: int) -> frozenset[tuple[str, int]]:
        """All instruction points statically reachable from ``(func,
        pc)`` through the CFG, calls, and cobegin branches (the process's
        *instruction universe* from that point)."""
        cached = self._reach_cache.get((func, pc))
        if cached is not None:
            return cached
        seen: set[tuple[str, int]] = set()
        work = [(func, pc)]
        while work:
            key = work.pop()
            if key in seen:
                continue
            seen.add(key)
            f, p = key
            for s in self._succs(f, p):
                if s not in seen:
                    work.append(s)
            ins = self.program.funcs[f].instrs[p]
            for callee in self._call_targets(f, ins):
                if self.program.funcs[callee].instrs and (callee, 0) not in seen:
                    work.append((callee, 0))
        result = frozenset(seen)
        self._reach_cache[(func, pc)] = result
        return result

    def _compute_structure(self) -> None:
        from repro.lang.instructions import IReturn as _IReturn
        from repro.lang.instructions import IThreadEnd as _IThreadEnd

        program = self.program
        preds: dict[tuple[str, int], list[tuple[str, int]]] = {}
        entry_callers: dict[str, list[tuple[str, int]]] = {}
        returns: dict[str, list[int]] = {}
        threadends: dict[str, list[int]] = {}
        for f in sorted(program.funcs):
            instrs = program.funcs[f].instrs
            returns[f] = [pc for pc, i in enumerate(instrs) if isinstance(i, _IReturn)]
            threadends[f] = [
                pc for pc, i in enumerate(instrs) if isinstance(i, _IThreadEnd)
            ]
            for pc, ins in enumerate(instrs):
                for s in self._succs(f, pc):
                    preds.setdefault(s, []).append((f, pc))
                for callee in self._call_targets(f, ins):
                    entry_callers.setdefault(callee, []).append((f, pc))
        self._preds = {k: tuple(v) for k, v in preds.items()}
        self._entry_callers = {k: tuple(v) for k, v in entry_callers.items()}
        self._returns = {k: tuple(v) for k, v in returns.items()}
        self._threadends = {k: tuple(v) for k, v in threadends.items()}
        self._reach_cache: dict[tuple[str, int], frozenset] = {}

    # ------------------------------------------------------------------
    # future sets (backward interprocedural fixpoint)
    # ------------------------------------------------------------------

    def _succs(self, func: str, pc: int) -> list[tuple[str, int]]:
        from repro.lang.instructions import IThreadEnd as _IThreadEnd

        ins = self.program.funcs[func].instrs[pc]
        if isinstance(ins, (IReturn, _IThreadEnd)):
            return []
        if isinstance(ins, IJump):
            return [(func, ins.target)]
        if isinstance(ins, IBranch):
            return [(func, ins.then_target), (func, ins.else_target)]
        if isinstance(ins, ICobegin):
            return [(func, t) for t in ins.branch_targets] + [
                (func, ins.join_target)
            ]
        if pc + 1 < len(self.program.funcs[func].instrs):
            return [(func, pc + 1)]
        return []

    def _call_targets(self, func: str, ins) -> list[str]:
        if not isinstance(ins, ICall):
            return []
        callees = self.pts.callees(func, ins.callee)
        return sorted(c for c in callees if c in self.program.funcs)

    def _compute_futures(self) -> None:
        program = self.program
        keys = [
            (f, pc)
            for f in sorted(program.funcs)
            for pc in range(len(program.funcs[f].instrs))
        ]
        future = {k: StaticAccess.EMPTY for k in keys}
        # reverse dependency map: when value(k) changes, recompute preds(k)
        preds: dict[tuple[str, int], list[tuple[str, int]]] = {k: [] for k in keys}
        call_sites_of: dict[str, list[tuple[str, int]]] = {
            f: [] for f in program.funcs
        }
        for f, pc in keys:
            ins = program.funcs[f].instrs[pc]
            for s in self._succs(f, pc):
                preds[s].append((f, pc))
            for callee in self._call_targets(f, ins):
                call_sites_of[callee].append((f, pc))
        wl = Worklist(reversed(keys))
        while wl:
            f, pc = wl.pop()
            ins = program.funcs[f].instrs[pc]
            acc = self.gen(f, ins)
            for s in self._succs(f, pc):
                acc = acc.union(future[s])
            for callee in self._call_targets(f, ins):
                if program.funcs[callee].instrs:
                    acc = acc.union(future[(callee, 0)])
            if acc != future[(f, pc)]:
                future[(f, pc)] = acc
                for p in preds[(f, pc)]:
                    wl.push(p)
                if pc == 0:
                    for cs in call_sites_of[f]:
                        wl.push(cs)
        self._future = future

    def future(self, func: str, pc: int) -> StaticAccess:
        """Everything reachable code from ``(func, pc)`` may access."""
        return self._future[(func, pc)]

    def future_of_proc(self, proc: Process) -> StaticAccess:
        """Union of futures over all frames of a process.

        Lower frames resume at their stored continuation pc; a joining
        process sits at its cobegin, whose future includes the join
        continuation.
        """
        acc = StaticAccess.EMPTY
        for fr in proc.frames:
            acc = acc.union(self.future(fr.func, fr.pc))
            if fr.ret_loc is not None and fr.ret_loc[0] == "g":
                acc = StaticAccess(acc.reads, acc.writes | {("g", fr.ret_loc[1])})
            elif fr.ret_loc is not None and fr.ret_loc[0] == "h":
                acc = StaticAccess(
                    acc.reads, acc.writes | {("site", fr.ret_loc[1][0])}
                )
        return acc

    # ------------------------------------------------------------------
    # sharedness (critical references)
    # ------------------------------------------------------------------

    def _compute_sharedness(self) -> None:
        program = self.program
        conc_written: set[StaticLoc] = set()   # written w/ concurrent access
        conc_read_or_written: set[StaticLoc] = set()
        for f in sorted(program.funcs):
            for ins in program.funcs[f].instrs:
                if not isinstance(ins, ICobegin):
                    continue
                branch_accs = [self.future(f, t) for t in ins.branch_targets]
                for i, a in enumerate(branch_accs):
                    for j, b in enumerate(branch_accs):
                        if i == j:
                            continue
                        # writes in a concurrent with any access in b
                        for w in a.writes:
                            if _covered(w, b.all):
                                conc_written.add(w)
                        # reads in a concurrent with writes in b
                        for r in a.reads:
                            if _covered(r, b.writes):
                                conc_read_or_written.add(r)
                        for w in a.writes:
                            if _covered(w, b.all):
                                conc_read_or_written.add(w)
        self._conc_written = frozenset(conc_written)
        self._conc_any = frozenset(conc_read_or_written)

    def crit_read(self, loc: Loc) -> bool:
        """May this dynamic read see a concurrent write?  (Def. 4)"""
        return matches(self._conc_written, loc)

    def crit_write(self, loc: Loc) -> bool:
        """May this dynamic write race a concurrent access?  (Def. 4)"""
        return matches(self._conc_any, loc)

    @property
    def shared_static_locs(self) -> frozenset[StaticLoc]:
        """Locations with any potential concurrent access (reporting)."""
        return self._conc_any


@lru_cache(maxsize=64)
def access_analysis(program: Program) -> AccessAnalysis:
    """Compute (and cache per program object) the access analysis.

    ``Program`` hashes by identity, so the cache is per compiled object.
    """
    return AccessAnalysis(program)
