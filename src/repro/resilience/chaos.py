"""Fault injection: make the engine's failure handling testable.

The exploration engine promises to *degrade* rather than crash: a
raising observer becomes a warning plus a ``degraded_observers`` stat, a
crashing selector falls back to full expansion, a broken expansion step
truncates the search, and failed checkpoint I/O is logged and skipped.
Those promises are worthless untested, and the underlying failures are
(by design) hard to trigger — so the engine exposes *failure points*
that a test can arm.

Usage::

    from repro.resilience import chaos

    with chaos.injected("selector", times=-1):
        result = explore(program, "stubborn")   # never raises
    assert result.stats.selector_faults > 0

Failure points wired into the engine (see :data:`POINTS`):

``observer``
    fires inside the guarded dispatch of every observer callback —
    equivalent to the observer itself raising;
``selector``
    fires on every stubborn-set selection;
``eval``
    fires when computing a configuration's expansions (the semantic
    core) — simulates an engine bug mid-search;
``checkpoint``
    fires inside snapshot writes — simulates a full disk / bad path;
``worker``
    fires at the top of a parallel worker's task execution and makes the
    worker process *hard-exit* (``os._exit``) — simulates an OOM kill or
    segfault of one shard owner;
``worker-hang``
    fires at the same site but makes the worker sleep indefinitely —
    simulates a wedged worker that the master's watchdog must detect;
``store-io``
    fires inside durable-store and snapshot *writes*, per low-level
    ``write()`` call — simulates a disk filling up (or dying) midway
    through a file, so atomicity guarantees get exercised against
    partially written temp files, not just failed opens;
``store-corrupt``
    silent bit-rot: instead of raising, a firing makes the durable
    store *flip bytes* in the payload it is about to write, so the
    entry lands on disk with a checksum mismatch the read path must
    detect and quarantine;
``serve-worker-kill``
    fires at the top of an analysis-service job worker
    (:mod:`repro.serve.worker`) and hard-exits the process — the
    serve-layer twin of ``worker``, simulating an OOM-killed job that
    the server must resume from its last checkpoint.

The ``worker*`` points fire inside forked worker processes, whose memory
is copy-on-write: a firing there is invisible to the master (and to any
restarted worker pool) unless the armed state lives in shared memory.
Arm them with ``shared=True`` so ``times=1`` means *once across every
process* — the restarted pool then runs clean.

When no injector is installed (:data:`_ACTIVE` is None) every kick is a
single attribute test — cheap enough for the hot loop.  The module is
intentionally free of any ``repro.explore`` import so the engine can
import it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

#: Failure points the engine kicks.  Arming any other name is an error —
#: a misspelled chaos test would silently test nothing.
POINTS = (
    "observer", "selector", "eval", "checkpoint", "worker", "worker-hang",
    "store-io", "store-corrupt", "serve-worker-kill",
)


class ChaosFault(RuntimeError):
    """An injected failure.

    Deliberately *not* a :class:`~repro.util.errors.ReproError`: injected
    faults simulate unexpected internal bugs, so they must exercise the
    generic ``except Exception`` guards, not the typed error paths.
    """


@dataclass
class _Armed:
    """State of one armed failure point."""

    after: int  # calls to let through before firing
    times: int  # firings allowed; -1 = unlimited
    fired: int = 0

    def try_fire(self) -> int:
        """Consume one kick; return the firing ordinal (>0) or 0."""
        if self.after > 0:
            self.after -= 1
            return 0
        if self.times >= 0 and self.fired >= self.times:
            return 0
        self.fired += 1
        return self.fired


class _SharedArmed:
    """Armed state in shared memory: the ``after``/``times``/``fired``
    budget is one pool of counters across every process that inherited
    the injector (fork makes plain ints copy-on-write, so a firing
    inside a worker would otherwise never decrement the parent's or a
    sibling's budget)."""

    def __init__(self, after: int, times: int) -> None:
        import multiprocessing

        self._lock = multiprocessing.Lock()
        self._after = multiprocessing.RawValue("i", after)
        self._times = multiprocessing.RawValue("i", times)
        self._fired = multiprocessing.RawValue("i", 0)

    @property
    def fired(self) -> int:
        return self._fired.value

    def try_fire(self) -> int:
        with self._lock:
            if self._after.value > 0:
                self._after.value -= 1
                return 0
            times = self._times.value
            if times >= 0 and self._fired.value >= times:
                return 0
            self._fired.value += 1
            return self._fired.value


class FaultInjector:
    """Arms failure points and raises :class:`ChaosFault` when kicked."""

    def __init__(self) -> None:
        self._armed: dict[str, object] = {}
        #: per-point count of faults actually raised *in this process*
        #: (shared-armed points additionally expose the cross-process
        #: count via ``armed_fired``)
        self.fired: dict[str, int] = {}

    def arm(
        self, point: str, *, after: int = 0, times: int = 1,
        shared: bool = False,
    ) -> None:
        """Arm *point*: skip the first *after* kicks, then fire *times*
        times (``times=-1`` fires on every subsequent kick).

        ``shared=True`` backs the budget with shared memory so kicks in
        forked worker processes draw from the same pool — required for
        the ``worker``/``worker-hang`` points, whose firings happen in
        children the parent cannot otherwise observe."""
        if point not in POINTS:
            raise ValueError(
                f"unknown failure point {point!r}; known: {', '.join(POINTS)}"
            )
        self._armed[point] = (
            _SharedArmed(after, times) if shared
            else _Armed(after=after, times=times)
        )

    def armed_fired(self, point: str) -> int:
        """Total firings of *point* across every process (for
        shared-armed points; equals ``fired[point]`` otherwise)."""
        armed = self._armed.get(point)
        return armed.fired if armed is not None else 0

    def kick(self, point: str) -> None:
        armed = self._armed.get(point)
        if armed is None:
            return
        ordinal = armed.try_fire()
        if not ordinal:
            return
        self.fired[point] = self.fired.get(point, 0) + 1
        raise ChaosFault(f"injected fault at {point!r} (#{ordinal})")


#: The installed injector, or None.  Module-global rather than threaded
#: through every call so production code pays one attribute test.
_ACTIVE: FaultInjector | None = None


def install(injector: FaultInjector) -> None:
    global _ACTIVE
    _ACTIVE = injector


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultInjector | None:
    return _ACTIVE


def kick(point: str) -> None:
    """Engine-side hook: raise if a test armed *point*, else no-op."""
    if _ACTIVE is not None:
        _ACTIVE.kick(point)


def fired(point: str) -> bool:
    """Kick *point* but report a firing as True instead of raising.

    For faults that *corrupt* rather than abort (``store-corrupt``):
    the caller keeps running and damages its own payload when armed.
    """
    if _ACTIVE is None:
        return False
    try:
        _ACTIVE.kick(point)
    except ChaosFault:
        return True
    return False


@contextmanager
def injected(*points: str, after: int = 0, times: int = 1,
             shared: bool = False):
    """Install a fresh injector with *points* armed, for one ``with``.

    Pass ``shared=True`` when arming ``worker``/``worker-hang`` so the
    firing budget spans forked worker processes (see :meth:`FaultInjector.arm`).
    """
    injector = FaultInjector()
    for point in points:
        injector.arm(point, after=after, times=times, shared=shared)
    install(injector)
    try:
        yield injector
    finally:
        uninstall()
