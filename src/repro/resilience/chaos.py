"""Fault injection: make the engine's failure handling testable.

The exploration engine promises to *degrade* rather than crash: a
raising observer becomes a warning plus a ``degraded_observers`` stat, a
crashing selector falls back to full expansion, a broken expansion step
truncates the search, and failed checkpoint I/O is logged and skipped.
Those promises are worthless untested, and the underlying failures are
(by design) hard to trigger — so the engine exposes *failure points*
that a test can arm.

Usage::

    from repro.resilience import chaos

    with chaos.injected("selector", times=-1):
        result = explore(program, "stubborn")   # never raises
    assert result.stats.selector_faults > 0

Failure points wired into the engine (see :data:`POINTS`):

``observer``
    fires inside the guarded dispatch of every observer callback —
    equivalent to the observer itself raising;
``selector``
    fires on every stubborn-set selection;
``eval``
    fires when computing a configuration's expansions (the semantic
    core) — simulates an engine bug mid-search;
``checkpoint``
    fires inside snapshot writes — simulates a full disk / bad path.

When no injector is installed (:data:`_ACTIVE` is None) every kick is a
single attribute test — cheap enough for the hot loop.  The module is
intentionally free of any ``repro.explore`` import so the engine can
import it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

#: Failure points the engine kicks.  Arming any other name is an error —
#: a misspelled chaos test would silently test nothing.
POINTS = ("observer", "selector", "eval", "checkpoint")


class ChaosFault(RuntimeError):
    """An injected failure.

    Deliberately *not* a :class:`~repro.util.errors.ReproError`: injected
    faults simulate unexpected internal bugs, so they must exercise the
    generic ``except Exception`` guards, not the typed error paths.
    """


@dataclass
class _Armed:
    """State of one armed failure point."""

    after: int  # calls to let through before firing
    times: int  # firings allowed; -1 = unlimited
    fired: int = 0


class FaultInjector:
    """Arms failure points and raises :class:`ChaosFault` when kicked."""

    def __init__(self) -> None:
        self._armed: dict[str, _Armed] = {}
        #: per-point count of faults actually raised
        self.fired: dict[str, int] = {}

    def arm(self, point: str, *, after: int = 0, times: int = 1) -> None:
        """Arm *point*: skip the first *after* kicks, then fire *times*
        times (``times=-1`` fires on every subsequent kick)."""
        if point not in POINTS:
            raise ValueError(
                f"unknown failure point {point!r}; known: {', '.join(POINTS)}"
            )
        self._armed[point] = _Armed(after=after, times=times)

    def kick(self, point: str) -> None:
        armed = self._armed.get(point)
        if armed is None:
            return
        if armed.after > 0:
            armed.after -= 1
            return
        if armed.times >= 0 and armed.fired >= armed.times:
            return
        armed.fired += 1
        self.fired[point] = self.fired.get(point, 0) + 1
        raise ChaosFault(f"injected fault at {point!r} (#{armed.fired})")


#: The installed injector, or None.  Module-global rather than threaded
#: through every call so production code pays one attribute test.
_ACTIVE: FaultInjector | None = None


def install(injector: FaultInjector) -> None:
    global _ACTIVE
    _ACTIVE = injector


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultInjector | None:
    return _ACTIVE


def kick(point: str) -> None:
    """Engine-side hook: raise if a test armed *point*, else no-op."""
    if _ACTIVE is not None:
        _ACTIVE.kick(point)


@contextmanager
def injected(*points: str, after: int = 0, times: int = 1):
    """Install a fresh injector with *points* armed, for one ``with``."""
    injector = FaultInjector()
    for point in points:
        injector.arm(point, after=after, times=times)
    install(injector)
    try:
        yield injector
    finally:
        uninstall()
