"""Checkpoint/resume: periodic snapshots of exploration state.

A snapshot captures everything a breadth-first (or sleep-set DFS) driver
needs to continue: the configuration graph built so far, the frontier,
the visited bookkeeping, and the running stats.  Exploration is fully
deterministic, so a resumed run replays the exact trajectory the
uninterrupted run would have taken — the test suite asserts graph *and*
stats equality across interrupt points.

Format: one pickle of a schema-versioned dict.  The schema string guards
layout drift (a snapshot from an incompatible engine is rejected, not
misread), and the payload embeds a program fingerprint plus the
exploration options so a resume against the wrong program or a different
policy fails loudly with :class:`CheckpointError`.

Writes are atomic (temp file + ``os.replace``) and guarded: a failed
write is logged, counted in ``stats.checkpoint_faults``, and skipped —
checkpointing must never be the thing that kills a run (failure point
``checkpoint`` in :mod:`repro.resilience.chaos`).
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
from typing import Callable

from repro.resilience import chaos
from repro.util.errors import ReproError

LOG = logging.getLogger("repro.resilience")

#: Version of the snapshot layout.  Bump on any change to the payload
#: keys or to the pickled object graph's semantics.
CHECKPOINT_SCHEMA = "repro.checkpoint/1"


class CheckpointError(ReproError):
    """A snapshot could not be read, or does not match the resume
    target (wrong schema, program, driver, or options)."""


def program_fingerprint(program) -> str:
    """Stable identity of a compiled program: hash of its disassembly."""
    return hashlib.sha256(program.disassemble().encode("utf-8")).hexdigest()


class _ChaosWriteFile:
    """A write-through file wrapper that kicks the ``store-io`` chaos
    point on every low-level ``write()``.

    This is what makes mid-write crashes *testable*: arming
    ``store-io`` with ``after=N`` lets the first N writes through and
    fails the next one, leaving a genuinely truncated temp file behind
    — the exact artifact a full disk or a power cut produces halfway
    through a snapshot.
    """

    __slots__ = ("_fh",)

    def __init__(self, fh) -> None:
        self._fh = fh

    def write(self, data):
        chaos.kick("store-io")
        return self._fh.write(data)


def write_snapshot(path: str, payload: dict) -> None:
    """Atomically pickle ``{schema, **payload}`` to *path*.

    The write goes to ``path + ".tmp"`` first and is renamed into place
    only after it completed — a crash (or an injected ``store-io`` /
    ``checkpoint`` fault) at *any* point leaves the previous snapshot at
    *path* untouched and loadable.
    """
    chaos.kick("checkpoint")
    document = {"schema": CHECKPOINT_SCHEMA}
    document.update(payload)
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "wb") as fh:
            pickle.dump(
                document, _ChaosWriteFile(fh),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def read_snapshot(
    path: str,
    *,
    driver: str | None = None,
    fingerprint: str | None = None,
    options_key: tuple | None = None,
) -> dict:
    """Load and validate a snapshot; raise :class:`CheckpointError` on
    any mismatch.

    The optional expectations let the resuming driver assert it is
    continuing the same search: same ``driver`` ("bfs"/"sleep"), same
    program ``fingerprint``, same ``options_key`` (policy, coarsening,
    step options — budgets are deliberately excluded so a resume may
    *raise* them).
    """
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except FileNotFoundError:
        raise CheckpointError(f"cannot read checkpoint {path!r}: no such file")
    except Exception as exc:
        # A truncated or bit-rotted pickle can raise nearly anything
        # while reconstructing the object graph (UnpicklingError,
        # EOFError, TypeError, KeyError, ...) — every shape of damage
        # must surface as the same typed error with a way out, never a
        # raw unpickling traceback.
        raise CheckpointError(
            f"cannot read checkpoint {path!r}: {exc!r} — the snapshot "
            "is truncated or corrupt; delete the file or re-run "
            "without --resume"
        )
    if not isinstance(payload, dict) or "schema" not in payload:
        raise CheckpointError(f"{path!r} is not a repro checkpoint")
    if payload["schema"] != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint schema {payload['schema']!r} unsupported "
            f"(engine speaks {CHECKPOINT_SCHEMA!r})"
        )
    if driver is not None and payload.get("driver") != driver:
        raise CheckpointError(
            f"checkpoint was taken by the {payload.get('driver')!r} driver, "
            f"cannot resume with {driver!r} (policy/sleep mismatch?)"
        )
    if fingerprint is not None and payload.get("fingerprint") != fingerprint:
        raise CheckpointError(
            "checkpoint was taken on a different program "
            "(fingerprint mismatch)"
        )
    if options_key is not None and payload.get("options_key") != options_key:
        raise CheckpointError(
            f"checkpoint options {payload.get('options_key')!r} do not match "
            f"the requested exploration {options_key!r}"
        )
    return payload


class Checkpointer:
    """Periodic snapshot writer threaded through the exploration loop.

    ``tick(make_payload)`` is called once per expansion; every *every*
    ticks it writes a snapshot.  ``stop_after=N`` makes the engine stop
    (gracefully, ``truncation_reason == "interrupted"``) right after the
    N-th successful write — the deterministic "pull the plug here" knob
    the resume-equivalence tests are built on.
    """

    def __init__(
        self, path: str, every: int = 1000, *, stop_after: int | None = None
    ) -> None:
        self.path = path
        self.every = max(1, int(every))
        self.stop_after = stop_after
        self.written = 0
        self.faults = 0
        self._ticks = 0
        #: set by the engine when a tracer is attached to the run; each
        #: snapshot write then becomes a ``checkpoint.write`` span
        self.tracer = None

    def tick(self, make_payload: Callable[[], dict]) -> bool:
        """Maybe snapshot; return True when the engine should stop."""
        self._ticks += 1
        if self._ticks % self.every:
            return False
        span = (
            self.tracer.begin_span("checkpoint.write", index=self.written)
            if self.tracer is not None
            else None
        )
        try:
            write_snapshot(self.path, make_payload())
            self.written += 1
        except Exception as exc:  # I/O must never kill the run
            self.faults += 1
            if span is not None:
                self.tracer.end_span(span, ok=False)
            LOG.warning(
                "checkpoint write to %r failed (%s); continuing without it",
                self.path, exc,
            )
            return False
        if span is not None:
            self.tracer.end_span(span, ok=True)
        return self.stop_after is not None and self.written >= self.stop_after
