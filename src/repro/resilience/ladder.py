"""The degradation ladder: always terminate with *an* answer.

The paper's reductions exist because exhaustive interleaving blows up;
this module turns that insight into an availability policy.
:func:`explore_resilient` runs the requested policy under explicit
budgets and, when a budget is exhausted, escalates to the next-cheaper
sound analysis instead of returning a truncated answer:

    ``full`` → ``stubborn`` → ``stubborn-proc + coarsen`` →
    abstract folding (Taylor concurrency-state collapse)

Every rung preserves the paper's result-configuration invariant, so a
later rung is *coarser in cost model, not in soundness* — except the
final abstract rung, which over-approximates (it always terminates:
finitely many control skeletons + widening).  This mirrors the
Astrée-lineage contract (Miné: an industrial analyzer must always
terminate with a sound, possibly-coarser answer) and the budget-pressure
degradation in partial-order BMC (Alglave et al.).

The escalation trail is recorded three ways: in the returned
:class:`ResilientResult`, in ``ExploreStats.escalations`` of the final
result, and in the metrics registry (counter
``resilience.escalations``, gauge ``resilience.final_rung``) when a
:class:`~repro.metrics.MetricsObserver` is attached — results always
say *which* rung produced them and why.

``explore_resilient`` never raises: even an engine bug mid-rung (see
:mod:`repro.resilience.chaos`) is recorded as an escalation reason and
the ladder moves on.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro.explore.explorer import (
    ExploreOptions,
    ExploreResult,
    ExploreStats,
    explore,
)
from repro.explore.graph import ConfigGraph
from repro.lang.program import Program
from repro.semantics.step import StepOptions

LOG = logging.getLogger("repro.resilience")


@dataclass(frozen=True)
class Budgets:
    """Explicit per-rung resource budgets."""

    max_configs: int = 1_000_000
    time_limit_s: float | None = None
    max_rss_bytes: int | None = None


@dataclass(frozen=True)
class LadderRung:
    """One rung: a named exploration policy (or the abstract fold)."""

    name: str
    policy: str  # an explore() policy, or "fold" for abstract folding
    coarsen: bool = False


#: The default escalation order, cheapest-last.
DEFAULT_LADDER: tuple[LadderRung, ...] = (
    LadderRung("full", "full"),
    LadderRung("stubborn", "stubborn"),
    LadderRung("stubborn-proc+coarsen", "stubborn-proc", coarsen=True),
    LadderRung("abstract-fold", "fold"),
)


@dataclass(frozen=True)
class Escalation:
    """One recorded rung-to-rung escalation."""

    from_rung: str
    to_rung: str
    reason: str

    def describe(self) -> str:
        return f"{self.from_rung}->{self.to_rung}: {self.reason}"


@dataclass
class ResilientResult:
    """What the ladder produced.

    ``result`` is always a concrete :class:`ExploreResult` — the rung
    that completed, or the deepest truncated attempt when every concrete
    rung blew its budget.  ``exact`` tells which: when False, ``fold``
    (if set) holds the abstract rung's sound over-approximation.
    """

    result: ExploreResult
    rung: str
    exact: bool
    escalations: list[Escalation] = field(default_factory=list)
    fold: object | None = None  # FoldResult of the abstract rung

    @property
    def trail(self) -> tuple[str, ...]:
        return tuple(e.describe() for e in self.escalations)

    def describe(self) -> str:
        if not self.escalations:
            return f"rung={self.rung} (no escalation)"
        return f"rung={self.rung} after " + "; ".join(self.trail)


def _registry_of(observers):
    """Duck-typed metrics registry discovery (same contract as the
    exploration driver's)."""
    for ob in observers:
        reg = getattr(ob, "registry", None)
        if reg is not None:
            return reg
    return None


def _tracer_of(observers):
    """Duck-typed tracer discovery (same contract as the exploration
    driver's ``_attached_tracer``): escalations become trace events."""
    for ob in observers:
        tracer = getattr(ob, "tracer", None)
        if tracer is not None:
            return tracer
    return None


def _progress_of(observers):
    """Duck-typed progress-emitter discovery (same contract as the
    exploration driver's ``_attached_progress``): the current rung rides
    every frame, and rung transitions become ``ladder`` frames."""
    for ob in observers:
        progress = getattr(ob, "progress", None)
        if progress is not None:
            return progress
    return None


def _empty_result(program: Program, opts: ExploreOptions) -> ExploreResult:
    """A truthful zero-result for the pathological case where every rung
    crashed before producing anything."""
    stats = ExploreStats(
        truncated=True, truncation_reason="internal-error", engine_faults=1
    )
    try:
        from repro.analyses.accesses import access_analysis

        access = access_analysis(program)
    except Exception:  # even static analysis failed — return bare
        access = None
    return ExploreResult(
        program=program,
        graph=ConfigGraph(),
        stats=stats,
        options=opts,
        access=access,
    )


def _run_fold(program: Program, metrics=None, tracer=None):
    """The final rung: abstract exploration folded by control skeleton
    (Taylor's concurrency states).  Returns (FoldResult | None, error)."""
    from repro.absdomain import AbsValueDomain, FlatConstDomain
    from repro.abstraction import AbsOptions, fold_explore, taylor_key

    opts = AbsOptions(dom=AbsValueDomain(FlatConstDomain()))
    return fold_explore(
        program, opts, key_fn=taylor_key, metrics=metrics, tracer=tracer
    )


def explore_resilient(
    program: Program,
    *,
    budgets: Budgets | None = None,
    ladder: tuple[LadderRung, ...] = DEFAULT_LADDER,
    start: str | None = None,
    observers: tuple = (),
    step: StepOptions | None = None,
    backend: str = "serial",
    jobs: int = 1,
) -> ResilientResult:
    """Explore under budgets, escalating down the ladder on exhaustion.

    ``start`` names a rung to begin at (skip the more expensive ones
    when the caller already knows ``full`` is hopeless).  Each rung gets
    the full budgets — total wall-clock is bounded by
    ``len(ladder) * time_limit_s``.

    ``backend="parallel"`` runs every concrete rung on the sharded
    multiprocessing driver with ``jobs`` workers — budgets compose (the
    parallel master enforces them at frontier-round granularity); the
    abstract fold rung is unaffected.

    Never raises; always returns a :class:`ResilientResult` whose stats
    truthfully record truncation and the escalation trail.
    """
    budgets = budgets if budgets is not None else Budgets()
    rungs = list(ladder)
    if start is not None:
        names = [r.name for r in rungs]
        if start not in names:
            raise ValueError(
                f"unknown ladder rung {start!r}; known: {', '.join(names)}"
            )
        rungs = rungs[names.index(start):]
    metrics = _registry_of(observers)
    tracer = _tracer_of(observers)
    progress = _progress_of(observers)

    escalations: list[Escalation] = []
    last: ExploreResult | None = None
    last_opts: ExploreOptions | None = None
    final_rung = rungs[-1].name if rungs else "?"

    for i, rung in enumerate(rungs):
        if rung.policy == "fold":
            break
        opts = ExploreOptions(
            policy=rung.policy,
            coarsen=rung.coarsen,
            backend=backend,
            jobs=jobs,
            step=step if step is not None else StepOptions(),
            max_configs=budgets.max_configs,
            time_limit_s=budgets.time_limit_s,
            max_rss_bytes=budgets.max_rss_bytes,
        )
        last_opts = opts
        if progress is not None:
            progress.set_context(rung=rung.name)
            progress.emit("ladder", event="rung-start", rung=rung.name)
        try:
            result = explore(program, options=opts, observers=observers)
        except Exception as exc:  # engine bug: escalate, never propagate
            LOG.error("rung %r crashed (%s); escalating", rung.name, exc)
            result = None
            reason = f"internal-error: {exc}"
        else:
            if not result.stats.truncated:
                result.stats.escalations = tuple(
                    e.describe() for e in escalations
                )
                if metrics is not None:
                    metrics.set_gauge("resilience.final_rung", i)
                if tracer is not None:
                    tracer.event(
                        "resilience.answered", rung=rung.name, exact=True
                    )
                return ResilientResult(
                    result=result,
                    rung=rung.name,
                    exact=True,
                    escalations=escalations,
                )
            reason = result.stats.truncation_reason or "budget"
            last = result
        if i + 1 >= len(rungs):
            break
        esc = Escalation(rung.name, rungs[i + 1].name, reason)
        escalations.append(esc)
        if metrics is not None:
            metrics.inc("resilience.escalations")
        if tracer is not None:
            tracer.event(
                "resilience.escalation",
                src=esc.from_rung,
                dst=esc.to_rung,
                reason=esc.reason,
            )
        if progress is not None:
            progress.emit(
                "ladder",
                event="escalation",
                src=esc.from_rung,
                dst=esc.to_rung,
                reason=esc.reason,
            )
        # INFO, not WARNING: escalation is the ladder doing its job, and
        # the trail is already surfaced in stats/metrics/CLI output.
        LOG.info("escalating %s", esc.describe())

    # Every concrete rung exhausted its budget (or crashed): fall back to
    # the abstract fold if the ladder ends there.
    fold = None
    if rungs and rungs[-1].policy == "fold":
        if progress is not None:
            progress.set_context(rung=rungs[-1].name)
            progress.emit("ladder", event="rung-start", rung=rungs[-1].name)
        try:
            fold = _run_fold(program, metrics, tracer)
        except Exception as exc:  # even the fold failed — stay truthful
            LOG.error("abstract fold rung failed (%s)", exc)
            fold = None
        if fold is None and escalations:
            # the answer falls back to the deepest concrete attempt
            final_rung = escalations[-1].from_rung
    if last is None:
        last = _empty_result(
            program,
            last_opts
            if last_opts is not None
            else ExploreOptions(max_configs=budgets.max_configs),
        )
    last.stats.escalations = tuple(e.describe() for e in escalations)
    if metrics is not None:
        metrics.set_gauge("resilience.final_rung", len(rungs) - 1)
    if tracer is not None:
        tracer.event("resilience.answered", rung=final_rung, exact=False)
    return ResilientResult(
        result=last,
        rung=final_rung,
        exact=False,
        escalations=escalations,
        fold=fold,
    )
