"""Resilience layer: the engine survives blowup and internal failure.

Three cooperating subsystems (see ROADMAP: the millions-of-configs
north star requires exploration that *degrades* instead of dying):

:mod:`repro.resilience.ladder`
    :func:`explore_resilient` — run under explicit budgets (configs,
    wall-clock, peak RSS) and escalate ``full → stubborn →
    stubborn-proc+coarsen → abstract folding`` on exhaustion, recording
    the trail in stats and metrics.

:mod:`repro.resilience.checkpoint`
    Schema-versioned snapshots of the exploration frontier + graph +
    stats; ``repro explore --checkpoint PATH --checkpoint-every N`` and
    ``--resume PATH``.  A resumed run is deterministic: same graph and
    stats as an uninterrupted one.

:mod:`repro.resilience.chaos`
    Fault injection at the engine's guarded failure points (observer
    callbacks, stubborn selection, expansion, checkpoint I/O) — the
    test harness that proves the engine never raises on internal
    faults.

The ladder is exported lazily: it imports the exploration driver, which
itself imports :mod:`repro.resilience.chaos`, and eager re-export here
would close that cycle during engine import.
"""

from repro.resilience import chaos
from repro.resilience.chaos import ChaosFault, FaultInjector, injected
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    Checkpointer,
    program_fingerprint,
    read_snapshot,
    write_snapshot,
)

_LADDER_EXPORTS = (
    "Budgets",
    "DEFAULT_LADDER",
    "Escalation",
    "LadderRung",
    "ResilientResult",
    "explore_resilient",
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "ChaosFault",
    "CheckpointError",
    "Checkpointer",
    "FaultInjector",
    "chaos",
    "injected",
    "program_fingerprint",
    "read_snapshot",
    "write_snapshot",
    *_LADDER_EXPORTS,
]


def __getattr__(name: str):
    if name in _LADDER_EXPORTS:
        from repro.resilience import ladder

        return getattr(ladder, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
