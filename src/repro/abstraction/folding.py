"""Exploration *modulo an abstraction* — the paper's state folding (§6).

The driver explores abstract configurations but keeps only one table
entry per **fold key**; configurations mapping to the same key are
*joined* (data lattice join — the folding of "related states").  A key
function must determine the control skeleton, so joins are pointwise.

With the Taylor key (the skeleton itself, §6.1) this computes the
*concurrency states* of the program; with clan spawning enabled
(§6.2, via :class:`~repro.abstraction.absstep.AbsOptions`) identical
tasks collapse and the table size becomes independent of how many of
them the program forks.

Termination: keys are finitely many (control skeletons of a program
with bounded nesting), and after ``widen_after`` joins at one key the
data join is replaced by the domain's widening, so each entry's
ascending chain stabilizes even over infinite-height domains
(intervals).  This is the standard abstract-interpretation fixpoint
([CC77]) presented as a state-space construction — the framework's
central claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.absdomain.absvalue import AbsValueDomain
from repro.abstraction.absconfig import (
    AbsConfig,
    AbsFrame,
    AbsProcess,
    Member,
    join_configs,
    leq_configs,
)
from repro.abstraction.absstep import AbsOptions, abstract_successors
from repro.lang.program import Program
from repro.semantics.config import Config, initial_config
from repro.util.fixpoint import Worklist

KeyFn = Callable[[AbsConfig], tuple]


def taylor_key(acfg: AbsConfig) -> tuple:
    """§6.1: fold configurations by control skeleton — Taylor's
    *concurrency states* [Tay83]."""
    return acfg.skeleton()


@dataclass
class FoldStats:
    num_states: int = 0
    num_edges: int = 0
    iterations: int = 0
    widenings: int = 0
    narrowings: int = 0


@dataclass
class FoldResult:
    """The folded (quotient) state space."""

    program: Program
    options: AbsOptions
    key_fn: KeyFn
    table: dict[tuple, AbsConfig]
    edges: set[tuple]  # (src_key, dst_key, label, kind, pid)
    initial_key: tuple
    stats: FoldStats
    warnings: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------

    def terminal_states(self) -> list[AbsConfig]:
        return [cfg for cfg in self.table.values() if cfg.is_terminated]

    def covers_config(self, config: Config) -> bool:
        """Is the concrete configuration covered by the folded space?
        (Only meaningful without clan folding: clans change the key
        vocabulary.)"""
        acfg = alpha_config(self.options.dom, config)
        key = self.key_fn(acfg)
        entry = self.table.get(key)
        return entry is not None and leq_configs(self.options.dom, acfg, entry)

    def visited_points(self) -> set[tuple]:
        """All (func, pc, status) control points occurring in the folded
        space — the may-execute/may-happen vocabulary for clan runs."""
        out: set[tuple] = set()
        for cfg in self.table.values():
            for p in cfg.procs:
                for m, _ in p.points:
                    if m.frames:
                        top = m.frames[-1]
                        out.add((top.func, top.pc, m.status))
                    else:
                        out.add(("", -1, m.status))
        return out


def alpha_config(dom: AbsValueDomain, config: Config) -> AbsConfig:
    """α on configurations: concrete processes become single-point
    count-1 clans; heap objects collapse onto their sites."""
    from repro.abstraction.absconfig import ONE, AbsHeapObj
    from repro.semantics.config import Process

    procs = []
    for p in config.procs:
        frames = tuple(
            AbsFrame(
                func=f.func,
                pc=f.pc,
                locals=tuple(dom.abstract(v) for v in f.locals),
                ret_loc=_abs_ret_loc(f.ret_loc),
            )
            for f in p.frames
        )
        procs.append(
            AbsProcess(
                pid=p.pid,
                points=((Member(frames=frames, status=p.status), ONE),),
                children=p.children,
            )
        )
    by_site: dict[str, list] = {}
    single: dict[str, bool] = {}
    single_cell: dict[str, bool] = {}
    for o in config.heap:
        site = o.oid[0]
        single[site] = site not in by_site
        single_cell[site] = single_cell.get(site, True) and len(o.cells) == 1
        by_site.setdefault(site, []).extend(o.cells)
    aheap = []
    for site in sorted(by_site):
        val = dom.bottom
        for v in by_site[site]:
            val = dom.join(val, dom.abstract(v))
        aheap.append(
            AbsHeapObj(
                site=site,
                val=val,
                single=single[site],
                single_cell=single_cell[site],
            )
        )
    return AbsConfig(
        procs=tuple(procs),
        aglobals=tuple(dom.abstract(v) for v in config.globals),
        aheap=tuple(aheap),
    )


def _narrow_once(program, opts, key_fn, table, init, ikey) -> bool:
    """One descending pass: recompute every entry from its current
    predecessors and narrow.  Returns whether anything changed."""
    from repro.abstraction.absconfig import narrow_configs

    recomputed: dict[tuple, AbsConfig] = {ikey: init}
    for cfg in list(table.values()):
        for succ, _info in abstract_successors(program, cfg, opts):
            k2 = key_fn(succ)
            cur = recomputed.get(k2)
            recomputed[k2] = succ if cur is None else join_configs(
                opts.dom, cur, succ
            )
    changed = False
    for key, old in table.items():
        new = recomputed.get(key)
        if new is None:
            continue  # never re-derived; keep the stable value
        narrowed = narrow_configs(opts.dom, old, new)
        if narrowed != old:
            table[key] = narrowed
            changed = True
    return changed


def _abs_ret_loc(ret_loc):
    if ret_loc is None:
        return None
    if ret_loc[0] in ("l", "g"):
        return ret_loc
    assert ret_loc[0] == "h"
    return ("sites", frozenset((ret_loc[1][0],)), False)


def initial_abs_config(program: Program, dom: AbsValueDomain) -> AbsConfig:
    return alpha_config(dom, initial_config(program))


def fold_explore(
    program: Program,
    opts: AbsOptions,
    *,
    key_fn: KeyFn = taylor_key,
    widen_after: int = 3,
    narrow_passes: int = 0,
    max_states: int = 200_000,
    metrics=None,
    tracer=None,
) -> FoldResult:
    """Explore the abstract transition system folded by *key_fn*.

    ``narrow_passes > 0`` runs that many descending (narrowing)
    iterations after the widened fixpoint stabilizes — recomputing each
    entry from its predecessors and refining where the recomputation is
    smaller (classic [CC77] narrowing; intervals recover finite bounds
    that widening threw to ∞).

    With a tracer attached (see :mod:`repro.trace`), every lattice join
    that actually grows a table entry is one ``fold.join`` span (with a
    ``widen`` flag), so a Perfetto timeline shows where the fixpoint
    spends its ascending chain.
    """
    init = initial_abs_config(program, opts.dom)
    ikey = key_fn(init)
    table: dict[tuple, AbsConfig] = {ikey: init}
    updates: dict[tuple, int] = {ikey: 0}
    edges: set[tuple] = set()
    warnings: list[str] = []
    warned: set[str] = set()
    stats = FoldStats()

    wl = Worklist([ikey])
    while wl:
        if len(table) > max_states:
            raise RuntimeError("folded exploration exceeded max_states")
        key = wl.pop()
        cfg = table[key]
        stats.iterations += 1
        sink: list[str] = []
        succs = abstract_successors(program, cfg, opts, warning_sink=sink)
        for w in sink:
            if w not in warned:
                warned.add(w)
                warnings.append(w)
        for succ, info in succs:
            k2 = key_fn(succ)
            edges.add((key, k2, info.label, info.kind, info.pid))
            cur = table.get(k2)
            if cur is None:
                table[k2] = succ
                updates[k2] = 0
                wl.push(k2)
                if metrics is not None:
                    metrics.inc("fold.misses")
            else:
                if metrics is not None:
                    metrics.inc("fold.hits")
                if not leq_configs(opts.dom, succ, cur):
                    updates[k2] += 1
                    widen = updates[k2] > widen_after
                    if widen:
                        stats.widenings += 1
                        if metrics is not None:
                            metrics.inc("fold.widenings")
                    span = (
                        tracer.begin_span("fold.join", widen=widen)
                        if tracer is not None
                        else None
                    )
                    table[k2] = join_configs(opts.dom, cur, succ, widen=widen)
                    if span is not None:
                        tracer.end_span(span, updates=updates[k2])
                    wl.push(k2)

    for _ in range(narrow_passes):
        if not _narrow_once(program, opts, key_fn, table, init, ikey):
            break
        stats.narrowings += 1

    stats.num_states = len(table)
    stats.num_edges = len(edges)
    return FoldResult(
        program=program,
        options=opts,
        key_fn=key_fn,
        table=table,
        edges=edges,
        initial_key=ikey,
        stats=stats,
        warnings=warnings,
    )
