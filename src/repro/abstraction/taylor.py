"""Taylor concurrency-state folding (§6.1, recovering [Tay83]).

Two entry points:

- :func:`concurrency_states` — project an already-explored *concrete*
  configuration graph onto control skeletons: how many configurations
  remain when data is folded away (the paper's Figure 3: the dangling
  links merge);
- :func:`taylor_explore` — explore abstractly folded by the skeleton
  key from the start (never materializing the concrete space).
"""

from __future__ import annotations

from repro.absdomain.absvalue import AbsValueDomain
from repro.absdomain.flat import FlatConstDomain
from repro.abstraction.absstep import AbsOptions
from repro.abstraction.folding import FoldResult, fold_explore, taylor_key
from repro.explore.graph import ConfigGraph
from repro.lang.program import Program
from repro.semantics.config import Config


def config_skeleton(config: Config) -> tuple:
    """Control skeleton of a concrete configuration: pids, statuses, and
    per-frame (func, pc) — all values, heap contents and procedure
    strings projected away."""
    return (
        tuple(
            (
                p.pid,
                p.status,
                tuple((f.func, f.pc) for f in p.frames),
                p.children,
            )
            for p in config.procs
        ),
        config.fault is not None,
    )


def concurrency_states(graph: ConfigGraph) -> dict[tuple, list[int]]:
    """Group the concrete configurations of *graph* by skeleton.

    Returns skeleton -> config ids; ``len(result)`` is the number of
    Taylor concurrency states, always ≤ ``graph.num_configs``.
    """
    out: dict[tuple, list[int]] = {}
    for cid, cfg in enumerate(graph.configs):
        out.setdefault(config_skeleton(cfg), []).append(cid)
    return out


def taylor_explore(
    program: Program,
    dom: AbsValueDomain | None = None,
    **kwargs,
) -> FoldResult:
    """Abstract exploration folded by control skeleton."""
    vdom = dom if dom is not None else AbsValueDomain(FlatConstDomain())
    return fold_explore(
        program, AbsOptions(dom=vdom, clan_fold=False), key_fn=taylor_key, **kwargs
    )
