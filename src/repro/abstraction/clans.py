"""Clan folding (§6.2, recovering McDowell's clans [McD89]).

A *clan* summarizes the processes spawned from identical cobegin
branches: one abstract process whose points carry {1, MANY} counts.
The two observations the paper quotes from [McD89]:

1. tasks executing the same statements need not be distinguished;
2. it is often unnecessary to know exactly *how many* sit at a point.

are realized by the clan spawning + counting in
:mod:`repro.abstraction.absstep`; this module provides the convenient
entry point and the measurement used by benchmark E6 (folded state
count ~independent of the number of identical tasks).
"""

from __future__ import annotations

from repro.absdomain.absvalue import AbsValueDomain
from repro.absdomain.flat import FlatConstDomain
from repro.abstraction.absstep import AbsOptions
from repro.abstraction.folding import FoldResult, fold_explore, taylor_key
from repro.lang.program import Program


def clan_explore(
    program: Program,
    dom: AbsValueDomain | None = None,
    **kwargs,
) -> FoldResult:
    """Abstract exploration with identical branches collapsed into
    clans, folded by control skeleton."""
    vdom = dom if dom is not None else AbsValueDomain(FlatConstDomain())
    return fold_explore(
        program, AbsOptions(dom=vdom, clan_fold=True), key_fn=taylor_key, **kwargs
    )
