"""Abstract configurations.

The abstract analogue of :mod:`repro.semantics.config`, with two
abstractions baked into the representation (paper §6):

**Heap** — the allocation-site abstraction: all objects born at one
``malloc`` site are summarized by a single abstract object (a joined
cell value plus a *single-instance* flag that licenses strong updates).

**Processes** — every process is a *clan* (McDowell [McD89], §6.2): a
set of *points*, each a member control state with an abstract count in
{1, MANY}.  An ordinary process is a clan with one count-1 point;
identical cobegin branches are spawned as one clan with count MANY.
Stepping a MANY point forks "all members move" / "one member moves" —
exactly the paper's remark that the analysis need not know *how many*
tasks sit at a point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.absdomain.absvalue import AbsValue, AbsValueDomain
from repro.semantics.config import DONE, Pid

# counts
ONE = 1
MANY = 2  # "two or more"


@dataclass(frozen=True)
class AbsFrame:
    """An abstract activation: control point, abstract locals, and the
    (abstracted) return destination."""

    func: str
    pc: int
    locals: tuple[AbsValue, ...]
    # ("l", slot) | ("g", i) | ("sites", frozenset[str]) | None
    ret_loc: Optional[tuple] = None

    def skeleton(self) -> tuple:
        return (self.func, self.pc, self.ret_loc)


@dataclass(frozen=True)
class Member:
    """One point of a clan: a member control state."""

    frames: tuple[AbsFrame, ...]
    status: str  # RUNNING | JOINING | DONE

    def skeleton(self) -> tuple:
        return (tuple(f.skeleton() for f in self.frames), self.status)


@dataclass(frozen=True)
class AbsProcess:
    """A clan: canonical pid plus points (member, count) sorted by
    member skeleton."""

    pid: Pid
    points: tuple[tuple[Member, int], ...]
    children: tuple[Pid, ...] = ()

    def skeleton(self) -> tuple:
        return (
            self.pid,
            tuple((m.skeleton(), c) for m, c in self.points),
            self.children,
        )

    @property
    def all_done(self) -> bool:
        return all(m.status == DONE for m, _ in self.points)


@dataclass(frozen=True)
class AbsHeapObj:
    """Site summary: joined cell value + instance/shape flags.

    ``single``: exactly one object of this site exists.
    ``single_cell``: every object of this site has exactly one cell.
    A strong update through a pointer is sound only when **both** hold —
    one object *and* one cell, so the write covers the whole summary.
    (The integration suite caught the multi-cell case: writing cell 0 of
    a 2-cell object must not overwrite the summary of cell 1.)
    """

    site: str
    val: AbsValue
    single: bool
    single_cell: bool = True


@dataclass(frozen=True)
class AbsConfig:
    """An abstract configuration."""

    procs: tuple[AbsProcess, ...]
    aglobals: tuple[AbsValue, ...]
    aheap: tuple[AbsHeapObj, ...]
    _hash: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.procs, self.aglobals, self.aheap))
        )

    def __hash__(self) -> int:
        return self._hash

    def proc(self, pid: Pid) -> AbsProcess:
        for p in self.procs:
            if p.pid == pid:
                return p
        raise KeyError(pid)

    def heap_obj(self, site: str) -> AbsHeapObj | None:
        for o in self.aheap:
            if o.site == site:
                return o
        return None

    def skeleton(self) -> tuple:
        """The control skeleton — all data projected away.  This is the
        Taylor concurrency-state key (§6.1) for clan-enriched states."""
        return (
            tuple(p.skeleton() for p in self.procs),
            tuple((o.site, o.single, o.single_cell) for o in self.aheap),
        )

    @property
    def is_terminated(self) -> bool:
        return all(p.all_done for p in self.procs)


# --------------------------------------------------------------------------
# canonicalization / join
# --------------------------------------------------------------------------


def canon_points(points: list[tuple[Member, int]]) -> tuple[tuple[Member, int], ...]:
    """Merge identical members (saturating counts) and sort canonically."""
    merged: dict[Member, int] = {}
    for m, c in points:
        if m in merged:
            merged[m] = MANY
        else:
            merged[m] = c
    return tuple(
        sorted(merged.items(), key=lambda mc: (mc[0].skeleton(), mc[1]))
    )


def join_values(
    dom: AbsValueDomain, a: tuple[AbsValue, ...], b: tuple[AbsValue, ...], *, widen: bool
) -> tuple[AbsValue, ...]:
    op = dom.widen if widen else dom.join
    return tuple(op(x, y) for x, y in zip(a, b))


def join_configs(
    dom: AbsValueDomain, a: AbsConfig, b: AbsConfig, *, widen: bool = False
) -> AbsConfig:
    """Join two abstract configurations **with the same skeleton** —
    the fold operation: data joins pointwise, control stays put."""
    assert a.skeleton() == b.skeleton(), "fold keys must fix the skeleton"
    op = dom.widen if widen else dom.join
    procs = []
    for pa, pb in zip(a.procs, b.procs):
        points = []
        for (ma, ca), (mb, _cb) in zip(pa.points, pb.points):
            frames = tuple(
                AbsFrame(
                    func=fa.func,
                    pc=fa.pc,
                    locals=join_values(dom, fa.locals, fb.locals, widen=widen),
                    ret_loc=fa.ret_loc,
                )
                for fa, fb in zip(ma.frames, mb.frames)
            )
            points.append((Member(frames=frames, status=ma.status), ca))
        procs.append(
            AbsProcess(pid=pa.pid, points=tuple(points), children=pa.children)
        )
    aheap = tuple(
        AbsHeapObj(
            site=oa.site,
            val=op(oa.val, ob.val),
            single=oa.single,
            single_cell=oa.single_cell,
        )
        for oa, ob in zip(a.aheap, b.aheap)
    )
    return AbsConfig(
        procs=tuple(procs),
        aglobals=join_values(dom, a.aglobals, b.aglobals, widen=widen),
        aheap=aheap,
    )


def narrow_configs(dom: AbsValueDomain, old: AbsConfig, new: AbsConfig) -> AbsConfig:
    """One descending (narrowing) step: refine *old* toward *new*
    (which must be ⊑-comparable recomputed information with the same
    skeleton).  Numeric components use the domain's narrowing when it
    has one (intervals refine infinite bounds); other components take
    the recomputed value when it shrank."""
    assert old.skeleton() == new.skeleton()
    num = dom.num
    narrow_num = getattr(num, "narrow", None)

    def nval(o, n):
        if narrow_num is not None:
            nn = narrow_num(o[0], n[0])
        else:
            nn = n[0] if num.leq(n[0], o[0]) else o[0]
        ptrs = n[1] if n[1] <= o[1] else o[1]
        funcs = n[2] if n[2] <= o[2] else o[2]
        return (nn, ptrs, funcs)

    procs = []
    for po, pn in zip(old.procs, new.procs):
        points = []
        for (mo, c), (mn, _) in zip(po.points, pn.points):
            frames = tuple(
                AbsFrame(
                    func=fo.func,
                    pc=fo.pc,
                    locals=tuple(nval(x, y) for x, y in zip(fo.locals, fn.locals)),
                    ret_loc=fo.ret_loc,
                )
                for fo, fn in zip(mo.frames, mn.frames)
            )
            points.append((Member(frames=frames, status=mo.status), c))
        procs.append(AbsProcess(pid=po.pid, points=tuple(points), children=po.children))
    return AbsConfig(
        procs=tuple(procs),
        aglobals=tuple(nval(o, n) for o, n in zip(old.aglobals, new.aglobals)),
        aheap=tuple(
            AbsHeapObj(
                site=oo.site,
                val=nval(oo.val, on.val),
                single=oo.single,
                single_cell=oo.single_cell,
            )
            for oo, on in zip(old.aheap, new.aheap)
        ),
    )


def leq_configs(dom: AbsValueDomain, a: AbsConfig, b: AbsConfig) -> bool:
    """Pointwise ⊑ for same-skeleton configurations."""
    if a.skeleton() != b.skeleton():
        return False
    for pa, pb in zip(a.procs, b.procs):
        for (ma, _), (mb, _) in zip(pa.points, pb.points):
            for fa, fb in zip(ma.frames, mb.frames):
                if not all(dom.leq(x, y) for x, y in zip(fa.locals, fb.locals)):
                    return False
    if not all(dom.leq(x, y) for x, y in zip(a.aglobals, b.aglobals)):
        return False
    for oa, ob in zip(a.aheap, b.aheap):
        if not dom.leq(oa.val, ob.val):
            return False
    return True
