"""Abstract semantics and state folding (paper §4 and §6)."""

from repro.abstraction.absconfig import (
    MANY,
    ONE,
    AbsConfig,
    AbsFrame,
    AbsHeapObj,
    AbsProcess,
    Member,
    join_configs,
    leq_configs,
)
from repro.abstraction.absstep import AbsOptions, AbsStepInfo, abstract_successors
from repro.abstraction.clans import clan_explore
from repro.abstraction.folding import (
    FoldResult,
    FoldStats,
    alpha_config,
    fold_explore,
    initial_abs_config,
    taylor_key,
)
from repro.abstraction.taylor import (
    concurrency_states,
    config_skeleton,
    taylor_explore,
)

__all__ = [
    "AbsConfig",
    "AbsFrame",
    "AbsHeapObj",
    "AbsOptions",
    "AbsProcess",
    "AbsStepInfo",
    "FoldResult",
    "FoldStats",
    "MANY",
    "Member",
    "ONE",
    "abstract_successors",
    "alpha_config",
    "clan_explore",
    "concurrency_states",
    "config_skeleton",
    "fold_explore",
    "initial_abs_config",
    "join_configs",
    "leq_configs",
    "taylor_explore",
    "taylor_key",
]
