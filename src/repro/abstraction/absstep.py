"""The abstract transition function (the paper's abstract semantics).

Mirrors :mod:`repro.semantics.step` over abstract configurations:

- expression evaluation in the abstract value domain;
- **may** nondeterminism: a branch whose condition may be true *and*
  false yields both successors; a blocked guard that may pass yields the
  passing successor;
- weak updates on summarized heap sites, strong updates on globals,
  locals, and single-instance sites;
- clan counting: stepping a MANY point forks "one member stays behind" /
  "last member moves" (members advance one at a time, as in the
  interleaving semantics).

Possible runtime faults (dereference of a maybe-non-pointer, assertion
that may fail, call through a maybe-non-function) are reported as
*warnings* attached to the step — the abstract analogue of the concrete
fault configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.absdomain.absvalue import AbsValue, AbsValueDomain
from repro.abstraction.absconfig import (
    MANY,
    ONE,
    AbsConfig,
    AbsFrame,
    AbsHeapObj,
    AbsProcess,
    Member,
    canon_points,
)
from repro.lang.instructions import (
    IAcquire,
    IAlloc,
    IAssert,
    IAssign,
    IAssume,
    IBranch,
    ICall,
    ICobegin,
    IRelease,
    IReturn,
    ISkip,
    IThreadEnd,
    LDeref,
    LGlobal,
    LLocal,
    RAddrGlobal,
    RBinary,
    RConst,
    RDeref,
    RExpr,
    RFunc,
    RGlobal,
    RLocal,
    RUnary,
)
from repro.lang.program import Program
from repro.semantics.config import DONE, JOINING, RUNNING, Pid
from repro.semantics.step import resolve_pc
from repro.util.errors import AnalysisError


@dataclass(frozen=True)
class AbsOptions:
    """Abstract-semantics knobs."""

    dom: AbsValueDomain
    clan_fold: bool = False


@dataclass(frozen=True)
class AbsStepInfo:
    """Metadata of one abstract transition."""

    pid: Pid
    label: str
    kind: str
    warnings: tuple[str, ...] = ()


# --------------------------------------------------------------------------
# abstract evaluation
# --------------------------------------------------------------------------


def eval_abs(
    dom: AbsValueDomain,
    expr: RExpr,
    acfg: AbsConfig,
    locals_: tuple[AbsValue, ...],
    warnings: list[str],
) -> AbsValue:
    if isinstance(expr, RConst):
        return dom.const(expr.value)
    if isinstance(expr, RLocal):
        return locals_[expr.slot]
    if isinstance(expr, RGlobal):
        return acfg.aglobals[expr.index]
    if isinstance(expr, RAddrGlobal):
        return dom.ptr_val((("gobj",),))
    if isinstance(expr, RFunc):
        return dom.func_val(expr.name)
    if isinstance(expr, RDeref):
        base = eval_abs(dom, expr.base, acfg, locals_, warnings)
        eval_abs(dom, expr.index, acfg, locals_, warnings)  # offsets are smashed
        return _read_through(dom, base, acfg, warnings)
    if isinstance(expr, RUnary):
        return dom.unop(expr.op, eval_abs(dom, expr.operand, acfg, locals_, warnings))
    if isinstance(expr, RBinary):
        lhs = eval_abs(dom, expr.left, acfg, locals_, warnings)
        rhs = eval_abs(dom, expr.right, acfg, locals_, warnings)
        return dom.binop(expr.op, lhs, rhs)
    raise AnalysisError(f"unknown expression {type(expr).__name__}")


def _read_through(
    dom: AbsValueDomain, base: AbsValue, acfg: AbsConfig, warnings: list[str]
) -> AbsValue:
    num, ptrs, funcs = base
    if not dom.num.is_bottom(num) or funcs:
        warnings.append("deref of a possibly-non-pointer value")
    out = dom.bottom
    for t in ptrs:
        if t == ("gobj",):
            for g in acfg.aglobals:
                out = dom.join(out, g)
        else:
            obj = acfg.heap_obj(t[1])
            if obj is None:
                warnings.append(f"deref of not-yet-allocated site {t[1]!r}")
            else:
                out = dom.join(out, obj.val)
    if not ptrs:
        warnings.append("deref with no pointer targets (definite fault)")
    return out


def resolve_lv_abs(
    dom: AbsValueDomain,
    lv,
    acfg: AbsConfig,
    locals_: tuple[AbsValue, ...],
    warnings: list[str],
):
    """Abstract write destination:
    ``("l", slot) | ("g", i) | ("sites", frozenset[str], gobj: bool)``."""
    if isinstance(lv, LLocal):
        return ("l", lv.slot)
    if isinstance(lv, LGlobal):
        return ("g", lv.index)
    if isinstance(lv, LDeref):
        base = eval_abs(dom, lv.base, acfg, locals_, warnings)
        eval_abs(dom, lv.index, acfg, locals_, warnings)
        _, ptrs, _ = base
        sites = frozenset(t[1] for t in ptrs if t[0] == "site")
        gobj = ("gobj",) in ptrs
        if not ptrs:
            warnings.append("store with no pointer targets (definite fault)")
        return ("sites", sites, gobj)
    raise AnalysisError(f"unknown lvalue {type(lv).__name__}")


def write_shared(
    dom: AbsValueDomain,
    acfg: AbsConfig,
    dest,
    val: AbsValue,
) -> tuple[tuple[AbsValue, ...], tuple[AbsHeapObj, ...]]:
    """Apply a shared write; strong where sound, weak otherwise."""
    aglobals, aheap = acfg.aglobals, acfg.aheap
    if dest[0] == "g":
        i = dest[1]
        return aglobals[:i] + (val,) + aglobals[i + 1 :], aheap
    assert dest[0] == "sites"
    sites, gobj = dest[1], dest[2]
    if gobj:
        aglobals = tuple(dom.join(g, val) for g in aglobals)
    if sites:
        strong = len(sites) == 1 and not gobj
        new_heap = []
        for obj in aheap:
            if obj.site in sites:
                # strong only when the summary is exactly one cell of
                # exactly one object — otherwise the write covers part
                # of what the summary denotes and must join
                if strong and obj.single and obj.single_cell:
                    new_heap.append(replace(obj, val=val))
                else:
                    new_heap.append(replace(obj, val=dom.join(obj.val, val)))
            else:
                new_heap.append(obj)
        aheap = tuple(new_heap)
    return aglobals, aheap


# --------------------------------------------------------------------------
# guard refinement
# --------------------------------------------------------------------------

_MIRROR = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
_NEGATE = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}

#: sentinel: the refined path is infeasible (guard unsatisfiable on
#: closer inspection than the truth test could see)
INFEASIBLE = object()


def refine_guard(
    dom: AbsValueDomain,
    cond,
    acfg: AbsConfig,
    locals_: tuple[AbsValue, ...],
    *,
    negate: bool = False,
):
    """Meet the implications of a passed guard into the store.

    Handles the ``var op const`` comparison shapes (either operand
    order); everything else refines nothing.  Returns
    ``(aglobals | None, locals | None)`` with None meaning unchanged,
    or :data:`INFEASIBLE` when the refinement empties the value.
    """
    if not isinstance(cond, RBinary):
        return None, None
    op = _NEGATE.get(cond.op) if negate else cond.op
    if op not in _MIRROR:
        return None, None
    left, right = cond.left, cond.right
    if isinstance(right, RConst) and isinstance(left, (RGlobal, RLocal)):
        var, c = left, right.value
    elif isinstance(left, RConst) and isinstance(right, (RGlobal, RLocal)):
        var, c, op = right, left.value, _MIRROR[op]
    else:
        return None, None
    old = (
        acfg.aglobals[var.index]
        if isinstance(var, RGlobal)
        else locals_[var.slot]
    )
    new = (dom.num.refine(old[0], op, c), old[1], old[2])
    if new == old:
        return None, None
    if dom.is_bottom(new):
        return INFEASIBLE
    if isinstance(var, RGlobal):
        i = var.index
        return acfg.aglobals[:i] + (new,) + acfg.aglobals[i + 1 :], None
    s = var.slot
    return None, locals_[:s] + (new,) + locals_[s + 1 :]


# --------------------------------------------------------------------------
# member stepping
# --------------------------------------------------------------------------


@dataclass
class _MemberSucc:
    member: Member
    label: str
    kind: str
    aglobals: tuple | None = None
    aheap: tuple | None = None
    spawns: tuple[AbsProcess, ...] = ()
    drop_children: bool = False


def _advance(program: Program, member: Member, pc: int, locals_=None) -> Member:
    top = member.frames[-1]
    new_top = AbsFrame(
        func=top.func,
        pc=resolve_pc(program, top.func, pc),
        locals=top.locals if locals_ is None else locals_,
        ret_loc=top.ret_loc,
    )
    return Member(frames=member.frames[:-1] + (new_top,), status=member.status)


def member_successors(
    program: Program,
    acfg: AbsConfig,
    proc: AbsProcess,
    member: Member,
    opts: AbsOptions,
    warnings: list[str],
) -> list[_MemberSucc]:
    """Abstract successors of one clan member (may be several)."""
    dom = opts.dom
    if member.status == DONE:
        return []
    if member.status == JOINING:
        if all(acfg.proc(c).all_done for c in proc.children):
            top = member.frames[-1]
            instr = program.funcs[top.func].instrs[top.pc]
            assert isinstance(instr, ICobegin)
            resumed = Member(
                frames=member.frames[:-1]
                + (
                    AbsFrame(
                        func=top.func,
                        pc=resolve_pc(program, top.func, instr.join_target),
                        locals=top.locals,
                        ret_loc=top.ret_loc,
                    ),
                ),
                status=RUNNING,
            )
            return [
                _MemberSucc(
                    member=resumed,
                    label=(instr.label + "$join") if instr.label else "$join",
                    kind="IJoin",
                    drop_children=True,
                )
            ]
        return []

    top = member.frames[-1]
    instr = program.funcs[top.func].instrs[top.pc]
    locals_ = top.locals

    if isinstance(instr, ISkip):
        return [_MemberSucc(_advance(program, member, top.pc + 1), instr.label, "ISkip")]

    if isinstance(instr, IAssume):
        cond = eval_abs(dom, instr.cond, acfg, locals_, warnings)
        may_t, _ = dom.truth(cond)
        if not may_t:
            return []
        refined = refine_guard(dom, instr.cond, acfg, locals_)
        if refined is INFEASIBLE:
            return []
        aglobals, new_locals = refined
        return [
            _MemberSucc(
                _advance(program, member, top.pc + 1, new_locals),
                instr.label,
                "IAssume",
                aglobals=aglobals,
            )
        ]

    if isinstance(instr, IAssert):
        cond = eval_abs(dom, instr.cond, acfg, locals_, warnings)
        may_t, may_f = dom.truth(cond)
        if may_f:
            warnings.append(f"assertion {instr.label!r} may fail")
        if not may_t:
            return []
        return [_MemberSucc(_advance(program, member, top.pc + 1), instr.label, "IAssert")]

    if isinstance(instr, IBranch):
        cond = eval_abs(dom, instr.cond, acfg, locals_, warnings)
        may_t, may_f = dom.truth(cond)
        out = []
        for taken, target in ((True, instr.then_target), (False, instr.else_target)):
            if not (may_t if taken else may_f):
                continue
            refined = refine_guard(
                dom, instr.cond, acfg, locals_, negate=not taken
            )
            if refined is INFEASIBLE:
                continue
            aglobals, new_locals = refined
            out.append(
                _MemberSucc(
                    _advance(program, member, target, new_locals),
                    instr.label,
                    "IBranch",
                    aglobals=aglobals,
                )
            )
        return out

    if isinstance(instr, IAcquire):
        lock = acfg.aglobals[instr.index]
        _, may_zero = dom.truth(lock)
        if not may_zero:
            return []
        aglobals = (
            acfg.aglobals[: instr.index]
            + (dom.const(1),)
            + acfg.aglobals[instr.index + 1 :]
        )
        return [
            _MemberSucc(
                _advance(program, member, top.pc + 1),
                instr.label,
                "IAcquire",
                aglobals=aglobals,
            )
        ]

    if isinstance(instr, IRelease):
        aglobals = (
            acfg.aglobals[: instr.index]
            + (dom.const(0),)
            + acfg.aglobals[instr.index + 1 :]
        )
        return [
            _MemberSucc(
                _advance(program, member, top.pc + 1),
                instr.label,
                "IRelease",
                aglobals=aglobals,
            )
        ]

    if isinstance(instr, IAssign):
        val = eval_abs(dom, instr.expr, acfg, locals_, warnings)
        dest = resolve_lv_abs(dom, instr.target, acfg, locals_, warnings)
        if dest[0] == "l":
            new_locals = locals_[: dest[1]] + (val,) + locals_[dest[1] + 1 :]
            return [
                _MemberSucc(
                    _advance(program, member, top.pc + 1, new_locals),
                    instr.label,
                    "IAssign",
                )
            ]
        aglobals, aheap = write_shared(dom, acfg, dest, val)
        return [
            _MemberSucc(
                _advance(program, member, top.pc + 1),
                instr.label,
                "IAssign",
                aglobals=aglobals,
                aheap=aheap,
            )
        ]

    if isinstance(instr, IAlloc):
        eval_abs(dom, instr.size, acfg, locals_, warnings)
        one_cell = isinstance(instr.size, RConst) and instr.size.value == 1
        existing = acfg.heap_obj(instr.site)
        if existing is None:
            aheap = tuple(
                sorted(
                    acfg.aheap
                    + (
                        AbsHeapObj(
                            site=instr.site,
                            val=dom.const(0),
                            single=True,
                            single_cell=one_cell,
                        ),
                    ),
                    key=lambda o: o.site,
                )
            )
        else:
            aheap = tuple(
                replace(
                    o,
                    val=dom.join(o.val, dom.const(0)),
                    single=False,
                    single_cell=o.single_cell and one_cell,
                )
                if o.site == instr.site
                else o
                for o in acfg.aheap
            )
        ptr = dom.ptr_val((("site", instr.site),))
        dest = resolve_lv_abs(dom, instr.target, acfg, locals_, warnings)
        if dest[0] == "l":
            new_locals = locals_[: dest[1]] + (ptr,) + locals_[dest[1] + 1 :]
            return [
                _MemberSucc(
                    _advance(program, member, top.pc + 1, new_locals),
                    instr.label,
                    "IAlloc",
                    aheap=aheap,
                )
            ]
        tmp = AbsConfig(procs=acfg.procs, aglobals=acfg.aglobals, aheap=aheap)
        aglobals, aheap = write_shared(dom, tmp, dest, ptr)
        return [
            _MemberSucc(
                _advance(program, member, top.pc + 1),
                instr.label,
                "IAlloc",
                aglobals=aglobals,
                aheap=aheap,
            )
        ]

    if isinstance(instr, ICall):
        callee_val = eval_abs(dom, instr.callee, acfg, locals_, warnings)
        num, ptrs, funcs = callee_val
        if not dom.num.is_bottom(num) or ptrs:
            warnings.append(f"call at {instr.label!r} through a possibly-non-function")
        if not funcs:
            return []
        args = [eval_abs(dom, a, acfg, locals_, warnings) for a in instr.args]
        ret_loc = None
        if instr.target is not None:
            dest = resolve_lv_abs(dom, instr.target, acfg, locals_, warnings)
            if dest[0] == "sites":
                ret_loc = ("sites", dest[1], dest[2])
            else:
                ret_loc = dest
        out = []
        for fname in sorted(funcs):
            fc = program.funcs.get(fname)
            if fc is None or fc.num_params != len(args):
                warnings.append(f"call at {instr.label!r}: bad callee {fname!r}")
                continue
            caller_top = AbsFrame(
                func=top.func,
                pc=resolve_pc(program, top.func, top.pc + 1),
                locals=locals_,
                ret_loc=top.ret_loc,
            )
            callee_locals = tuple(args) + (dom.const(0),) * (
                fc.num_locals - fc.num_params
            )
            callee_frame = AbsFrame(
                func=fname,
                pc=resolve_pc(program, fname, 0),
                locals=callee_locals,
                ret_loc=ret_loc,
            )
            out.append(
                _MemberSucc(
                    Member(
                        frames=member.frames[:-1] + (caller_top, callee_frame),
                        status=RUNNING,
                    ),
                    instr.label,
                    "ICall",
                )
            )
        return out

    if isinstance(instr, IReturn):
        val = (
            eval_abs(dom, instr.expr, acfg, locals_, warnings)
            if instr.expr is not None
            else dom.const(0)
        )
        if len(member.frames) == 1:
            return [
                _MemberSucc(Member(frames=(), status=DONE), instr.label, "IReturn")
            ]
        ret_loc = top.ret_loc
        caller = member.frames[-2]
        if ret_loc is None:
            return [
                _MemberSucc(
                    Member(frames=member.frames[:-2] + (caller,), status=RUNNING),
                    instr.label,
                    "IReturn",
                )
            ]
        if ret_loc[0] == "l":
            new_caller = AbsFrame(
                func=caller.func,
                pc=caller.pc,
                locals=caller.locals[: ret_loc[1]]
                + (val,)
                + caller.locals[ret_loc[1] + 1 :],
                ret_loc=caller.ret_loc,
            )
            return [
                _MemberSucc(
                    Member(frames=member.frames[:-2] + (new_caller,), status=RUNNING),
                    instr.label,
                    "IReturn",
                )
            ]
        aglobals, aheap = write_shared(dom, acfg, ret_loc, val)
        return [
            _MemberSucc(
                Member(frames=member.frames[:-2] + (caller,), status=RUNNING),
                instr.label,
                "IReturn",
                aglobals=aglobals,
                aheap=aheap,
            )
        ]

    if isinstance(instr, ICobegin):
        return _spawn(program, acfg, proc, member, instr, opts)

    if isinstance(instr, IThreadEnd):
        return [
            _MemberSucc(Member(frames=(), status=DONE), instr.label, "IThreadEnd")
        ]

    raise AnalysisError(f"unknown instruction {type(instr).__name__}")


def _branch_signature(program: Program, func: str, start: int, end: int) -> tuple:
    """Structural signature of a branch region — labels dropped, targets
    made region-relative — for clan grouping of identical branches."""
    import dataclasses

    out = []
    instrs = program.funcs[func].instrs
    for pc in range(start, end):
        ins = dataclasses.replace(instrs[pc], label="", line=0)
        if isinstance(ins, IBranch):
            ins = dataclasses.replace(
                ins, then_target=ins.then_target - start, else_target=ins.else_target - start
            )
        if isinstance(ins, ICobegin):
            return ("has-nested-cobegin", pc)  # never grouped
        if isinstance(ins, IAlloc):
            ins = dataclasses.replace(ins, site="")
        out.append(ins)
    return tuple(out)


def _spawn(
    program: Program,
    acfg: AbsConfig,
    proc: AbsProcess,
    member: Member,
    instr: ICobegin,
    opts: AbsOptions,
) -> list[_MemberSucc]:
    dom = opts.dom
    top = member.frames[-1]
    fc = program.funcs[top.func]
    n = len(instr.branch_targets)
    # region boundaries: branch i spans [target_i, target_{i+1}) with the
    # last ending at the join target
    bounds = list(instr.branch_targets) + [instr.join_target]

    groups: list[tuple[int, list[int]]] = []  # (first branch idx, members)
    if opts.clan_fold:
        by_sig: dict[tuple, list[int]] = {}
        order: list[tuple] = []
        for i in range(n):
            sig = _branch_signature(program, top.func, bounds[i], bounds[i + 1])
            if sig not in by_sig:
                by_sig[sig] = []
                order.append(sig)
            by_sig[sig].append(i)
        groups = [(idxs[0], idxs) for sig in order for idxs in (by_sig[sig],)]
    else:
        groups = [(i, [i]) for i in range(n)]

    children: list[AbsProcess] = []
    for first, idxs in groups:
        count = ONE if len(idxs) == 1 else MANY
        start = Member(
            frames=(
                AbsFrame(
                    func=top.func,
                    pc=resolve_pc(program, top.func, instr.branch_targets[first]),
                    locals=(dom.const(0),) * fc.num_locals,
                    ret_loc=None,
                ),
            ),
            status=RUNNING,
        )
        children.append(
            AbsProcess(
                pid=proc.pid + (first,), points=((start, count),), children=()
            )
        )
    joining = Member(frames=member.frames, status=JOINING)
    return [
        _MemberSucc(
            member=joining,
            label=instr.label,
            kind="ICobegin",
            spawns=tuple(children),
        )
    ]


# --------------------------------------------------------------------------
# configuration-level successors
# --------------------------------------------------------------------------


def abstract_successors(
    program: Program,
    acfg: AbsConfig,
    opts: AbsOptions,
    warning_sink: list[str] | None = None,
) -> list[tuple[AbsConfig, AbsStepInfo]]:
    """All abstract successors of *acfg*, over every clan point.

    ``warning_sink`` additionally receives every warning, including
    those of members that produce *no* successor (e.g. an assertion
    that definitely fails) — successors alone would drop them.
    """
    out: list[tuple[AbsConfig, AbsStepInfo]] = []
    for proc in acfg.procs:
        if proc.points and all(m.status == DONE for m, _ in proc.points):
            continue
        for m, count in proc.points:
            warnings: list[str] = []
            succs = member_successors(program, acfg, proc, m, opts, warnings)
            if warning_sink is not None:
                warning_sink.extend(warnings)
            for ms in succs:
                for cfg in _apply_member_succ(acfg, proc, m, count, ms):
                    out.append(
                        (
                            cfg,
                            AbsStepInfo(
                                pid=proc.pid,
                                label=ms.label,
                                kind=ms.kind,
                                warnings=tuple(warnings),
                            ),
                        )
                    )
    return out


def _apply_member_succ(
    acfg: AbsConfig,
    proc: AbsProcess,
    member: Member,
    count: int,
    ms: _MemberSucc,
) -> list[AbsConfig]:
    """Lift a member successor to configuration successors, forking on
    the MANY count ("one stays" / "the last one moves")."""
    remaining = [(m, c) for m, c in proc.points if m != member]

    variants: list[list[tuple[Member, int]]] = []
    if count == ONE:
        variants.append(remaining + [(ms.member, ONE)])
    else:
        variants.append(remaining + [(member, MANY), (ms.member, ONE)])
        variants.append(remaining + [(member, ONE), (ms.member, ONE)])

    out = []
    for points in variants:
        new_proc = AbsProcess(
            pid=proc.pid,
            points=canon_points(points),
            children=()
            if ms.drop_children
            else (proc.children + tuple(s.pid for s in ms.spawns)),
        )
        procs = []
        dropped = set(proc.children) if ms.drop_children else set()
        for p in acfg.procs:
            if p.pid == proc.pid:
                procs.append(new_proc)
            elif p.pid not in dropped:
                procs.append(p)
        procs.extend(ms.spawns)
        procs.sort(key=lambda p: p.pid)
        out.append(
            AbsConfig(
                procs=tuple(procs),
                aglobals=ms.aglobals if ms.aglobals is not None else acfg.aglobals,
                aheap=ms.aheap if ms.aheap is not None else acfg.aheap,
            )
        )
    return out
