"""Shared utilities: errors, deterministic collections, fixpoint engines."""

from repro.util.errors import (
    ReproError,
    LexError,
    ParseError,
    ResolveError,
    CompileError,
    RuntimeFault,
    AnalysisError,
)
from repro.util.fixpoint import Worklist, fixpoint_map
from repro.util.ordered import OrderedSet, stable_unique

__all__ = [
    "ReproError",
    "LexError",
    "ParseError",
    "ResolveError",
    "CompileError",
    "RuntimeFault",
    "AnalysisError",
    "Worklist",
    "fixpoint_map",
    "OrderedSet",
    "stable_unique",
]
