"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Front-end errors carry a source
line when one is known.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SourceError(ReproError):
    """A front-end error attributed to a source location."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.message = message
        self.line = line
        self.col = col
        loc = ""
        if line is not None:
            loc = f" at line {line}" + (f", col {col}" if col is not None else "")
        super().__init__(message + loc)


class LexError(SourceError):
    """Raised by the lexer on an invalid character or malformed token."""


class ParseError(SourceError):
    """Raised by the parser on a syntax error."""


class ResolveError(SourceError):
    """Raised by the resolver: undeclared names, illegal scope crossings,
    duplicate declarations, calls to unknown functions, ..."""


class CompileError(SourceError):
    """Raised by the AST-to-instruction compiler on unsupported or
    ill-formed constructs (e.g. ``return`` inside a cobegin branch)."""


class RuntimeFault(ReproError):
    """A fault in the *subject* program discovered during interpretation:
    bad pointer dereference, division by zero, assertion failure.

    Exploration does not propagate these as Python exceptions across the
    engine; a faulting transition produces a terminal error configuration
    carrying the fault's description.
    """

    def __init__(self, kind: str, detail: str = ""):
        self.kind = kind
        self.detail = detail
        super().__init__(f"{kind}: {detail}" if detail else kind)


class AnalysisError(ReproError):
    """Raised by client analyses on unmet preconditions (e.g. asking for
    Shasha–Snir delays on non-straight-line segments)."""


class ScheduleError(ReproError):
    """Raised by the schedule generator (:mod:`repro.schedules`):
    extraction from a truncated exploration (its graph is not the full
    reduced state space, so "one schedule per class" is undefined), or a
    replay that diverges from the schedule's recorded execution — the
    latter is the self-check that emitted schedules are genuine."""


class ServeError(ReproError):
    """Raised by the analysis service (:mod:`repro.serve`): bad
    requests, unreachable servers, jobs that exhausted their restart
    budget.  Protocol-level failures (overload, malformed JSON) are
    *responses*, not exceptions — this class covers the cases where the
    caller cannot get a response at all."""
