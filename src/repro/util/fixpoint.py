"""Generic worklist / fixpoint machinery.

Used by the static access-set computation (interprocedural reachability),
the dependence dataflow over configuration graphs, and the abstract
folding driver.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Hashable, Iterable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class Worklist:
    """A FIFO worklist that never holds duplicates.

    ``push`` while already queued is a no-op, which keeps fixpoint loops
    from re-processing a node more often than necessary.
    """

    __slots__ = ("_q", "_in")

    def __init__(self, items: Iterable = ()):  # noqa: D401
        self._q: deque = deque()
        self._in: set = set()
        for it in items:
            self.push(it)

    def push(self, item) -> None:
        if item not in self._in:
            self._in.add(item)
            self._q.append(item)

    def pop(self):
        item = self._q.popleft()
        self._in.discard(item)
        return item

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)


def fixpoint_map(
    keys: Iterable[K],
    init: Callable[[K], V],
    deps: Callable[[K], Iterable[K]],
    transfer: Callable[[K, Callable[[K], V]], V],
    eq: Callable[[V, V], bool] | None = None,
) -> dict[K, V]:
    """Compute the least fixpoint of ``transfer`` over a finite key set.

    Parameters
    ----------
    keys:
        All keys in the system (processed in the given order first).
    init:
        Initial value for each key.
    deps:
        ``deps(k)`` yields the keys whose value must be *recomputed* when
        ``k``'s value changes (i.e. the reverse data dependence).
    transfer:
        ``transfer(k, get)`` recomputes ``k``'s value; ``get(j)`` reads the
        current value of key ``j``.
    eq:
        Value equality; defaults to ``==``.

    Returns the stabilized map.  Termination is the caller's obligation
    (finite-height value space or widening inside ``transfer``).
    """
    if eq is None:
        eq = lambda a, b: a == b  # noqa: E731
    keys = list(keys)
    values: dict[K, V] = {k: init(k) for k in keys}
    wl = Worklist(keys)
    get = values.__getitem__
    while wl:
        k = wl.pop()
        new = transfer(k, get)
        if not eq(values[k], new):
            values[k] = new
            for j in deps(k):
                wl.push(j)
    return values
