"""Deterministic ordered collections.

The exploration engine and all analyses must be *fully deterministic*:
repeated runs over the same program must produce byte-identical output
(DESIGN.md §5).  Python ``set`` iteration order is insertion-ordered only
for ``dict``; ``set`` ordering depends on hash seeds for some types.  We
therefore use an insertion-ordered set wherever iteration order can leak
into results.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, TypeVar

T = TypeVar("T", bound=Hashable)


class OrderedSet:
    """A set with deterministic (insertion) iteration order.

    Supports the small subset of the ``set`` API the library needs.
    """

    __slots__ = ("_d",)

    def __init__(self, items: Iterable[T] = ()):  # type: ignore[assignment]
        self._d: dict = {}
        for it in items:
            self._d[it] = None

    def add(self, item) -> bool:
        """Insert *item*; return True if it was not already present."""
        if item in self._d:
            return False
        self._d[item] = None
        return True

    def update(self, items: Iterable) -> None:
        for it in items:
            self._d[it] = None

    def discard(self, item) -> None:
        self._d.pop(item, None)

    def __contains__(self, item) -> bool:
        return item in self._d

    def __iter__(self) -> Iterator:
        return iter(self._d)

    def __len__(self) -> int:
        return len(self._d)

    def __bool__(self) -> bool:
        return bool(self._d)

    def __eq__(self, other) -> bool:
        if isinstance(other, OrderedSet):
            return set(self._d) == set(other._d)
        if isinstance(other, (set, frozenset)):
            return set(self._d) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"OrderedSet({list(self._d)!r})"

    def as_list(self) -> list:
        return list(self._d)

    def as_frozenset(self) -> frozenset:
        return frozenset(self._d)


def stable_unique(items: Iterable[T]) -> list[T]:
    """Return *items* with duplicates removed, first occurrence kept."""
    seen: dict = {}
    for it in items:
        seen.setdefault(it, None)
    return list(seen)
