"""repro — reproduction of Chow & Harrison (ICPP 1992).

*A General Framework for Analyzing Shared-Memory Parallel Programs.*

The package implements, from scratch:

- a C-style toy language with ``cobegin`` parallelism, shared variables,
  pointers, dynamic allocation and first-class functions
  (:mod:`repro.lang`);
- a small-step concrete semantics instrumented with procedure strings and
  object birthdates (:mod:`repro.semantics`);
- a state-space exploration engine with full interleaving, stubborn-set
  reduction (the paper's Algorithm 1) and virtual coarsening
  (:mod:`repro.explore`);
- an abstract-interpretation substrate: lattices, value domains, abstract
  stores (:mod:`repro.absdomain`) and exploration *modulo abstraction*
  (state folding), including Taylor concurrency states and McDowell clans
  (:mod:`repro.abstraction`);
- the client analyses of the paper: side effects, data dependences, object
  lifetimes, races, Shasha–Snir delay insertion, further parallelization,
  memory placement and interference-aware constant propagation
  (:mod:`repro.analyses`);
- the paper's example programs and benchmark workloads
  (:mod:`repro.programs`).

Quickstart::

    from repro import parse_program, explore

    prog = parse_program('''
        var A = 0; var B = 0; var x = 0; var y = 0;
        func main() {
            cobegin { s1: A = 1; s2: y = B; }
                    { s3: B = 1; s4: x = A; }
        }
    ''')
    result = explore(prog, policy="stubborn")
    print(result.stats.num_configs)
"""

from repro.lang import parse_program, compile_program
from repro.explore import explore
from repro.semantics import run_program

__version__ = "1.0.0"

__all__ = [
    "parse_program",
    "compile_program",
    "explore",
    "run_program",
    "__version__",
]
