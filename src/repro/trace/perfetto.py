"""Chrome trace-event export: open a run in Perfetto.

Converts a trace record sequence into the JSON object format consumed
by https://ui.perfetto.dev and ``chrome://tracing`` (the "Trace Event
Format"): spans become complete events (``ph: "X"``) with microsecond
``ts``/``dur``, point events become instant events (``ph: "i"``), and
each shard gets its own named track (``tid``), with the master/serial
engine on track 0.

When a trace was recorded with wall-clock disabled (or stripped), the
deterministic sequence ids stand in for timestamps — the visual layout
then shows *ordering and nesting*, not duration, which is exactly what
a determinism-preserving diff artifact can promise.
"""

from __future__ import annotations

import json

from repro.trace.tracer import SCHEMA_VERSION

#: ``tid`` used for master/serial records (``shard: None``).
MASTER_TID = 0


def _tid(record: dict) -> int:
    shard = record.get("shard")
    return MASTER_TID if shard is None else int(shard) + 1


def to_chrome_trace(records) -> dict:
    """Build the Chrome trace-event document for *records*.

    Always returns a JSON-able dict; round-trips through
    ``json.dumps``/``json.loads`` unchanged.
    """
    events: list[dict] = []
    tids: set[int] = set()
    for record in records:
        kind = record.get("kind")
        if kind not in ("span", "event"):
            continue  # meta or foreign records carry no timeline
        tid = _tid(record)
        tids.add(tid)
        args = dict(record.get("args", {}))
        args["seq"] = record.get("seq")
        base = {
            "name": record.get("name", "?"),
            "cat": "repro",
            "pid": 0,
            "tid": tid,
            "args": args,
        }
        ts = record.get("wall_ts_us")
        if kind == "span":
            dur = record.get("wall_dur_us")
            if ts is None:
                # deterministic fallback: sequence ids as microseconds
                ts = record.get("seq", 0)
                dur = max(record.get("end_seq", ts) - ts, 1)
            events.append({**base, "ph": "X", "ts": ts, "dur": max(dur, 1)})
        else:
            if ts is None:
                ts = record.get("seq", 0)
            events.append({**base, "ph": "i", "ts": ts, "s": "t"})

    meta: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": MASTER_TID,
            "args": {"name": "repro"},
        }
    ]
    for tid in sorted(tids):
        name = "master" if tid == MASTER_TID else f"shard-{tid - 1}"
        meta.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": SCHEMA_VERSION},
    }


def write_chrome_trace(path: str, records) -> None:
    """Write the Chrome trace-event JSON for *records* to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(records), fh, indent=1)
        fh.write("\n")
