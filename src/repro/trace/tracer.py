"""The tracer core: records, sequence ids, spans, events.

A trace is a flat sequence of JSON-able dict **records**.  Every record
carries:

``seq``
    a deterministic monotonic sequence id, allocated when the span was
    *opened* (or the event fired) — the temporal skeleton of the trace
    that survives wall-clock stripping;
``shard``
    which process recorded it: ``None`` for the master/serial engine,
    the shard id for a parallel worker;
``kind`` / ``name`` / ``args``
    ``"span"`` or ``"event"``, a dotted name, and a dict of
    deterministic attributes.

Spans additionally carry ``end_seq`` (allocated at close — nesting and
duration-in-sequence-time are recoverable) and are emitted to sinks
**at close**, so sink order is close order: deterministic, inner spans
before the spans that contain them.

Wall-clock is confined to optional fields with a ``wall_`` prefix
(``wall_ts_us`` since the tracer's epoch, ``wall_dur_us`` for spans).
:func:`strip_wall` removes exactly those, and
:func:`canonical_lines` yields the byte-stable form the determinism
suite compares.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

#: Version of the trace record vocabulary.  Bump on any key rename or
#: semantic change; the JSONL meta line and the Chrome export embed it.
SCHEMA_VERSION = "repro.trace/1"

#: Key prefix reserved for non-deterministic wall-clock fields.
WALL_PREFIX = "wall_"


def strip_wall(record: dict) -> dict:
    """A copy of *record* without the ``wall_*`` fields — the
    deterministic residue two runs of the same search must agree on."""
    return {k: v for k, v in record.items() if not k.startswith(WALL_PREFIX)}


def encode_record(record: dict) -> str:
    """Canonical single-line JSON encoding (sorted keys, no spaces)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def canonical_lines(records, *, strip: bool = True) -> str:
    """The byte-comparable form of a trace: one canonical JSON line per
    record, wall-clock stripped unless ``strip=False``."""
    if strip:
        records = (strip_wall(r) for r in records)
    return "\n".join(encode_record(r) for r in records)


class Tracer:
    """Records spans and events into the attached sinks.

    Never constructed by the engine itself — callers attach one via
    :class:`~repro.trace.recorder.TraceRecorder` and the engine
    discovers it, exactly as the metrics registry is discovered.  With
    ``record_wall=False`` the records are fully deterministic with no
    stripping needed.
    """

    __slots__ = ("sinks", "shard", "record_wall", "_seq", "_epoch")

    def __init__(
        self,
        *sinks,
        shard: int | None = None,
        record_wall: bool = True,
    ) -> None:
        self.sinks = list(sinks)
        self.shard = shard
        self.record_wall = record_wall
        self._seq = 0
        self._epoch = time.perf_counter()

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq = seq + 1
        return seq

    def emit(self, record: dict) -> None:
        """Deliver a complete record to every sink.  Also the merge
        entry point: the parallel master feeds worker-shipped records
        through here verbatim (they already carry their shard id)."""
        for sink in self.sinks:
            sink.emit(record)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def event(self, name: str, **args) -> None:
        """Record an instant event."""
        record = {
            "kind": "event",
            "seq": self._next_seq(),
            "shard": self.shard,
            "name": name,
            "args": args,
        }
        if self.record_wall:
            record["wall_ts_us"] = int(
                (time.perf_counter() - self._epoch) * 1e6
            )
        self.emit(record)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------

    def begin_span(self, name: str, **args) -> list:
        """Open a span; returns a handle for :meth:`end_span`.  The
        explicit begin/end pair is the allocation-light hot-path form;
        :meth:`span` wraps it as a context manager."""
        return [
            self._next_seq(),
            time.perf_counter() if self.record_wall else None,
            name,
            args,
        ]

    def end_span(self, handle: list, **extra) -> None:
        """Close a span, merging *extra* into its attributes, and emit
        the single complete record."""
        seq, t0, name, args = handle
        if extra:
            args = {**args, **extra}
        record = {
            "kind": "span",
            "seq": seq,
            "end_seq": self._next_seq(),
            "shard": self.shard,
            "name": name,
            "args": args,
        }
        if t0 is not None:
            now = time.perf_counter()
            record["wall_ts_us"] = int((t0 - self._epoch) * 1e6)
            record["wall_dur_us"] = int((now - t0) * 1e6)
        self.emit(record)

    @contextmanager
    def span(self, name: str, **args):
        """Context manager form; yields a dict whose entries become
        close-time attributes::

            with tracer.span("stubborn.closure", enabled=3) as out:
                chosen = selector.select(expansions)
                out["chosen"] = len(chosen)
        """
        handle = self.begin_span(name, **args)
        extra: dict = {}
        try:
            yield extra
        finally:
            self.end_span(handle, **extra)


class SpanChunker:
    """Rotating span series for loop-shaped work without natural phases.

    The serial drivers have no frontier rounds, so their
    ``explore.round`` spans are chunks of *every* expansions each —
    deterministic (tick counts, not wall-clock, decide the boundaries)
    and cheap (one integer compare per tick).  ``close()`` flushes the
    final partial chunk.
    """

    __slots__ = ("tracer", "name", "every", "index", "ticks", "_handle")

    def __init__(self, tracer: Tracer, name: str, every: int = 1024) -> None:
        self.tracer = tracer
        self.name = name
        self.every = max(1, int(every))
        self.index = 0
        self.ticks = 0
        self._handle: list | None = None

    def tick(self) -> None:
        if self._handle is None:
            self._handle = self.tracer.begin_span(self.name, index=self.index)
        self.ticks += 1
        if self.ticks >= self.every:
            self.close()

    def close(self) -> None:
        """Close the open chunk (if any), recording its tick count."""
        if self._handle is None:
            return
        self.tracer.end_span(self._handle, ticks=self.ticks)
        self._handle = None
        self.index += 1
        self.ticks = 0
