"""Structured exploration tracing: spans, events, sinks, and reports.

Where :mod:`repro.metrics` answers "how much" (aggregate counters and
histograms), this package answers "when and why": the engine threads an
optional :class:`Tracer` through its hot paths and records **spans**
(``explore.round``, ``stubborn.closure``, ``coarsen.fuse``,
``fold.join``, ``parallel.scatter``/``gather``, ``checkpoint.write``)
and **point events** (truncations, ladder escalations, observer
evictions) with deterministic monotonic sequence ids.  Wall-clock lives
only in clearly-named ``wall_*`` fields, so two traces of the same run
diff byte-identically once those fields are stripped
(:func:`strip_wall`).

Usage::

    from repro.explore import explore
    from repro.trace import TraceRecorder

    tr = TraceRecorder()                      # in-memory ring buffer
    result = explore(program, "stubborn", observers=(tr,))
    for record in tr.records():
        print(record["seq"], record["name"])

Sinks: :class:`RingBufferSink` (bounded, the default),
:class:`ListSink` (unbounded, used by parallel workers),
:class:`JsonlFileSink` (streaming ``*.jsonl``).  Exporters:
:func:`to_chrome_trace` (Chrome trace-event JSON, opens in
https://ui.perfetto.dev) and :func:`render_report` (self-contained HTML
run report, CLI ``repro report``).

Zero cost when unattached: without a :class:`TraceRecorder` among the
observers the engine allocates no tracer and every instrumentation
site is a single ``is not None`` test — the same discipline as
:mod:`repro.metrics`.

Parallel runs participate fully: each worker records into its own
tracer, ships the records back over the existing per-round pipe
protocol, and the master merges them into its sinks in deterministic
``(shard, seq)`` order (master records carry ``shard: None``).
"""

from repro.trace.perfetto import MASTER_TID, to_chrome_trace, write_chrome_trace
from repro.trace.recorder import TraceRecorder, attached_tracer
from repro.trace.report import render_report
from repro.trace.sinks import (
    JsonlFileSink,
    ListSink,
    RingBufferSink,
    TraceSink,
    read_trace,
    write_trace,
)
from repro.trace.tracer import (
    SCHEMA_VERSION,
    SpanChunker,
    Tracer,
    canonical_lines,
    encode_record,
    strip_wall,
)

__all__ = [
    "JsonlFileSink",
    "ListSink",
    "MASTER_TID",
    "RingBufferSink",
    "SCHEMA_VERSION",
    "SpanChunker",
    "TraceRecorder",
    "TraceSink",
    "Tracer",
    "attached_tracer",
    "canonical_lines",
    "encode_record",
    "read_trace",
    "render_report",
    "strip_wall",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_trace",
]
