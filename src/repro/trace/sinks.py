"""Trace sinks: where records go.

Three shapes for three jobs:

- :class:`ListSink` — unbounded, drainable; parallel workers record
  into one and ship ``drain()`` batches back over the round pipe;
- :class:`RingBufferSink` — bounded last-N window with a dropped-record
  count, the default for interactive use (attach, run, inspect) — a
  million-configuration run cannot exhaust memory through its trace;
- :class:`JsonlFileSink` — streams canonical JSON lines to disk, one
  record per line, prefixed by a schema meta line; what
  ``repro explore --trace-out`` writes and ``repro report`` reads.

All sinks are single-process: the parallel backend gives each worker
its own sink and merges on the master (see
:mod:`repro.explore.parallel`), so no sink needs locking.
"""

from __future__ import annotations

import json
from collections import deque

from repro.trace.tracer import SCHEMA_VERSION, encode_record
from repro.util.errors import ReproError


class TraceSink:
    """Base sink: receives complete records, in emission order."""

    def emit(self, record: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class ListSink(TraceSink):
    """Unbounded in-memory sink with batch draining."""

    def __init__(self) -> None:
        self._records: list[dict] = []

    def emit(self, record: dict) -> None:
        self._records.append(record)

    def records(self) -> list[dict]:
        return list(self._records)

    def drain(self) -> list[dict]:
        """Return and clear everything recorded since the last drain —
        the per-round shipping primitive of the parallel workers."""
        out = self._records
        self._records = []
        return out


class RingBufferSink(TraceSink):
    """Bounded sink keeping the most recent *capacity* records."""

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._buf: deque[dict] = deque(maxlen=capacity)

    def emit(self, record: dict) -> None:
        if len(self._buf) == self.capacity:
            self.dropped += 1
        self._buf.append(record)

    def records(self) -> list[dict]:
        return list(self._buf)


class JsonlFileSink(TraceSink):
    """Streams records to a ``*.jsonl`` file.

    The first line is a meta record (``kind: "meta"``) naming the trace
    schema so a reader can refuse files it does not speak; every
    subsequent line is one canonical record.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self._fh.write(
            encode_record({"kind": "meta", "schema": SCHEMA_VERSION}) + "\n"
        )

    def emit(self, record: dict) -> None:
        self._fh.write(encode_record(record) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


def write_trace(path: str, records) -> None:
    """Write a complete record sequence as a JSONL trace file."""
    sink = JsonlFileSink(path)
    try:
        for record in records:
            sink.emit(record)
    finally:
        sink.close()


def read_trace(path: str) -> list[dict]:
    """Read a JSONL trace written by :class:`JsonlFileSink`.

    Validates the meta line when present (a bare record stream without
    one is accepted — in-memory dumps have no meta).  Raises
    :class:`~repro.util.errors.ReproError` on unreadable files, broken
    JSON, or an incompatible schema.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        raise ReproError(f"cannot read trace {path!r}: {exc}")
    records: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"{path}:{lineno}: not a JSON trace record ({exc.msg})"
            )
        if not isinstance(record, dict):
            raise ReproError(f"{path}:{lineno}: trace record is not an object")
        if record.get("kind") == "meta":
            schema = record.get("schema")
            if schema != SCHEMA_VERSION:
                raise ReproError(
                    f"trace schema {schema!r} unsupported "
                    f"(this reader speaks {SCHEMA_VERSION!r})"
                )
            continue
        records.append(record)
    return records
