"""The HTML run report: one self-contained file per run.

``repro report`` renders a trace (JSONL) plus an optional metrics dump
into a single HTML document with no external references — CSS inline,
no scripts, no fetches — so it can be attached to a CI run, mailed, or
diffed.  Sections:

- **outcome** — the ``explore.done`` event's graph statistics, the
  truncation events, and the witness events the CLI records;
- **escalation trail** — every ``resilience.escalation`` event, in
  order;
- **schedule generation** — class counts and coverage from ``repro
  schedules`` runs (the ``schedules.done`` event / ``schedules.*``
  metric series);
- **progress timeline** — sampled in-run telemetry frames (``repro
  explore --progress-out`` / the serve progress stream), showing how
  the frontier and the cache hit rate evolved over the run;
- **span timings** — per-name aggregates (count, total/mean/max
  wall-clock when recorded, total sequence extent otherwise);
- **events** — per-name counts with the most recent attributes of the
  noteworthy ones (evictions, truncations);
- **metrics** — the registry snapshot as one table per instrument
  type.
"""

from __future__ import annotations

import html

from repro.trace.tracer import SCHEMA_VERSION

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 60rem;
       color: #1a1a1a; background: #ffffff; line-height: 1.45; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #1a1a1a; padding-bottom: .3rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .5rem 0 1rem; width: 100%; }
th, td { border: 1px solid #c8c8c8; padding: .25rem .6rem; text-align: left;
         font-variant-numeric: tabular-nums; }
th { background: #f0f0f0; }
td.num { text-align: right; }
code { background: #f4f4f4; padding: 0 .25rem; }
p.meta { color: #555555; font-size: .85rem; }
"""


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _row(cells, *, header=False, numeric=()) -> str:
    tag = "th" if header else "td"
    out = []
    for i, cell in enumerate(cells):
        cls = ' class="num"' if (not header and i in numeric) else ""
        out.append(f"<{tag}{cls}>{_esc(cell)}</{tag}>")
    return "<tr>" + "".join(out) + "</tr>"


def _table(headers, rows, numeric=()) -> str:
    body = [_row(headers, header=True)]
    body.extend(_row(r, numeric=numeric) for r in rows)
    return "<table>" + "".join(body) + "</table>"


def _fmt_us(us) -> str:
    return f"{us / 1000:.3f} ms"


def _span_aggregates(records) -> list[tuple]:
    agg: dict[str, dict] = {}
    for r in records:
        if r.get("kind") != "span":
            continue
        a = agg.setdefault(
            r["name"], {"count": 0, "wall": 0, "wall_max": 0, "seqext": 0,
                        "has_wall": False},
        )
        a["count"] += 1
        a["seqext"] += max(r.get("end_seq", r.get("seq", 0)) - r.get("seq", 0), 0)
        dur = r.get("wall_dur_us")
        if dur is not None:
            a["has_wall"] = True
            a["wall"] += dur
            a["wall_max"] = max(a["wall_max"], dur)
    rows = []
    for name in sorted(agg):
        a = agg[name]
        if a["has_wall"]:
            mean = a["wall"] / a["count"]
            rows.append(
                (name, a["count"], _fmt_us(a["wall"]), _fmt_us(mean),
                 _fmt_us(a["wall_max"]))
            )
        else:
            rows.append((name, a["count"], "-", "-", "-"))
    return rows


def _events_of(records, name: str) -> list[dict]:
    return [r for r in records if r.get("kind") == "event" and r.get("name") == name]


def _outcome_section(records) -> str:
    done = _events_of(records, "explore.done")
    parts = ["<h2>Outcome</h2>"]
    if done:
        args = done[-1].get("args", {})
        order = ("configs", "edges", "terminated", "deadlocks", "faults",
                 "truncated", "reason")
        rows = [(k, args.get(k)) for k in order if k in args]
        rows += sorted((k, v) for k, v in args.items() if k not in order)
        parts.append(_table(("statistic", "value"), rows, numeric=(1,)))
    else:
        parts.append("<p>No <code>explore.done</code> event in the trace "
                     "(truncated ring buffer, or the run never finished).</p>")
    for ev in _events_of(records, "explore.truncated"):
        parts.append(
            f"<p>Truncated: <code>{_esc(ev.get('args', {}).get('reason'))}"
            f"</code> at seq {_esc(ev.get('seq'))}.</p>"
        )
    return "".join(parts)


def _witness_section(records) -> str:
    found = _events_of(records, "witness.found")
    absent = _events_of(records, "witness.absent")
    if not found and not absent:
        return ""
    parts = ["<h2>Witness summary</h2>"]
    for ev in absent:
        parts.append(
            f"<p>No <code>{_esc(ev.get('args', {}).get('target'))}</code> "
            "is reachable.</p>"
        )
    for ev in found:
        args = ev.get("args", {})
        verified = ""
        if args.get("verified"):
            verified = (
                " Replay-verified: the canonical schedule reaches "
                f"configuration digest <code>{_esc(args.get('final_digest'))}"
                "</code> and the predicate holds there."
            )
        parts.append(
            f"<p>Shortest execution reaching a "
            f"<code>{_esc(args.get('target'))}</code>: "
            f"{_esc(args.get('length'))} steps.{verified}</p>"
        )
        steps = args.get("steps") or []
        if steps:
            parts.append(_table(
                ("#", "step"),
                [(i + 1, s) for i, s in enumerate(steps)],
            ))
    return "".join(parts)


def _schedules_section(records, metrics: dict | None) -> str:
    """Schedule generation: class counts and coverage accounting, from
    the ``schedules.done`` event (``repro schedules --trace-out``) or
    the ``schedules.*`` metric series — whichever the run recorded."""
    done = _events_of(records, "schedules.done")
    args: dict = dict(done[-1].get("args", {})) if done else {}
    if not args and metrics:
        for name in sorted(metrics):
            if name.startswith("schedules."):
                args[name.split(".", 1)[1]] = metrics[name].get("value")
    if not args:
        return ""
    order = (
        ("classes", "equivalence classes"),
        ("paths", "complete paths enumerated"),
        ("sample", "requested sample size"),
        ("seed", "sampling seed"),
        ("edges_covered", "graph edges covered"),
        ("edge_coverage", "edge coverage"),
        ("class_coverage", "class coverage"),
        ("cycles_skipped", "busy-wait cycles skipped"),
        ("replays", "schedules replay-verified"),
        ("replay_failures", "replay divergences"),
        ("truncated", "enumeration truncated"),
    )
    rows = []
    for key, label in order:
        if key not in args or args[key] is None:
            continue
        value = args[key]
        if isinstance(value, float):
            value = round(value, 4)
        rows.append((label, value))
    rows += sorted(
        (k, v) for k, v in args.items()
        if k not in {key for key, _ in order}
    )
    return "<h2>Schedule generation</h2>" + _table(
        ("statistic", "value"), rows, numeric=(1,)
    )


def _sample_rows(rows, limit: int = 40) -> list:
    """Evenly sample *rows* down to *limit*, always keeping the first
    and last entries so the timeline endpoints survive."""
    if len(rows) <= limit:
        return list(rows)
    step = (len(rows) - 1) / (limit - 1)
    picked = [rows[round(i * step)] for i in range(limit)]
    picked[-1] = rows[-1]
    return picked


def _progress_section(frames) -> str:
    """The live-telemetry timeline: one row per sampled progress frame
    (:mod:`repro.progress`), so a finished report still shows how the
    run *got* there — frontier growth, cache warm-up, ladder rungs."""
    frames = [f for f in frames if isinstance(f, dict)]
    if not frames:
        return ""
    rows = []
    for f in frames:
        hits = f.get("cache_hits")
        misses = f.get("cache_misses")
        rate = ""
        if hits is not None and misses is not None and hits + misses:
            rate = f"{hits / (hits + misses):.3f}"
        wall = f.get("wall_ms")
        rows.append((
            f.get("seq", ""),
            f.get("phase", ""),
            f.get("rung", ""),
            f.get("configs", ""),
            f.get("edges", ""),
            f.get("frontier", ""),
            rate,
            f"{wall / 1000:.2f} s" if isinstance(wall, (int, float)) else "",
        ))
    sampled = _sample_rows(rows)
    note = ""
    if len(sampled) < len(rows):
        note = (f"<p class=\"meta\">{len(rows)} frames recorded; "
                f"{len(sampled)} shown (evenly sampled).</p>")
    return (
        "<h2>Progress timeline</h2>" + note + _table(
            ("seq", "phase", "rung", "configs", "edges", "frontier",
             "hit rate", "elapsed"),
            sampled,
            numeric=(0, 3, 4, 5, 6, 7),
        )
    )


def _dropped_spans_warning(metrics: dict | None) -> str:
    if not metrics:
        return ""
    data = metrics.get("trace.dropped_spans")
    if not data:
        return ""
    dropped = data.get("value") or 0
    if not dropped:
        return ""
    return (
        f"<p><strong>Warning:</strong> the trace ring buffer overflowed — "
        f"{_esc(dropped)} records were dropped "
        f"(<code>trace.dropped_spans</code>).  Span counts and the event "
        "table below undercount the run; raise the ring capacity or use "
        "an NDJSON sink for a complete trace.</p>"
    )


def _escalation_section(records) -> str:
    escalations = _events_of(records, "resilience.escalation")
    answered = _events_of(records, "resilience.answered")
    if not escalations and not answered:
        return ""
    parts = ["<h2>Escalation trail</h2>"]
    if escalations:
        parts.append(_table(
            ("from rung", "to rung", "reason"),
            [
                (e["args"].get("src"), e["args"].get("dst"),
                 e["args"].get("reason"))
                for e in escalations
            ],
        ))
    for ev in answered:
        args = ev.get("args", {})
        exact = "exact" if args.get("exact") else "approximate"
        parts.append(
            f"<p>Answered by rung <code>{_esc(args.get('rung'))}</code> "
            f"({exact}).</p>"
        )
    return "".join(parts)


def _event_section(records) -> str:
    counts: dict[str, int] = {}
    for r in records:
        if r.get("kind") == "event":
            counts[r["name"]] = counts.get(r["name"], 0) + 1
    if not counts:
        return ""
    return "<h2>Events</h2>" + _table(
        ("event", "count"),
        sorted(counts.items()),
        numeric=(1,),
    )


def _cache_section(metrics: dict | None) -> str:
    """Incremental-engine health, pulled out of the raw metric tables:
    the memo-cache hit split and the digest reuse rate are the first
    things to look at when expansion throughput regresses."""
    if not metrics:
        return ""
    rows = []
    for name, label in (
        ("expand.cache_hit_rate", "expansion cache hit rate"),
        ("expand.cache_hits", "expansions replayed from cache"),
        ("expand.cache_misses", "expansions computed fresh"),
        ("expand.invalidations", "footprint invalidations"),
        ("expand.cache_evictions", "cache evictions"),
        ("expand.cache_uncacheable", "uncacheable outcomes"),
        ("digest.incremental_rate", "digest component reuse rate"),
        ("digest.incremental", "component digests reused"),
        ("digest.component_new", "component digests computed"),
    ):
        data = metrics.get(name)
        if data is None:
            continue
        value = data.get("value")
        if isinstance(value, float):
            value = round(value, 4)
        rows.append((label, value))
    if not rows:
        return ""
    return "<h2>Incremental engine</h2>" + _table(
        ("series", "value"), rows, numeric=(1,)
    )


def _interconnect_section(metrics: dict | None) -> str:
    """The parallel backend's data-plane anatomy: how many bytes the
    workers shipped, what the suppression cache saved, and how much of
    the canonical merge overlapped exploration instead of trailing it.
    Absent on serial runs — the section keys on ``parallel.*`` series."""
    if not metrics or "parallel.msg_bytes" not in metrics:
        return ""
    rows = []
    for name, label in (
        ("parallel.msg_bytes", "interconnect bytes shipped"),
        ("parallel.cand_msgs", "candidate messages"),
        ("parallel.cand_suppressed", "candidates suppressed at source"),
        ("parallel.handoffs", "cross-shard handoffs"),
        ("parallel.steals", "work steals"),
        ("parallel.shard_balance", "shard balance (min/max work)"),
    ):
        data = metrics.get(name)
        if data is None:
            continue
        value = data.get("value")
        if isinstance(value, float):
            value = round(value, 4)
        rows.append((label, value))
    for name, label in (
        ("parallel.merge_overlap_s", "merge overlapped with run (s)"),
        ("parallel.merge_tail_s", "merge tail after quiescence (s)"),
    ):
        data = metrics.get(name)
        if data is None:
            continue
        rows.append((label, round(data.get("total_s", 0.0), 6)))
    return "<h2>Interconnect</h2>" + _table(
        ("series", "value"), rows, numeric=(1,)
    )


def _metrics_section(metrics: dict | None) -> str:
    if not metrics:
        return ("<h2>Metrics</h2><p>No metrics dump supplied "
                "(<code>repro explore --metrics-out</code>).</p>")
    by_type: dict[str, list] = {}
    for name in sorted(metrics):
        data = metrics[name]
        by_type.setdefault(data.get("type", "?"), []).append((name, data))
    parts = ["<h2>Metrics</h2>"]
    if "counter" in by_type:
        parts.append("<h3>Counters</h3>")
        parts.append(_table(
            ("name", "value"),
            [(n, d["value"]) for n, d in by_type["counter"]],
            numeric=(1,),
        ))
    if "gauge" in by_type:
        parts.append("<h3>Gauges</h3>")
        parts.append(_table(
            ("name", "value"),
            [(n, d["value"]) for n, d in by_type["gauge"]],
            numeric=(1,),
        ))
    if "histogram" in by_type:
        parts.append("<h3>Histograms</h3>")
        parts.append(_table(
            ("name", "count", "mean", "min", "max"),
            [
                (n, d["count"], round(d.get("mean", 0.0), 3),
                 d.get("min"), d.get("max"))
                for n, d in by_type["histogram"]
            ],
            numeric=(1, 2, 3, 4),
        ))
    if "timer" in by_type:
        parts.append("<h3>Timers</h3>")
        parts.append(_table(
            ("name", "count", "total s", "max s"),
            [
                (n, d["count"], round(d.get("total_s", 0.0), 6),
                 round(d.get("max_s", 0.0), 6))
                for n, d in by_type["timer"]
            ],
            numeric=(1, 2, 3),
        ))
    return "".join(parts)


def render_report(
    *,
    trace_records=None,
    metrics: dict | None = None,
    progress_frames=None,
    title: str = "repro run report",
) -> str:
    """Render the self-contained HTML run report.

    ``trace_records`` is a record sequence (e.g. from
    :func:`~repro.trace.sinks.read_trace`); ``metrics`` is a registry
    snapshot dict (``MetricsRegistry.snapshot()``);
    ``progress_frames`` is a frame sequence (e.g. from
    :func:`repro.progress.read_frames`).  Any may be omitted; the
    corresponding sections degrade to a note or disappear.
    """
    records = list(trace_records) if trace_records is not None else []
    spans = _span_aggregates(records)
    body = [
        f"<h1>{_esc(title)}</h1>",
        f'<p class="meta">trace schema <code>{_esc(SCHEMA_VERSION)}</code>'
        f" &middot; {len(records)} records &middot; "
        f"{sum(r[1] for r in spans)} spans</p>",
        _dropped_spans_warning(metrics),
        _outcome_section(records),
        _escalation_section(records),
        _witness_section(records),
        _schedules_section(records, metrics),
        _progress_section(progress_frames or []),
    ]
    if spans:
        body.append("<h2>Span timings</h2>")
        body.append(_table(
            ("span", "count", "total", "mean", "max"),
            spans,
            numeric=(1, 2, 3, 4),
        ))
    body.append(_event_section(records))
    body.append(_cache_section(metrics))
    body.append(_interconnect_section(metrics))
    body.append(_metrics_section(metrics))
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_STYLE}</style></head>\n"
        "<body>\n" + "\n".join(p for p in body if p) + "\n</body></html>\n"
    )
