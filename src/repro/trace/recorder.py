"""The observer that attaches a tracer to the exploration engine.

Mirrors :class:`repro.metrics.MetricsObserver`: put a
:class:`TraceRecorder` in ``explore(observers=...)`` and the engine
notices the attached :class:`~repro.trace.tracer.Tracer` (duck-typed on
the ``tracer`` attribute, the way the registry is duck-typed on
``registry``) and turns on span/event recording in its hot paths.
Without one, no tracer exists and every instrumentation site is a
single ``is not None`` test.
"""

from __future__ import annotations

from repro.explore.observers import Observer
from repro.trace.sinks import ListSink, RingBufferSink
from repro.trace.tracer import Tracer


class TraceRecorder(Observer):
    """Holds the tracer the engine records into.

    With no arguments, records into a bounded in-memory ring
    (:class:`~repro.trace.sinks.RingBufferSink`); pass ``capacity=None``
    for an unbounded :class:`~repro.trace.sinks.ListSink`, or a
    pre-built :class:`Tracer` to control the sinks entirely (e.g. a
    streaming :class:`~repro.trace.sinks.JsonlFileSink`).

    The observer callbacks are deliberately no-ops: the engine records
    spans itself, at sites an observer cannot see (closure loops,
    scatter/gather, checkpoint writes).
    """

    def __init__(
        self,
        tracer: Tracer | None = None,
        *,
        capacity: int | None = 65536,
        record_wall: bool = True,
    ) -> None:
        if tracer is None:
            sink = ListSink() if capacity is None else RingBufferSink(capacity)
            tracer = Tracer(sink, record_wall=record_wall)
        self.tracer = tracer

    def records(self) -> list[dict]:
        """Everything recorded so far, from the first sink that keeps
        records (ring and list sinks do; a file sink does not)."""
        for sink in self.tracer.sinks:
            getter = getattr(sink, "records", None)
            if getter is not None:
                return getter()
        return []


def attached_tracer(observers) -> Tracer | None:
    """The tracer of the first observer exposing one, or None — how the
    engine decides whether to record spans and events."""
    for ob in observers:
        tracer = getattr(ob, "tracer", None)
        if tracer is not None:
            return tracer
    return None
