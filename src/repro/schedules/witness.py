"""Checked counterexamples: turn a witness into a verified schedule.

A ``witness.found`` trace event used to carry a step listing extracted
from the graph and nothing else — nothing ever ran it.  This module
closes the loop: the witness path is canonicalized into a
:class:`~repro.schedules.canonical.Schedule`, replayed through the
interpreter, and the final configuration is checked against both the
explorer-recorded digest *and* the witness predicate itself (the
deadlock really deadlocks, the fault really faults, the outcome's
globals really hold).  Only then is the schedule emitted.
"""

from __future__ import annotations

from repro.analyses.witness import Witness
from repro.explore.graph import DEADLOCK, FAULT, TERMINATED
from repro.schedules.canonical import Schedule, _edge_event, canonicalize
from repro.schedules.replay import replay_schedule
from repro.semantics.config import Config, stable_digest
from repro.util.errors import ScheduleError


def witness_schedule(result, witness: Witness) -> Schedule:
    """Canonical schedule for *witness*'s path (not yet verified)."""
    graph = result.graph
    events = [_edge_event(graph.edges[e]) for e in witness.eids]
    return Schedule(
        steps=canonicalize(events),
        terminal=witness.target,
        status=graph.terminal.get(witness.target, "interior"),
        final_digest=stable_digest(graph.configs[witness.target]),
    )


def verified_witness_schedule(
    result, witness: Witness, kind: str, **globals_values: int
) -> Schedule:
    """Build, replay, and predicate-check the schedule for *witness*.

    *kind* is ``"deadlock"``, ``"fault"``, or ``"outcome"`` (the latter
    checks termination with the given global values).  Raises
    :class:`ScheduleError` unless the replayed final configuration both
    matches the recorded digest and satisfies the predicate — the trace
    event this feeds is a *checked* counterexample.
    """
    schedule = witness_schedule(result, witness)
    final = replay_schedule(
        result.program, schedule, opts=result.options.step
    )
    digest = stable_digest(final)
    if digest != schedule.final_digest:
        raise ScheduleError(
            f"witness replay reached digest {digest:#018x}, explorer "
            f"recorded {schedule.final_digest:#018x}"
        )
    check_predicate(result.program, final, kind, **globals_values)
    return schedule


def check_predicate(
    program, config: Config, kind: str, **globals_values: int
) -> None:
    """Assert the witness predicate on a concrete configuration."""
    if kind == FAULT:
        if config.fault is None:
            raise ScheduleError(
                "witness replay ended without a fault (predicate does "
                "not hold on the replayed configuration)"
            )
        return
    if kind == DEADLOCK:
        if config.fault is not None:
            raise ScheduleError(
                f"witness replay faulted ({config.fault}) instead of "
                "deadlocking"
            )
        if config.is_terminated:
            raise ScheduleError(
                "witness replay terminated instead of deadlocking"
            )
        if _any_enabled(program, config):
            raise ScheduleError(
                "witness replay ended in a non-deadlocked configuration "
                "(some process is still enabled)"
            )
        return
    if kind == "outcome" or kind == TERMINATED:
        if not config.is_terminated:
            raise ScheduleError(
                "witness replay did not terminate (outcome predicates "
                "require a terminating execution)"
            )
        for name, value in globals_values.items():
            got = config.globals[program.global_index(name)]
            if got != value:
                raise ScheduleError(
                    f"witness replay terminated with {name}={got}, "
                    f"predicate requires {name}={value}"
                )
        return
    raise ScheduleError(f"unknown witness kind {kind!r}")


def _any_enabled(program, config: Config) -> bool:
    from repro.semantics.step import enabledness

    for proc in config.live_procs():
        enabled, _, _ = enabledness(program, config, proc)
        if enabled:
            return True
    return False
