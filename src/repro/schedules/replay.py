"""Replay: the correctness anchor of schedule generation.

A canonical schedule is only worth emitting if it is a *genuine*
execution: driving the interpreter with its pid sequence must execute
exactly the recorded action labels and land on exactly the terminal
configuration the explorer recorded (checked by ``stable_digest``).
Divergence raises :class:`ScheduleError` — never a silently wrong
schedule.

Two things make this non-trivial, and therefore worth checking:

- the canonical linearization *reorders* independent steps of the path
  the explorer actually walked, so replay exercises the claim that the
  dependence relation (shared with sleep sets) really captures
  commutability;
- coarsened edges replay action by action, so replay also re-checks
  block fusion against the small-step semantics.
"""

from __future__ import annotations

from repro.schedules.canonical import Schedule, ScheduleSet
from repro.semantics.config import Config, stable_digest
from repro.util.errors import ScheduleError


def replay_schedule(program, schedule: Schedule, *, opts=None) -> Config:
    """Drive the interpreter with *schedule*'s steps; return the final
    configuration.  :class:`ScheduleError` if a scheduled process is
    not enabled or executes a different statement than recorded."""
    from repro.semantics.config import initial_config
    from repro.semantics.step import StepOptions, enabledness, execute

    options = opts if opts is not None else StepOptions()
    config = initial_config(
        program, track_procstrings=options.track_procstrings
    )
    for step in schedule.steps:
        for label in step.labels:
            try:
                proc = config.proc(step.pid)
            except (KeyError, IndexError, StopIteration):
                raise ScheduleError(
                    f"replay divergence: no live process {step.pid} "
                    f"for step {label!r}"
                )
            enabled, _, _ = enabledness(program, config, proc)
            if not enabled:
                raise ScheduleError(
                    f"replay divergence: process {step.pid} not enabled "
                    f"at scheduled step {label!r}"
                )
            config, action = execute(program, config, proc, options)
            if action.label != label:
                raise ScheduleError(
                    f"replay divergence: scheduled {label!r}, "
                    f"executed {action.label!r}"
                )
    return config


def verify_schedule(program, schedule: Schedule, *, opts=None) -> Config:
    """Replay *schedule* and check it reaches the recorded terminal
    configuration digest.  Returns the final configuration."""
    final = replay_schedule(program, schedule, opts=opts)
    digest = stable_digest(final)
    if digest != schedule.final_digest:
        raise ScheduleError(
            "replay divergence: schedule reached configuration digest "
            f"{digest:#018x}, explorer recorded "
            f"{schedule.final_digest:#018x}"
        )
    return final


def verify_set(result, sset: ScheduleSet, *, metrics=None) -> int:
    """Verify every schedule of *sset* against *result*'s program and
    step semantics.  Returns the number of schedules replayed; raises
    :class:`ScheduleError` on the first divergence."""
    replayed = 0
    try:
        for schedule in sset.schedules:
            verify_schedule(
                result.program, schedule, opts=result.options.step
            )
            replayed += 1
    finally:
        if metrics is not None:
            metrics.set_gauge("schedules.replays", replayed)
            metrics.set_gauge(
                "schedules.replay_failures", len(sset.schedules) - replayed
            )
    return replayed
