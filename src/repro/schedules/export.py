"""Schedule-set serialization: scheduler scripts and Perfetto tracks.

``schedule_document`` is the *scheduler script* format — a plain-JSON
document a replayer (``repro schedules --replay``, or any external
harness) can execute against the program: each schedule is a pid/label
step list plus the terminal-configuration digest it must reach.  The
serialization is canonical (sorted keys, no wall-clock, no object ids),
so two generations of the same schedule set are byte-identical — the
differential suite compares these bytes across backends.

``schedule_trace_records`` bridges into the PR 4 trace subsystem: each
schedule becomes a run of span records (one span per scheduling step,
one track per schedule) that :func:`repro.trace.perfetto
.to_chrome_trace` renders as parallel tracks on ui.perfetto.dev.
"""

from __future__ import annotations

import json

from repro.schedules.canonical import (
    SCHEMA_VERSION,
    Schedule,
    ScheduleSet,
    ScheduleStep,
)
from repro.util.errors import ScheduleError


def schedule_document(sset: ScheduleSet) -> dict:
    """The JSON-able scheduler-script document for *sset*."""
    return {
        "schema": SCHEMA_VERSION,
        "policy": sset.policy,
        "classes": sset.num_classes,
        "paths": sset.num_paths,
        "graph_edges": sset.num_edges,
        "edges_covered": sset.edges_covered,
        "edge_coverage": sset.edge_coverage,
        "class_coverage": sset.class_coverage,
        "cycles_skipped": sset.cycles_skipped,
        "truncated": sset.truncated,
        "exhausted": sset.exhausted,
        "sample": sset.sample,
        "seed": sset.seed if sset.sample is not None else None,
        "schedules": [
            {
                "steps": [
                    {"pid": list(step.pid), "labels": list(step.labels)}
                    for step in schedule.steps
                ],
                "status": schedule.status,
                "final_digest": f"{schedule.final_digest:#018x}",
            }
            for schedule in sset.schedules
        ],
    }


def dumps_document(document: dict) -> str:
    """Canonical byte-stable serialization of a schedule document."""
    return json.dumps(document, indent=1, sort_keys=True) + "\n"


def write_schedules(path: str, sset: ScheduleSet) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dumps_document(schedule_document(sset)))


def schedules_from_document(document: dict) -> tuple[Schedule, ...]:
    """Rebuild replayable :class:`Schedule` objects from a scheduler
    script; :class:`ScheduleError` on anything malformed."""
    if not isinstance(document, dict):
        raise ScheduleError("schedule document must be a JSON object")
    schema = document.get("schema")
    if schema != SCHEMA_VERSION:
        raise ScheduleError(
            f"unsupported schedule schema {schema!r} "
            f"(want {SCHEMA_VERSION!r})"
        )
    out: list[Schedule] = []
    for i, entry in enumerate(document.get("schedules", [])):
        try:
            steps = tuple(
                ScheduleStep(
                    pid=tuple(step["pid"]), labels=tuple(step["labels"])
                )
                for step in entry["steps"]
            )
            digest = int(entry["final_digest"], 16)
            status = str(entry["status"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ScheduleError(f"schedule {i}: malformed entry ({exc})")
        out.append(
            Schedule(
                steps=steps, terminal=-1, status=status, final_digest=digest
            )
        )
    return tuple(out)


# --------------------------------------------------------------------------
# Perfetto
# --------------------------------------------------------------------------


def schedule_trace_records(sset: ScheduleSet, *, limit: int = 64) -> list:
    """Synthesize trace records (one track per schedule, one span per
    scheduling step) for the PR 4 Chrome-trace exporter.

    Timestamps are step indices — deterministic layout showing order,
    exactly like a wall-clock-stripped engine trace.  Tracks beyond
    *limit* schedules are dropped (Perfetto chokes on thousands); the
    document form keeps them all.
    """
    records: list[dict] = []
    seq = 0
    for k, schedule in enumerate(sset.schedules[:limit]):
        for i, step in enumerate(schedule.steps):
            pid = ".".join(map(str, step.pid))
            records.append(
                {
                    "kind": "span",
                    "seq": i,
                    "end_seq": i + 1,
                    "shard": k,
                    "name": f"t{pid}: " + ";".join(step.labels),
                    "args": {
                        "schedule": k,
                        "pid": pid,
                        "status": schedule.status,
                    },
                }
            )
            seq += 1
    return records


def write_schedule_perfetto(path: str, sset: ScheduleSet) -> None:
    """Export *sset* as a Chrome trace-event JSON for ui.perfetto.dev."""
    from repro.trace.perfetto import to_chrome_trace

    document = to_chrome_trace(schedule_trace_records(sset))
    # rename the synthesized tracks: shard-K is schedule K here
    for event in document["traceEvents"]:
        if event.get("ph") == "M" and event["name"] == "thread_name":
            tid = event["tid"]
            if tid > 0:
                event["args"]["name"] = f"schedule-{tid - 1}"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=1)
        fh.write("\n")
