"""Representative schedule generation (``repro schedules``).

The explorer's reduced graph already identifies equivalence classes of
interleavings; this package turns it into a **test-input generator**:
one canonical, replay-verified schedule per class, a seeded sampling
mode for spaces too large to exhaust, and exporters (scheduler scripts,
Perfetto tracks) for driving external harnesses.

    from repro.explore import explore
    from repro.schedules import generate, verify_set

    result = explore(program, "stubborn", sleep=True, coarsen=True)
    sset = generate(result)            # one schedule per class
    verify_set(result, sset)           # replay each to its digest
"""

from repro.schedules.canonical import (
    DEFAULT_MAX_PATHS,
    DEFAULT_MAX_SCHEDULES,
    SCHEMA_VERSION,
    Schedule,
    ScheduleSet,
    ScheduleStep,
    canonicalize,
    generate,
)
from repro.schedules.export import (
    dumps_document,
    schedule_document,
    schedule_trace_records,
    schedules_from_document,
    write_schedule_perfetto,
    write_schedules,
)
from repro.schedules.replay import replay_schedule, verify_schedule, verify_set
from repro.schedules.witness import (
    check_predicate,
    verified_witness_schedule,
    witness_schedule,
)
from repro.util.errors import ScheduleError

__all__ = [
    "DEFAULT_MAX_PATHS",
    "DEFAULT_MAX_SCHEDULES",
    "SCHEMA_VERSION",
    "Schedule",
    "ScheduleError",
    "ScheduleSet",
    "ScheduleStep",
    "canonicalize",
    "check_predicate",
    "dumps_document",
    "generate",
    "replay_schedule",
    "schedule_document",
    "schedule_trace_records",
    "schedules_from_document",
    "verified_witness_schedule",
    "verify_schedule",
    "verify_set",
    "witness_schedule",
    "write_schedule_perfetto",
    "write_schedules",
]
