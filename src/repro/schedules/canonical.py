"""Representative schedules: one canonical linearization per class.

The explorer's configuration graph contains *every* interleaving (of
the reduced search); most of them are pairwise equivalent — they differ
only in the order of independent steps and reach the same final
configuration.  Following Maarand & Uustalu (*Generating Representative
Executions*), this module quotients the set of complete executions by
Mazurkiewicz trace equivalence and emits exactly one **canonical**
linearization per equivalence class.

Events and dependence
    An event is one graph edge taken along a path — a single atomic
    action, or a coarsened block of actions of one process.  Two events
    are *dependent* iff they belong to the same process or their
    write/any access pairs intersect — byte-for-byte the relation
    sleep-set reduction commutes by (:func:`repro.explore.sleepsets
    .independent`), including the process pseudo-locations that make
    fork/join interactions dependent.

Canonical form
    The lexicographically least linearization of the path's induced
    partial order, by greedy selection: repeatedly emit the smallest
    ready event under the key ``(pid, labels)``.  Same-pid events are
    always dependent, hence never simultaneously ready, so the choice
    is unique and the result depends only on the equivalence class —
    two equivalent paths canonicalize to the identical step sequence.
    A schedule's step sequence fully determines its execution (the
    interpreter is deterministic given a pid order), which is what the
    replay harness (:mod:`repro.schedules.replay`) checks.

Enumeration and sampling
    Complete executions are the acyclic ``initial → terminal`` paths of
    the graph (a path revisiting a configuration has an equivalent
    shorter completion; busy-wait cycles are skipped and counted).
    Exhaustive mode walks them in deterministic edge order; sampling
    mode (``sample=N, seed=S``) walks them in a seeded shuffled order
    **without replacement**, keeping the first ``N`` distinct classes.
    Sampling is therefore bit-deterministic per seed, always a subset
    of the exhaustive class set, monotone in ``N``, and — because the
    walk is exhaustive-in-the-limit — reaches class coverage 1.0
    whenever ``N`` is at least the class count.  (Independent random
    walks *with* replacement guarantee none of these.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.explore.explorer import ExploreResult
from repro.explore.graph import ConfigGraph
from repro.semantics.config import stable_digest
from repro.util.errors import ScheduleError

#: Version of the schedule-set document layout (see
#: :func:`repro.schedules.export.schedule_document`).
SCHEMA_VERSION = "repro.schedules/1"

#: Default enumeration budgets — generous for the corpus, explicit
#: truncation accounting (never a silent cap) beyond them.
DEFAULT_MAX_PATHS = 200_000
DEFAULT_MAX_SCHEDULES = 20_000


@dataclass(frozen=True)
class ScheduleStep:
    """One scheduling decision: run *pid* for the actions in *labels*
    (one label normally, several for a coarsened block)."""

    pid: tuple[int, ...]
    labels: tuple[str, ...]

    def key(self) -> tuple:
        return (self.pid, self.labels)


@dataclass(frozen=True)
class Schedule:
    """A replayable canonical execution.

    ``steps`` drive the interpreter deterministically from the initial
    configuration; ``final_digest`` is the :func:`stable_digest` of the
    terminal configuration the explorer recorded for this class — the
    replay harness must land exactly there.
    """

    steps: tuple[ScheduleStep, ...]
    #: terminal configuration id in the source graph
    terminal: int
    #: terminal status: "terminated" | "deadlock" | "fault"
    status: str
    #: ``stable_digest`` of the terminal configuration
    final_digest: int

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def num_actions(self) -> int:
        return sum(len(s.labels) for s in self.steps)

    def describe(self) -> str:
        lines = []
        i = 1
        for step in self.steps:
            pid = ".".join(map(str, step.pid))
            for label in step.labels:
                lines.append(f"  {i:3d}. thread {pid}: {label}")
                i += 1
        return "\n".join(lines)


@dataclass
class ScheduleSet:
    """The output of :func:`generate`: one canonical schedule per
    discovered equivalence class, plus honest coverage accounting."""

    schedules: tuple[Schedule, ...]
    #: policy description of the source exploration
    policy: str
    #: complete acyclic paths enumerated (several per class in an
    #: unreduced graph)
    num_paths: int
    #: edges of the source graph
    num_edges: int
    #: distinct edges lying on at least one enumerated path
    edges_covered: int
    #: True when enumeration stopped at a budget (max_paths /
    #: max_schedules) instead of exhausting the path space
    truncated: bool
    #: cycle-closing edges skipped during enumeration (busy-wait loops)
    cycles_skipped: int
    #: sampling parameters (None / 0 for exhaustive mode)
    sample: int | None = None
    seed: int = 0
    #: True when the enumeration visited every acyclic complete path —
    #: in sampling mode this proves the class set is complete
    exhausted: bool = True

    @property
    def num_classes(self) -> int:
        return len(self.schedules)

    @property
    def edge_coverage(self) -> float:
        """Fraction of reduced-graph edges on some emitted path."""
        return self.edges_covered / self.num_edges if self.num_edges else 1.0

    @property
    def class_coverage(self) -> float | None:
        """Fraction of equivalence classes hit — exact (1.0) when the
        walk exhausted the path space, unknowable (None) when a sampling
        budget stopped it early."""
        return 1.0 if self.exhausted else None

    def keys(self) -> tuple[tuple, ...]:
        """Canonical identity of the set: the per-class step keys, in
        emission order.  Byte-identical across backends and runs."""
        return tuple(
            tuple(step.key() for step in s.steps) for s in self.schedules
        )


# --------------------------------------------------------------------------
# dependence and canonicalization
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class _Event:
    """A path step with the data canonicalization needs."""

    pid: tuple
    labels: tuple
    reads: frozenset
    writes: frozenset


def _dependent(a: _Event, b: _Event) -> bool:
    """Mirror of :func:`repro.explore.sleepsets.independent`, negated:
    same process, or write/any intersection in either direction."""
    if a.pid == b.pid:
        return True
    if a.writes & (b.writes | b.reads):
        return True
    if b.writes & a.reads:
        return True
    return False


def canonicalize(events: list[_Event]) -> tuple[ScheduleStep, ...]:
    """Lexicographically least linearization of the trace of *events*.

    Greedy: among events whose dependence predecessors have all been
    emitted, emit the one with the least ``(pid, labels)`` key.  Events
    with equal keys share a pid, are therefore pairwise dependent, and
    never tie — the linearization is unique per equivalence class.
    """
    n = len(events)
    preds = [0] * n
    succs: list[list[int]] = [[] for _ in range(n)]
    for j in range(n):
        ej = events[j]
        for i in range(j):
            if _dependent(events[i], ej):
                succs[i].append(j)
                preds[j] += 1
    ready = [i for i in range(n) if preds[i] == 0]
    out: list[ScheduleStep] = []
    while ready:
        best = min(ready, key=lambda i: (events[i].pid, events[i].labels))
        ready.remove(best)
        ev = events[best]
        out.append(ScheduleStep(pid=ev.pid, labels=ev.labels))
        for j in succs[best]:
            preds[j] -= 1
            if preds[j] == 0:
                ready.append(j)
    return tuple(out)


def _edge_event(edge) -> _Event:
    return _Event(
        pid=edge.pid,
        labels=edge.labels,
        reads=frozenset(edge.reads),
        writes=frozenset(edge.writes),
    )


# --------------------------------------------------------------------------
# path enumeration
# --------------------------------------------------------------------------


class _Walk:
    """Iterative DFS over the acyclic complete paths of a graph.

    Yields ``(eids, terminal_cid)`` per complete path, in deterministic
    edge order — or, with an ``rng``, in a seeded shuffled order (the
    without-replacement sampling walk).
    """

    def __init__(self, graph: ConfigGraph, rng: random.Random | None):
        self.graph = graph
        self.rng = rng
        self.cycles_skipped = 0

    def _order(self, eids: list[int]) -> list[int]:
        if self.rng is None or len(eids) < 2:
            return list(eids)
        out = list(eids)
        self.rng.shuffle(out)
        return out

    def paths(self):
        graph = self.graph
        path: list[int] = []
        on_path = {graph.initial}
        # stack of iterators over the remaining out-edges per level
        stack = [iter(self._order(graph.out_edges.get(graph.initial, [])))]
        if graph.initial in graph.terminal:
            yield [], graph.initial
        while stack:
            eid = next(stack[-1], None)
            if eid is None:
                stack.pop()
                if path:
                    on_path.discard(graph.edges[path.pop()].dst)
                continue
            dst = graph.edges[eid].dst
            if dst in on_path:
                self.cycles_skipped += 1
                continue
            path.append(eid)
            on_path.add(dst)
            if dst in graph.terminal:
                yield list(path), dst
                on_path.discard(dst)
                path.pop()
                continue
            stack.append(iter(self._order(graph.out_edges.get(dst, []))))


# --------------------------------------------------------------------------
# generation
# --------------------------------------------------------------------------


def generate(
    result: ExploreResult,
    *,
    sample: int | None = None,
    seed: int = 0,
    max_paths: int = DEFAULT_MAX_PATHS,
    max_schedules: int = DEFAULT_MAX_SCHEDULES,
    metrics=None,
    progress=None,
) -> ScheduleSet:
    """Enumerate one canonical schedule per equivalence class of
    *result*'s graph.

    Exhaustive by default; with ``sample=N`` the walk order is seeded
    by ``seed`` and stops after ``N`` distinct classes.  Truncated
    explorations are rejected (:class:`ScheduleError`) — their graph is
    not the reduced state space, so the class set would be arbitrary.

    *progress* is an optional :class:`repro.progress.ProgressEmitter`
    fed ``schedules`` frames at its own cadence during the walk.
    """
    stats = result.stats
    if stats.truncated:
        raise ScheduleError(
            "cannot generate schedules from a truncated exploration "
            f"(reason: {stats.truncation_reason or 'budget'}); raise the "
            "budget or use --sample on a completed reduced search"
        )
    if sample is not None and sample < 1:
        raise ScheduleError(f"sample must be >= 1, got {sample}")
    if max_paths < 1 or max_schedules < 1:
        raise ScheduleError("max_paths and max_schedules must be >= 1")

    graph = result.graph
    rng = random.Random(seed) if sample is not None else None
    walk = _Walk(graph, rng)
    target = sample if sample is not None else max_schedules

    seen: dict[tuple, None] = {}
    schedules: list[Schedule] = []
    covered: set[int] = set()
    num_paths = 0
    truncated = False
    exhausted = True
    for eids, terminal in walk.paths():
        if num_paths >= max_paths:
            truncated = True
            exhausted = False
            break
        if len(schedules) >= target:
            # the requested sample is complete; stopping at the
            # max_schedules cap in exhaustive mode is a real truncation
            truncated = sample is None
            exhausted = False
            break
        num_paths += 1
        if progress is not None and progress.due():
            progress.emit(
                "schedules",
                paths=num_paths,
                classes=len(schedules),
                edges_covered=len(covered),
            )
        steps = canonicalize([_edge_event(graph.edges[e]) for e in eids])
        key = tuple(s.key() for s in steps)
        if key in seen:
            continue
        seen[key] = None
        covered.update(eids)
        schedules.append(
            Schedule(
                steps=steps,
                terminal=terminal,
                status=graph.terminal[terminal],
                final_digest=stable_digest(graph.configs[terminal]),
            )
        )

    sset = ScheduleSet(
        schedules=tuple(schedules),
        # reduction policy only, not the "@jN" backend suffix: the
        # schedule set is backend-independent (the differential suite
        # byte-compares documents across serial and parallel runs)
        policy=result.options.describe().split("@", 1)[0],
        num_paths=num_paths,
        num_edges=graph.num_edges,
        edges_covered=len(covered),
        truncated=truncated,
        cycles_skipped=walk.cycles_skipped,
        sample=sample,
        seed=seed,
        exhausted=exhausted,
    )
    if metrics is not None:
        _report(metrics, sset)
    return sset


def _report(metrics, sset: ScheduleSet) -> None:
    """Publish the ``schedules.*`` series (metrics schema /5)."""
    metrics.set_gauge("schedules.classes", sset.num_classes)
    metrics.set_gauge("schedules.paths", sset.num_paths)
    metrics.set_gauge("schedules.edges_covered", sset.edges_covered)
    metrics.set_gauge("schedules.edge_coverage", sset.edge_coverage)
    if sset.class_coverage is not None:
        metrics.set_gauge("schedules.class_coverage", sset.class_coverage)
    metrics.set_gauge("schedules.cycles_skipped", sset.cycles_skipped)
    metrics.set_gauge("schedules.truncated", int(sset.truncated))
    if sset.sample is not None:
        metrics.set_gauge("schedules.sample", sset.sample)
        metrics.set_gauge("schedules.seed", sset.seed)
