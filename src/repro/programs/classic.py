"""Classic shared-variable synchronization algorithms.

The paper's introduction motivates the whole framework with exactly
these: models that prohibit interaction through shared variables
"can not program some important classes of algorithms, such as mutual
exclusion or shared variable synchronization".  This module provides
them as analyzable programs — the framework must *verify* them
(exploration proves the mutual-exclusion assertion can never fail)
rather than reject them.

``assume`` models busy-waiting at the semantic level (a blocked guard);
the spelled-out spin-loop variants exist for the constprop/LICM
experiments.
"""

from __future__ import annotations

from repro.lang import Program, parse_program


def peterson() -> Program:
    """Peterson's two-process mutual exclusion.

    Each process raises its flag, yields the turn, and waits until the
    peer is out or the turn came back.  ``incrit`` counts processes in
    the critical section; the assertion is the mutual-exclusion
    invariant — exploration must find **no** fault.
    """
    return parse_program(
        """
        var flag0 = 0; var flag1 = 0; var turn = 0;
        var incrit = 0; var done0 = 0; var done1 = 0;
        func main() {
            cobegin
            {
                p0f: flag0 = 1;
                p0t: turn = 1;
                p0w: assume(flag1 == 0 || turn == 0);
                p0e: incrit = incrit + 1;
                p0a: assert(incrit == 1);
                p0x: incrit = incrit - 1;
                p0r: flag0 = 0;
                p0d: done0 = 1;
            }
            {
                p1f: flag1 = 1;
                p1t: turn = 0;
                p1w: assume(flag0 == 0 || turn == 1);
                p1e: incrit = incrit + 1;
                p1a: assert(incrit == 1);
                p1x: incrit = incrit - 1;
                p1r: flag1 = 0;
                p1d: done1 = 1;
            }
        }
        """
    )


def peterson_broken() -> Program:
    """Peterson with the turn assignment dropped — the classic bug: both
    processes can enter together.  Exploration must find the assertion
    violation (a fault configuration)."""
    return parse_program(
        """
        var flag0 = 0; var flag1 = 0;
        var incrit = 0;
        func main() {
            cobegin
            {
                q0f: flag0 = 1;
                q0w: assume(flag1 == 0 || flag0 == 1);
                q0e: incrit = incrit + 1;
                q0a: assert(incrit == 1);
                q0x: incrit = incrit - 1;
                q0r: flag0 = 0;
            }
            {
                q1f: flag1 = 1;
                q1w: assume(flag0 == 0 || flag1 == 1);
                q1e: incrit = incrit + 1;
                q1a: assert(incrit == 1);
                q1x: incrit = incrit - 1;
                q1r: flag1 = 0;
            }
        }
        """
    )


def producer_consumer(items: int = 2) -> Program:
    """One-slot bounded buffer: the producer waits for the slot to be
    empty, the consumer for it to be full.  Exactly one outcome: the
    consumer accumulates 1 + 2 + ... + items."""
    if items < 1:
        raise ValueError("need at least one item")
    lines = [
        "var buf = 0; var full = 0; var out = 0;",
        "func main() {",
        "    cobegin",
    ]
    prod = ["var i = 1;", f"while (i <= {items}) {{"]
    prod.append("pw: assume(full == 0);")
    prod.append("pb: buf = i;")
    prod.append("pf: full = 1;")
    prod.append("i = i + 1;")
    prod.append("}")
    lines.append("    { " + " ".join(prod) + " }")
    cons = ["var j = 1;", f"while (j <= {items}) {{"]
    cons.append("cw: assume(full == 1);")
    cons.append("cb: out = out + buf;")
    cons.append("cf: full = 0;")
    cons.append("j = j + 1;")
    cons.append("}")
    lines.append("    { " + " ".join(cons) + " }")
    lines.append("}")
    return parse_program("\n".join(lines))


def barrier(threads: int = 2) -> Program:
    """A counting barrier: every thread increments the arrival count
    under a lock, waits for all to arrive, then does its post-barrier
    work.  Nobody's post-work may precede anyone's pre-work."""
    if threads < 2:
        raise ValueError("need at least two threads")
    lines = [
        "var lock = 0; var arrived = 0;",
    ]
    for t in range(threads):
        lines.append(f"var pre{t} = 0; var post{t} = 0;")
    lines.append("func main() {")
    lines.append("    cobegin")
    for t in range(threads):
        body = [
            f"b{t}p: pre{t} = 1;",
            f"b{t}l: acquire(lock);",
            f"b{t}c: arrived = arrived + 1;",
            f"b{t}u: release(lock);",
            f"b{t}w: assume(arrived == {threads});",
        ]
        for o in range(threads):
            body.append(f"b{t}a{o}: assert(pre{o} == 1);")
        body.append(f"b{t}q: post{t} = 1;")
        lines.append("    { " + " ".join(body) + " }")
    lines.append("}")
    return parse_program("\n".join(lines))
