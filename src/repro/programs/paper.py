"""The worked examples of the paper, as library programs.

Each function returns a compiled :class:`~repro.lang.program.Program`.
Statement labels follow the paper's (``s1`` .. ``s4`` etc.) so analysis
output can be compared against the text directly.
"""

from __future__ import annotations

from repro.lang import Program, parse_program

# --------------------------------------------------------------------------
# Example 1 / Figure 2 — the Shasha–Snir segments [SS88]
# --------------------------------------------------------------------------


def fig2_shasha_snir() -> Program:
    """Two concurrent straight-line segments sharing A and B.

    Under sequential consistency exactly three of the four value pairs
    for (x, y) are reachable; the fourth appears only if a compiler
    reorders the independent-looking statements of a segment (the
    paper's motivating example).
    """
    return parse_program(
        """
        var A = 0; var B = 0; var x = 0; var y = 0;
        func main() {
            cobegin
            { s1: A = 1; s2: y = B; }
            { s3: B = 1; s4: x = A; }
        }
        """
    )


def fig2_reordered() -> Program:
    """The same segments after an (unsafe) sequential-compiler swap of
    segment 1's independent-looking statements — used to show the extra,
    SC-illegal outcome."""
    return parse_program(
        """
        var A = 0; var B = 0; var x = 0; var y = 0;
        func main() {
            cobegin
            { s2: y = B; s1: A = 1; }
            { s3: B = 1; s4: x = A; }
        }
        """
    )


# --------------------------------------------------------------------------
# Intro — the busy-wait that naive constant propagation breaks
# --------------------------------------------------------------------------


def intro_busywait() -> Program:
    """A thread spin-waits on a shared flag set by its sibling.

    A *sequential* constant propagator concludes ``s`` is the constant 0
    inside the loop and hoists the load — the intended busy-waiting never
    succeeds (the paper's introduction, the ``load r0,s`` example).  The
    interference-aware analysis must keep ``s`` non-constant at the loop
    head, and must see that ``r`` always ends up 42.
    """
    return parse_program(
        """
        var s = 0; var x = 0; var r = 0;
        func main() {
            cobegin
            { w1: x = 42; w2: s = 1; }
            { l1: assume(s != 0); r1: r = x; }
        }
        """
    )


def intro_busywait_loop() -> Program:
    """Busy-wait spelled as an actual loop (same shape, bigger space)."""
    return parse_program(
        """
        var s = 0; var x = 0; var r = 0;
        func main() {
            cobegin
            { w1: x = 42; w2: s = 1; }
            { l1: while (s == 0) { l2: skip; } r1: r = x; }
        }
        """
    )


# --------------------------------------------------------------------------
# Figure 3 — configurations that differ only in data (folding target)
# --------------------------------------------------------------------------


def fig3_folding() -> Program:
    """One branch's control depends on a racy read: the concrete graph
    grows distinct configurations ("dangling links") that the Taylor
    concurrency-state abstraction folds into one (§6.1)."""
    return parse_program(
        """
        var a = 0; var b = 0;
        func main() {
            cobegin
            { c1: if (b == 0) { a1: a = 1; } else { a2: a = 2; } }
            { b1: b = 1; }
        }
        """
    )


# --------------------------------------------------------------------------
# Figure 5 — locality: mostly-local threads, one shared accumulator
# --------------------------------------------------------------------------


def fig5_locality() -> Program:
    """Two threads doing local arithmetic with a single shared update
    each.  Stubborn sets + virtual coarsening shrink the configuration
    space to a handful of configurations (the paper's Figure 5(b) shows
    13) while producing exactly the same result configurations."""
    return parse_program(
        """
        var s = 0;
        func main() {
            cobegin
            {
                var t1 = 0;
                p1: t1 = t1 + 1;
                p2: t1 = t1 * 2;
                p3: t1 = t1 + 3;
                p4: s = s + t1;
            }
            {
                var t2 = 0;
                q1: t2 = t2 + 5;
                q2: t2 = t2 * 2;
                q3: t2 = t2 + 1;
                q4: s = s + t2;
            }
        }
        """
    )


# --------------------------------------------------------------------------
# Example 8 / §7 figure — pointers and heap objects b1, b2
# --------------------------------------------------------------------------


def example8_pointers() -> Program:
    """The malloc/pointer program of Example 8 (§7's two-thread layout).

    Thread 1 allocates object *b1* (site ``s1``) and writes through
    ``y``; thread 2 allocates *b2* (site ``s3``) and copies ``*y`` into
    ``*x``.  b1 is accessed by both threads (it must live at a shared
    memory level); b2 only by thread 2 (it can be thread-local) — the
    paper's §5.3/§7 memory-placement conclusion.  The ``assume`` keeps
    thread 2 from dereferencing ``y`` before it points anywhere.
    """
    return parse_program(
        """
        var x = 0; var y = 0;
        func main() {
            cobegin
            { s1: y = malloc(1); s2: *y = 10; }
            { s3: x = malloc(1); w1: assume(y != 0); s4: *x = *y; }
        }
        """
    )


def example8_sequential() -> Program:
    """Example 8's four statements run sequentially (the paper's
    original listing) — used by the dependence unit tests."""
    return parse_program(
        """
        var x = 0; var y = 0;
        func main() {
            s1: y = malloc(1);
            s2: *y = 10;
            s3: x = malloc(1);
            s4: *x = *y;
        }
        """
    )


# --------------------------------------------------------------------------
# Example 15 / Figure 8 — further parallelization of procedure calls
# --------------------------------------------------------------------------


def example15_calls() -> Program:
    """Figure 8: the Shasha–Snir segments with assignments replaced by
    function calls.  The analysis must find the dependence pairs
    (s1, s4) and (s2, s3) — and nothing else — enabling the further
    parallelization discussed in Example 15."""
    return parse_program(
        """
        var g1 = 0; var g2 = 0; var g3 = 0; var g4 = 0;
        func f1() { u1: g1 = g1 + 1; }
        func f2() { u2: g2 = 2; }
        func f3() { u3: g4 = g2 + 1; }
        func f4() { u4: g1 = g1 * 2; }
        func main() {
            cobegin
            { s1: f1(); s2: f2(); }
            { s3: f3(); s4: f4(); }
        }
        """
    )


# --------------------------------------------------------------------------
# §7 — memory management / deallocation lists
# --------------------------------------------------------------------------


def lifetime_extents() -> Program:
    """Objects with different extents: one dies inside its creating
    function, one escapes to the caller, one escapes to a sibling
    thread.  Exercises §5.3 lifetimes and the §7 deallocation-list and
    placement applications."""
    return parse_program(
        """
        var shared_cell = 0; var out = 0;
        func local_use() {
            var p = 0;
            m1: p = malloc(1);
            t1: *p = 7;
            t2: out = *p;
        }
        func escaper() {
            var q = 0;
            m2: q = malloc(1);
            t3: *q = 1;
            r1: return q;
        }
        func main() {
            var h = 0;
            c1: local_use();
            c2: h = escaper();
            t4: out = out + *h;
            cobegin
            { m3: shared_cell = malloc(1); t5: *shared_cell = 3; }
            { w1: assume(shared_cell != 0); t6: out = out + *shared_cell; }
        }
        """
    )


# --------------------------------------------------------------------------
# locks / synchronization shapes used across tests and benches
# --------------------------------------------------------------------------


def mutex_counter() -> Program:
    """Two threads incrementing a shared counter under a lock: exactly
    one result configuration (count == 2), no races on the counter."""
    return parse_program(
        """
        var lock = 0; var count = 0;
        func main() {
            cobegin
            { a1: acquire(lock); a2: count = count + 1; a3: release(lock); }
            { b1: acquire(lock); b2: count = count + 1; b3: release(lock); }
        }
        """
    )


def racy_counter() -> Program:
    """The same counter without the lock: the classic lost-update race,
    count ends as 1 or 2."""
    return parse_program(
        """
        var count = 0;
        func main() {
            cobegin
            { var t1 = 0; a1: t1 = count; a2: count = t1 + 1; }
            { var t2 = 0; b1: t2 = count; b2: count = t2 + 1; }
        }
        """
    )


def deadlock_pair() -> Program:
    """Two locks taken in opposite orders: some interleavings deadlock —
    result configurations include genuine deadlocks, which every
    reduction must preserve."""
    return parse_program(
        """
        var la = 0; var lb = 0; var done = 0;
        func main() {
            cobegin
            { a1: acquire(la); a2: acquire(lb); a3: release(lb); a4: release(la); }
            { b1: acquire(lb); b2: acquire(la); b3: release(la); b4: release(lb); }
            done = 1;
        }
        """
    )


def nested_cobegin() -> Program:
    """Nested parallelism: a branch spawns its own cobegin (§4 allows
    arbitrary nesting)."""
    return parse_program(
        """
        var total = 0;
        func main() {
            cobegin
            {
                cobegin
                { i1: total = total + 1; }
                { i2: total = total + 10; }
            }
            { o1: total = total + 100; }
        }
        """
    )


def firstclass_functions() -> Program:
    """First-class function values: the callee is chosen through a
    variable at run time (§4's feature list)."""
    return parse_program(
        """
        var r = 0; var which = 0;
        func inc(v) { return v + 1; }
        func dbl(v) { return v * 2; }
        func main() {
            var f = 0;
            if (which == 0) { f = inc; } else { f = dbl; }
            r = f(10);
        }
        """
    )
