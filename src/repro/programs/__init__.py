"""Program corpus: the paper's examples plus benchmark workloads."""

from repro.programs import paper, philosophers, synthetic
from repro.programs.corpus import CORPUS, corpus_programs

__all__ = ["paper", "philosophers", "synthetic", "CORPUS", "corpus_programs"]
