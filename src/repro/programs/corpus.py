"""A named corpus of small programs used across tests and benchmarks."""

from __future__ import annotations

from typing import Callable

from repro.lang import Program
from repro.programs import paper
from repro.programs.classic import (
    barrier,
    peterson,
    peterson_broken,
    producer_consumer,
)
from repro.programs.philosophers import philosophers, philosophers_ordered
from repro.programs.synthetic import (
    chain_of_updates,
    identical_tasks,
    local_heavy,
    sharing_sweep,
)

#: name -> zero-argument constructor.  Every entry terminates quickly
#: under full exploration (bounded state spaces).
CORPUS: dict[str, Callable[[], Program]] = {
    "fig2_shasha_snir": paper.fig2_shasha_snir,
    "fig2_reordered": paper.fig2_reordered,
    "intro_busywait": paper.intro_busywait,
    "intro_busywait_loop": paper.intro_busywait_loop,
    "fig3_folding": paper.fig3_folding,
    "fig5_locality": paper.fig5_locality,
    "example8_pointers": paper.example8_pointers,
    "example8_sequential": paper.example8_sequential,
    "example15_calls": paper.example15_calls,
    "lifetime_extents": paper.lifetime_extents,
    "mutex_counter": paper.mutex_counter,
    "racy_counter": paper.racy_counter,
    "deadlock_pair": paper.deadlock_pair,
    "nested_cobegin": paper.nested_cobegin,
    "firstclass_functions": paper.firstclass_functions,
    "peterson": peterson,
    "peterson_broken": peterson_broken,
    "producer_consumer_2": lambda: producer_consumer(2),
    "barrier_2": lambda: barrier(2),
    "philosophers_3": lambda: philosophers(3),
    "philosophers_ordered_3": lambda: philosophers_ordered(3),
    "identical_tasks_3": lambda: identical_tasks(3),
    "chain_3": lambda: chain_of_updates(3),
    "local_heavy_2x4": lambda: local_heavy(2, 4),
    "sharing_sparse": lambda: sharing_sweep(2, 6, 3),
    "sharing_dense": lambda: sharing_sweep(2, 4, 1, distinct_shared=False),
}


def corpus_programs() -> list[tuple[str, Program]]:
    """Compile the whole corpus (deterministic order)."""
    return [(name, make()) for name, make in CORPUS.items()]
