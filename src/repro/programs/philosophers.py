"""Dining philosophers — the paper's state-space scaling workload.

§2.2 (citing [Val88]): "the state space for n dining philosophers is
reduced from exponential to quadratic in n" by stubborn sets.  Each fork
is a global lock; philosopher *i* acquires fork *i* then fork
*(i+1) mod n*, eats (a thread-local step, as in the classic net), and
releases both.  The circular-wait deadlock is reachable — and must
remain reachable under every reduction.

``shared_tally=True`` adds a global meal counter touched by every
philosopher; it densifies the conflict graph and largely defeats the
reduction — the benchmark's ablation knob for the paper's "power of the
method depends on sharing sparsity" remark.
"""

from __future__ import annotations

from repro.lang import Program, parse_program


def philosophers_source(
    n: int, *, meals: int = 1, shared_tally: bool = False
) -> str:
    """Source text for *n* dining philosophers (``meals`` rounds each)."""
    if n < 2:
        raise ValueError("need at least 2 philosophers")
    lines = []
    for i in range(n):
        lines.append(f"var fork{i} = 0;")
    if shared_tally:
        lines.append("var eaten = 0;")
    lines.append("func main() {")
    lines.append("    cobegin")
    for i in range(n):
        left = i
        right = (i + 1) % n
        body = [f"var meals{i} = 0;"]
        for m in range(meals):
            body.append(f"p{i}a{m}: acquire(fork{left});")
            body.append(f"p{i}b{m}: acquire(fork{right});")
            if shared_tally:
                body.append(f"p{i}e{m}: eaten = eaten + 1;")
            else:
                body.append(f"p{i}e{m}: meals{i} = meals{i} + 1;")
            body.append(f"p{i}r{m}: release(fork{right});")
            body.append(f"p{i}s{m}: release(fork{left});")
        lines.append("    { " + " ".join(body) + " }")
    lines.append("}")
    return "\n".join(lines)


def philosophers(n: int, *, meals: int = 1, shared_tally: bool = False) -> Program:
    """Compile the *n*-philosophers program."""
    return parse_program(philosophers_source(n, meals=meals, shared_tally=shared_tally))


def philosophers_ordered(n: int, *, meals: int = 1) -> Program:
    """Deadlock-free variant: the last philosopher picks forks in the
    opposite order (the classic resource-ordering fix).  Useful for
    checking that reductions preserve the *absence* of deadlock too."""
    if n < 2:
        raise ValueError("need at least 2 philosophers")
    lines = []
    for i in range(n):
        lines.append(f"var fork{i} = 0;")
    lines.append("func main() {")
    lines.append("    cobegin")
    for i in range(n):
        left, right = i, (i + 1) % n
        if i == n - 1:
            left, right = right, left
        body = [f"var meals{i} = 0;"]
        for m in range(meals):
            body.append(f"p{i}a{m}: acquire(fork{left});")
            body.append(f"p{i}b{m}: acquire(fork{right});")
            body.append(f"p{i}e{m}: meals{i} = meals{i} + 1;")
            body.append(f"p{i}r{m}: release(fork{right});")
            body.append(f"p{i}s{m}: release(fork{left});")
        lines.append("    { " + " ".join(body) + " }")
    lines.append("}")
    return parse_program("\n".join(lines))
