"""Parameterized synthetic workloads for the benchmark sweeps.

The paper's §2.2 "power of the method" claim: the cost of state-space
generation drops when shared accesses are rare and the shared variable
set is small.  These generators sweep exactly those knobs.
"""

from __future__ import annotations

import random

from repro.lang import Program, parse_program


def sharing_sweep(
    threads: int, steps: int, shared_every: int, *, distinct_shared: bool = True
) -> Program:
    """*threads* threads, each doing *steps* statements; every
    ``shared_every``-th statement touches a shared variable, the rest are
    thread-local arithmetic.

    With ``distinct_shared`` each thread gets its own shared counter
    that one neighbour also reads (a sparse conflict graph); otherwise
    all threads hammer one cell (a dense one).
    """
    if threads < 1 or steps < 1 or shared_every < 1:
        raise ValueError("threads, steps, shared_every must be positive")
    lines = []
    nshared = threads if distinct_shared else 1
    for i in range(nshared):
        lines.append(f"var sh{i} = 0;")
    lines.append("func main() {")
    lines.append("    cobegin")
    for t in range(threads):
        body = [f"var t{t} = 0;"]
        for s in range(steps):
            if (s + 1) % shared_every == 0:
                cell = f"sh{t % nshared}" if distinct_shared else "sh0"
                neighbour = f"sh{(t + 1) % nshared}" if distinct_shared else "sh0"
                if s % (2 * shared_every) == shared_every - 1:
                    body.append(f"w{t}x{s}: {cell} = {cell} + 1;")
                else:
                    body.append(f"r{t}x{s}: t{t} = t{t} + {neighbour};")
            else:
                body.append(f"l{t}x{s}: t{t} = t{t} + 1;")
        lines.append("    { " + " ".join(body) + " }")
    lines.append("}")
    return parse_program("\n".join(lines))


def identical_tasks(n: int, *, steps: int = 3) -> Program:
    """*n* cobegin branches running the *same* code through the same
    function — McDowell's clan scenario (§6.2): the analysis need not
    distinguish the tasks, nor count how many sit at each point."""
    if n < 1:
        raise ValueError("need at least one task")
    lines = ["var total = 0;"]
    body = ["var acc = 0;"]
    for s in range(steps):
        body.append(f"acc = acc + {s + 1};")
    body.append("total = total + acc;")
    lines.append("func task() { " + " ".join(body) + " }")
    lines.append("func main() {")
    lines.append("    cobegin")
    for _ in range(n):
        lines.append("    { task(); }")
    lines.append("}")
    return parse_program("\n".join(lines))


def chain_of_updates(threads: int) -> Program:
    """A pipeline: thread i waits for stage i then publishes stage i+1.
    Fully ordered by synchronization — a best case for stubborn sets."""
    if threads < 1:
        raise ValueError("need at least one thread")
    lines = ["var stage = 0;"]
    lines.append("func main() {")
    lines.append("    cobegin")
    for t in range(threads):
        body = [
            f"c{t}w: assume(stage == {t});",
            f"c{t}p: stage = {t + 1};",
        ]
        lines.append("    { " + " ".join(body) + " }")
    lines.append("}")
    return parse_program("\n".join(lines))


def pointer_heavy(threads: int, steps: int) -> Program:
    """Each thread allocates its own heap object and works through a
    pointer; one shared publish at the end.  Points-to precision proves
    the dereferences disjoint — the ablation target for
    ``coarse_derefs`` (without points-to every deref conflicts with
    every site and the reduction collapses)."""
    if threads < 1 or steps < 1:
        raise ValueError("threads and steps must be positive")
    lines = ["var out = 0;"]
    for t in range(threads):
        lines.append(f"var p{t} = 0;")
    lines.append("func main() {")
    lines.append("    cobegin")
    for t in range(threads):
        body = [f"m{t}: p{t} = malloc(1);"]
        for s in range(steps):
            body.append(f"w{t}x{s}: *p{t} = *p{t} + 1;")
        body.append(f"pub{t}: out = out + *p{t};")
        lines.append("    { " + " ".join(body) + " }")
    lines.append("}")
    return parse_program("\n".join(lines))


#: globals shared by every :func:`random_program` instance
_RANDOM_GLOBALS = ("ga", "gb", "gc")
_RANDOM_LOCK = "lk"


def random_program_source(
    seed: int, *, max_branches: int = 3, max_stmts: int = 4
) -> str:
    """Source text of a seeded random cobegin program.

    Fully deterministic: the same *seed* always produces byte-identical
    source (``random.Random(seed)`` only — no wall clock, no global
    RNG), so differential failures replay exactly.  The statement
    grammar mirrors the hypothesis strategy of
    ``tests/properties/test_reduction_soundness.py`` — shared
    assignments, increments, copies, thread-local arithmetic, a
    lock-protected critical section, ``assume`` guards (which may
    deadlock: deadlocks are result configurations too), and one level
    of branching — while keeping every state space small and bounded
    (no loops).
    """
    rng = random.Random(seed)
    kinds = ("set", "inc", "copy", "local", "locked", "guard", "ite")

    def statement(t: int, depth: int = 0) -> str:
        kind = rng.choice(kinds[:4] if depth else kinds)
        g = rng.choice(_RANDOM_GLOBALS)
        h = rng.choice(_RANDOM_GLOBALS)
        c = rng.randint(0, 3)
        if kind == "set":
            return f"{g} = {c};"
        if kind == "inc":
            return f"{g} = {g} + 1;"
        if kind == "copy":
            return f"{g} = {h};"
        if kind == "local":
            return f"t{t} = t{t} + 1;"
        if kind == "locked":
            return (
                f"acquire({_RANDOM_LOCK}); {g} = {g} + 1; "
                f"release({_RANDOM_LOCK});"
            )
        if kind == "guard":
            return f"assume({g} >= {min(c, 2)});"
        assert kind == "ite"
        inner = statement(t, depth=1)
        return f"if ({g} == {c}) {{ {inner} }} else {{ skip; }}"

    lines = [f"var {g} = 0;" for g in _RANDOM_GLOBALS]
    lines.append(f"var {_RANDOM_LOCK} = 0;")
    lines.append("func main() {")
    lines.append("    cobegin")
    for t in range(rng.randint(2, max_branches)):
        body = [f"var t{t} = 0;"]
        for _ in range(rng.randint(1, max_stmts)):
            body.append(statement(t))
        lines.append("    { " + " ".join(body) + " }")
    lines.append("}")
    return "\n".join(lines)


def random_program(
    seed: int, *, max_branches: int = 3, max_stmts: int = 4
) -> Program:
    """Compile the seeded random program (see
    :func:`random_program_source`)."""
    return parse_program(
        random_program_source(
            seed, max_branches=max_branches, max_stmts=max_stmts
        )
    )


def local_heavy(threads: int, local_steps: int) -> Program:
    """Threads that are almost entirely local — the coarsening best
    case: each thread should collapse to ~2 blocks."""
    lines = ["var out = 0;"]
    lines.append("func main() {")
    lines.append("    cobegin")
    for t in range(threads):
        body = [f"var x{t} = 1;"]
        for s in range(local_steps):
            body.append(f"x{t} = x{t} + {s};")
        body.append(f"out = out + x{t};")
        lines.append("    { " + " ".join(body) + " }")
    lines.append("}")
    return parse_program("\n".join(lines))
