"""The compiled program container."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.lang.instructions import (
    FuncCode,
    IAlloc,
    ICobegin,
    Instr,
    LabelInfo,
)


@dataclass(frozen=True, eq=False)
class Program:
    """A fully compiled program, ready for interpretation/exploration.

    Attributes
    ----------
    funcs:
        Compiled function bodies by name.
    global_names:
        Globals-area layout; ``global_names[i]`` lives at offset ``i``.
    global_init:
        Initial values of the globals area (constant-folded).
    labels:
        Source metadata per statement label (program-wide unique).
    entry:
        The start function (``main``).
    """

    funcs: dict[str, FuncCode]
    global_names: tuple[str, ...]
    global_init: tuple[int, ...]
    labels: dict[str, LabelInfo]
    entry: str = "main"
    source: str | None = field(default=None, compare=False)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def instr_at(self, func: str, pc: int) -> Instr:
        return self.funcs[func].instrs[pc]

    def global_index(self, name: str) -> int:
        return self.global_names.index(name)

    @cached_property
    def sites(self) -> tuple[str, ...]:
        """All allocation sites (labels of ``malloc`` statements)."""
        out = []
        for fname in sorted(self.funcs):
            for ins in self.funcs[fname].instrs:
                if isinstance(ins, IAlloc):
                    out.append(ins.site)
        return tuple(out)

    @cached_property
    def label_of_pc(self) -> dict[tuple[str, int], str]:
        """Map (func, pc) -> statement label for labeled instructions."""
        return {(info.func, info.pc): lbl for lbl, info in self.labels.items()}

    @cached_property
    def max_cobegin_width(self) -> int:
        width = 0
        for fc in self.funcs.values():
            for ins in fc.instrs:
                if isinstance(ins, ICobegin):
                    width = max(width, len(ins.branch_targets))
        return width

    def num_instrs(self) -> int:
        return sum(len(fc.instrs) for fc in self.funcs.values())

    def disassemble(self) -> str:
        """Human-readable listing of the compiled program (debug aid)."""
        lines: list[str] = []
        lines.append("globals: " + ", ".join(
            f"{n}={v}" for n, v in zip(self.global_names, self.global_init)
        ))
        for fname in self.funcs:
            fc = self.funcs[fname]
            lines.append(f"func {fname} (params={fc.num_params}, locals={fc.num_locals}):")
            for pc, ins in enumerate(fc.instrs):
                lbl = f" [{ins.label}]" if ins.label else ""
                lines.append(f"  {pc:4d}: {type(ins).__name__}{lbl} {_operands(ins)}")
        return "\n".join(lines)


def _operands(ins: Instr) -> str:
    import dataclasses

    parts = []
    for f in dataclasses.fields(ins):
        if f.name in ("label", "line"):
            continue
        parts.append(f"{f.name}={getattr(ins, f.name)!r}")
    return " ".join(parts)
