"""Abstract syntax tree for the cobegin language.

The surface language is the C-style toy language of DESIGN.md §2/S1.  It
covers the semantic feature list of the paper's §4 (and [CH92]): nested
``cobegin`` parallelism, shared (global) variables, pointers and dynamic
allocation, procedures, and first-class function values.

All nodes are immutable dataclasses; ``line`` is the 1-based source line
(0 for programmatically built trees).  Statements carry an optional
user-written ``label`` (``s1: A = 1;``); the compiler generates labels for
unlabeled statements so that every atomic action is attributable.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expressions."""

    line: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class IntLit(Expr):
    """Integer literal (booleans are the literals 0/1)."""

    value: int = 0


@dataclass(frozen=True)
class Name(Expr):
    """A variable or function reference, resolved later by the resolver."""

    ident: str = ""


@dataclass(frozen=True)
class Deref(Expr):
    """``*base`` or ``base[index]`` — read through a pointer.

    ``*p`` is sugar for ``p[0]``.
    """

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class AddrOf(Expr):
    """``&g`` — the address of a *global* variable.

    Locals are process-private registers and are not addressable (see
    DESIGN.md S2); the resolver rejects ``&local``.
    """

    ident: str = ""


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operation: ``!`` (logical not) or ``-`` (negation)."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operation.

    Arithmetic: ``+ - * / %``; comparison: ``== != < <= > >=``;
    logical (short-circuit): ``&& ||``.
    """

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


# --------------------------------------------------------------------------
# L-values
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class LValue:
    """Base class for assignment targets."""

    line: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class NameLV(LValue):
    """``x = ...`` — a named variable (local or global, per the resolver)."""

    ident: str = ""


@dataclass(frozen=True)
class DerefLV(LValue):
    """``*base = ...`` or ``base[index] = ...`` — a store through a pointer."""

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    """Base class for statements."""

    line: int = field(default=0, kw_only=True)
    label: str | None = field(default=None, kw_only=True)


@dataclass(frozen=True)
class VarDecl(Stmt):
    """``var x;`` or ``var x = e;`` — a local declaration.

    At top level (outside any function) the same syntax declares a global.
    """

    ident: str = ""
    init: Expr | None = None


@dataclass(frozen=True)
class Assign(Stmt):
    """``lhs = expr;``"""

    target: LValue = None  # type: ignore[assignment]
    expr: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Malloc(Stmt):
    """``lhs = malloc(size);`` — heap allocation.

    The allocation site is identified by the statement's label, which the
    compiler guarantees to be unique program-wide.
    """

    target: LValue = None  # type: ignore[assignment]
    size: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class CallStmt(Stmt):
    """``f(args);`` or ``lhs = f(args);``.

    ``callee`` is an arbitrary expression: a function name, or a variable
    holding a first-class function value.
    """

    callee: Expr = None  # type: ignore[assignment]
    args: tuple[Expr, ...] = ()
    target: LValue | None = None


@dataclass(frozen=True)
class Return(Stmt):
    """``return;`` or ``return e;``"""

    expr: Expr | None = None


@dataclass(frozen=True)
class If(Stmt):
    """``if (cond) { ... } else { ... }``"""

    cond: Expr = None  # type: ignore[assignment]
    then_body: tuple[Stmt, ...] = ()
    else_body: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class While(Stmt):
    """``while (cond) { ... }``"""

    cond: Expr = None  # type: ignore[assignment]
    body: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class Cobegin(Stmt):
    """``cobegin { ... } { ... } ...`` — fork/join parallelism.

    One child process is spawned per branch; the parent blocks until all
    children terminate (``coend`` join).  Branches may be nested.  A
    branch may not reference enclosing *locals* (the resolver enforces
    this); interaction between siblings flows through globals and the
    heap, as in the paper's examples.
    """

    branches: tuple[tuple[Stmt, ...], ...] = ()


@dataclass(frozen=True)
class Assume(Stmt):
    """``assume(cond);`` — blocking guard: the statement is enabled only
    in states where ``cond`` is true.  Used to model synchronization
    (busy-waits, condition waits) at the semantic level."""

    cond: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Assert(Stmt):
    """``assert(cond);`` — faults the execution when ``cond`` is false."""

    cond: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Acquire(Stmt):
    """``acquire(l);`` — atomic test-and-set on global ``l``:
    enabled iff ``l == 0``, and then sets ``l = 1``."""

    ident: str = ""


@dataclass(frozen=True)
class Release(Stmt):
    """``release(l);`` — sets global ``l = 0``."""

    ident: str = ""


@dataclass(frozen=True)
class Skip(Stmt):
    """``skip;`` — a no-op atomic action (useful in benchmarks)."""


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FuncDef:
    """``func name(params) { body }``"""

    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    line: int = 0


@dataclass(frozen=True)
class ProgramAST:
    """A parsed program: global declarations plus function definitions.

    Execution starts at ``main()`` which must exist and take no
    parameters (checked by the resolver).
    """

    globals: tuple[VarDecl, ...]
    funcs: tuple[FuncDef, ...]

    def func(self, name: str) -> FuncDef:
        for f in self.funcs:
            if f.name == name:
                return f
        raise KeyError(name)
