"""Pretty-printer for the cobegin language AST.

``parse(pretty(ast))`` reproduces an equivalent AST (up to source
positions); the round-trip property is exercised by the test suite.
"""

from __future__ import annotations

from repro.lang import ast_nodes as A

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def pretty_expr(expr: A.Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, A.IntLit):
        return str(expr.value)
    if isinstance(expr, A.Name):
        return expr.ident
    if isinstance(expr, A.AddrOf):
        return f"&{expr.ident}"
    if isinstance(expr, A.Deref):
        if isinstance(expr.index, A.IntLit) and expr.index.value == 0:
            inner = pretty_expr(expr.base, 7)
            return f"*{inner}"
        return f"{pretty_expr(expr.base, 7)}[{pretty_expr(expr.index)}]"
    if isinstance(expr, A.Unary):
        return f"{expr.op}{pretty_expr(expr.operand, 7)}"
    if isinstance(expr, A.Binary):
        prec = _PRECEDENCE[expr.op]
        # left-associative: right child needs parens at equal precedence
        text = (
            f"{pretty_expr(expr.left, prec)} {expr.op} "
            f"{pretty_expr(expr.right, prec + 1)}"
        )
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"unknown expression node: {expr!r}")


def pretty_lvalue(lv: A.LValue) -> str:
    if isinstance(lv, A.NameLV):
        return lv.ident
    if isinstance(lv, A.DerefLV):
        if isinstance(lv.index, A.IntLit) and lv.index.value == 0:
            return f"*{pretty_expr(lv.base, 7)}"
        return f"{pretty_expr(lv.base, 7)}[{pretty_expr(lv.index)}]"
    raise TypeError(f"unknown lvalue node: {lv!r}")


def _label_prefix(stmt: A.Stmt) -> str:
    return f"{stmt.label}: " if stmt.label else ""


def pretty_stmt(stmt: A.Stmt, indent: int = 0) -> list[str]:
    """Render a statement as a list of indented source lines."""
    pad = "    " * indent
    lbl = _label_prefix(stmt)
    if isinstance(stmt, A.VarDecl):
        if stmt.init is not None:
            return [f"{pad}{lbl}var {stmt.ident} = {pretty_expr(stmt.init)};"]
        return [f"{pad}{lbl}var {stmt.ident};"]
    if isinstance(stmt, A.Assign):
        return [f"{pad}{lbl}{pretty_lvalue(stmt.target)} = {pretty_expr(stmt.expr)};"]
    if isinstance(stmt, A.Malloc):
        return [
            f"{pad}{lbl}{pretty_lvalue(stmt.target)} = malloc({pretty_expr(stmt.size)});"
        ]
    if isinstance(stmt, A.CallStmt):
        args = ", ".join(pretty_expr(a) for a in stmt.args)
        call = f"{pretty_expr(stmt.callee, 7)}({args})"
        if stmt.target is not None:
            return [f"{pad}{lbl}{pretty_lvalue(stmt.target)} = {call};"]
        return [f"{pad}{lbl}{call};"]
    if isinstance(stmt, A.Return):
        if stmt.expr is not None:
            return [f"{pad}{lbl}return {pretty_expr(stmt.expr)};"]
        return [f"{pad}{lbl}return;"]
    if isinstance(stmt, A.If):
        lines = [f"{pad}{lbl}if ({pretty_expr(stmt.cond)}) {{"]
        for s in stmt.then_body:
            lines.extend(pretty_stmt(s, indent + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for s in stmt.else_body:
                lines.extend(pretty_stmt(s, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, A.While):
        lines = [f"{pad}{lbl}while ({pretty_expr(stmt.cond)}) {{"]
        for s in stmt.body:
            lines.extend(pretty_stmt(s, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, A.Cobegin):
        lines = [f"{pad}{lbl}cobegin"]
        for branch in stmt.branches:
            lines.append(f"{pad}{{")
            for s in branch:
                lines.extend(pretty_stmt(s, indent + 1))
            lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, A.Assume):
        return [f"{pad}{lbl}assume({pretty_expr(stmt.cond)});"]
    if isinstance(stmt, A.Assert):
        return [f"{pad}{lbl}assert({pretty_expr(stmt.cond)});"]
    if isinstance(stmt, A.Acquire):
        return [f"{pad}{lbl}acquire({stmt.ident});"]
    if isinstance(stmt, A.Release):
        return [f"{pad}{lbl}release({stmt.ident});"]
    if isinstance(stmt, A.Skip):
        return [f"{pad}{lbl}skip;"]
    raise TypeError(f"unknown statement node: {stmt!r}")


def pretty_program(prog: A.ProgramAST) -> str:
    """Render a whole program as source text."""
    lines: list[str] = []
    for g in prog.globals:
        if g.init is not None:
            lines.append(f"var {g.ident} = {pretty_expr(g.init)};")
        else:
            lines.append(f"var {g.ident};")
    for f in prog.funcs:
        if lines:
            lines.append("")
        params = ", ".join(f.params)
        lines.append(f"func {f.name}({params}) {{")
        for s in f.body:
            lines.extend(pretty_stmt(s, 1))
        lines.append("}")
    return "\n".join(lines) + "\n"
