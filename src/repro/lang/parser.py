"""Recursive-descent parser for the cobegin language.

Grammar (EBNF)::

    program    := ( globaldecl | funcdef )*
    globaldecl := 'shared'? 'var' IDENT ( '=' expr )? ';'
    funcdef    := 'func' IDENT '(' [ IDENT (',' IDENT)* ] ')' block
    block      := '{' stmt* '}'
    stmt       := [ IDENT ':' ] basestmt
    basestmt   := 'var' IDENT ( '=' expr )? ';'
                | 'if' '(' expr ')' block [ 'else' ( block | ifstmt ) ]
                | 'while' '(' expr ')' block
                | 'cobegin' block+ [ 'coend' [';'] ]
                | 'return' [ expr ] ';'
                | 'assume' '(' expr ')' ';'
                | 'assert' '(' expr ')' ';'
                | 'acquire' '(' IDENT ')' ';'
                | 'release' '(' IDENT ')' ';'
                | 'skip' ';'
                | lvalue '=' 'malloc' '(' expr ')' ';'
                | lvalue '=' callexpr ';'
                | lvalue '=' expr ';'
                | callexpr ';'

Calls are *statements*, not expressions (each statement is one atomic
action of the semantics; a call is a control transfer).  The parser
accepts postfix call syntax while reading an expression and then rejects
calls in nested positions, producing a clear diagnostic.

Precedence, loosest to tightest: ``||``, ``&&``, equality, relational,
additive, multiplicative, unary (``! - * &``), postfix (``[i]``,
``(args)``), primary.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.lang import ast_nodes as A
from repro.lang.lexer import tokenize
from repro.lang.tokens import EOF, IDENT, INT, KEYWORD, OP, PUNCT, Token
from repro.util.errors import ParseError


@dataclass(frozen=True)
class _CallExpr(A.Expr):
    """Internal: postfix call parsed in expression position.

    Only legal as the whole RHS of an assignment or as a bare statement;
    the parser rejects it anywhere else.
    """

    callee: A.Expr = None  # type: ignore[assignment]
    args: tuple[A.Expr, ...] = ()


class Parser:
    """Single-use parser over a token stream."""

    def __init__(self, tokens: list[Token]):
        self._toks = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        return self._toks[min(self._pos + ahead, len(self._toks) - 1)]

    def _next(self) -> Token:
        tok = self._toks[self._pos]
        if tok.kind != EOF:
            self._pos += 1
        return tok

    def _check(self, kind: str, text: str | None = None) -> bool:
        tok = self._peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._next()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        tok = self._peek()
        if not self._check(kind, text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, found {tok.text or tok.kind!r}", tok.line, tok.col)
        return self._next()

    # ------------------------------------------------------------------
    # program structure
    # ------------------------------------------------------------------

    def parse_program(self) -> A.ProgramAST:
        globals_: list[A.VarDecl] = []
        funcs: list[A.FuncDef] = []
        while not self._check(EOF):
            if self._check(KEYWORD, "func"):
                funcs.append(self._funcdef())
            elif self._check(KEYWORD, "var") or self._check(KEYWORD, "shared"):
                globals_.append(self._globaldecl())
            else:
                tok = self._peek()
                raise ParseError(
                    f"expected 'var' or 'func' at top level, found {tok.text!r}",
                    tok.line,
                    tok.col,
                )
        return A.ProgramAST(globals=tuple(globals_), funcs=tuple(funcs))

    def _globaldecl(self) -> A.VarDecl:
        # 'shared' is accepted as documentation; sharing is inferred by
        # the analyses regardless.
        self._accept(KEYWORD, "shared")
        kw = self._expect(KEYWORD, "var")
        name = self._expect(IDENT)
        init = None
        if self._accept(OP, "="):
            init = self._expr()
        self._expect(PUNCT, ";")
        self._no_nested_calls(init)
        return A.VarDecl(ident=name.text, init=init, line=kw.line)

    def _funcdef(self) -> A.FuncDef:
        kw = self._expect(KEYWORD, "func")
        name = self._expect(IDENT)
        self._expect(PUNCT, "(")
        params: list[str] = []
        if not self._check(PUNCT, ")"):
            params.append(self._expect(IDENT).text)
            while self._accept(PUNCT, ","):
                params.append(self._expect(IDENT).text)
        self._expect(PUNCT, ")")
        body = self._block()
        return A.FuncDef(name=name.text, params=tuple(params), body=body, line=kw.line)

    def _block(self) -> tuple[A.Stmt, ...]:
        self._expect(PUNCT, "{")
        stmts: list[A.Stmt] = []
        while not self._check(PUNCT, "}"):
            stmts.append(self._stmt())
        self._expect(PUNCT, "}")
        return tuple(stmts)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _stmt(self) -> A.Stmt:
        label: str | None = None
        if self._check(IDENT) and self._peek(1).kind == PUNCT and self._peek(1).text == ":":
            label = self._next().text
            self._next()  # ':'
        stmt = self._basestmt()
        if label is not None:
            stmt = dataclasses.replace(stmt, label=label)
        return stmt

    def _basestmt(self) -> A.Stmt:
        tok = self._peek()
        if tok.kind == KEYWORD:
            handler = {
                "var": self._vardecl,
                "if": self._ifstmt,
                "while": self._whilestmt,
                "cobegin": self._cobeginstmt,
                "return": self._returnstmt,
                "assume": self._assumestmt,
                "assert": self._assertstmt,
                "acquire": self._acquirestmt,
                "release": self._releasestmt,
                "skip": self._skipstmt,
            }.get(tok.text)
            if handler is not None:
                return handler()
            raise ParseError(f"unexpected keyword {tok.text!r}", tok.line, tok.col)
        return self._exprstmt()

    def _vardecl(self) -> A.VarDecl:
        kw = self._expect(KEYWORD, "var")
        name = self._expect(IDENT)
        init = None
        if self._accept(OP, "="):
            init = self._expr()
            self._no_nested_calls(init)
        self._expect(PUNCT, ";")
        return A.VarDecl(ident=name.text, init=init, line=kw.line)

    def _ifstmt(self) -> A.If:
        kw = self._expect(KEYWORD, "if")
        self._expect(PUNCT, "(")
        cond = self._expr()
        self._no_nested_calls(cond)
        self._expect(PUNCT, ")")
        then_body = self._block()
        else_body: tuple[A.Stmt, ...] = ()
        if self._accept(KEYWORD, "else"):
            if self._check(KEYWORD, "if"):
                else_body = (self._ifstmt(),)
            else:
                else_body = self._block()
        return A.If(cond=cond, then_body=then_body, else_body=else_body, line=kw.line)

    def _whilestmt(self) -> A.While:
        kw = self._expect(KEYWORD, "while")
        self._expect(PUNCT, "(")
        cond = self._expr()
        self._no_nested_calls(cond)
        self._expect(PUNCT, ")")
        body = self._block()
        return A.While(cond=cond, body=body, line=kw.line)

    def _cobeginstmt(self) -> A.Cobegin:
        kw = self._expect(KEYWORD, "cobegin")
        branches: list[tuple[A.Stmt, ...]] = []
        while self._check(PUNCT, "{"):
            branches.append(self._block())
        if not branches:
            raise ParseError("cobegin needs at least one '{' branch", kw.line, kw.col)
        if self._accept(KEYWORD, "coend"):
            self._accept(PUNCT, ";")
        return A.Cobegin(branches=tuple(branches), line=kw.line)

    def _returnstmt(self) -> A.Return:
        kw = self._expect(KEYWORD, "return")
        expr = None
        if not self._check(PUNCT, ";"):
            expr = self._expr()
            self._no_nested_calls(expr)
        self._expect(PUNCT, ";")
        return A.Return(expr=expr, line=kw.line)

    def _assumestmt(self) -> A.Assume:
        kw = self._expect(KEYWORD, "assume")
        self._expect(PUNCT, "(")
        cond = self._expr()
        self._no_nested_calls(cond)
        self._expect(PUNCT, ")")
        self._expect(PUNCT, ";")
        return A.Assume(cond=cond, line=kw.line)

    def _assertstmt(self) -> A.Assert:
        kw = self._expect(KEYWORD, "assert")
        self._expect(PUNCT, "(")
        cond = self._expr()
        self._no_nested_calls(cond)
        self._expect(PUNCT, ")")
        self._expect(PUNCT, ";")
        return A.Assert(cond=cond, line=kw.line)

    def _acquirestmt(self) -> A.Acquire:
        kw = self._expect(KEYWORD, "acquire")
        self._expect(PUNCT, "(")
        name = self._expect(IDENT)
        self._expect(PUNCT, ")")
        self._expect(PUNCT, ";")
        return A.Acquire(ident=name.text, line=kw.line)

    def _releasestmt(self) -> A.Release:
        kw = self._expect(KEYWORD, "release")
        self._expect(PUNCT, "(")
        name = self._expect(IDENT)
        self._expect(PUNCT, ")")
        self._expect(PUNCT, ";")
        return A.Release(ident=name.text, line=kw.line)

    def _skipstmt(self) -> A.Skip:
        kw = self._expect(KEYWORD, "skip")
        self._expect(PUNCT, ";")
        return A.Skip(line=kw.line)

    def _exprstmt(self) -> A.Stmt:
        start = self._peek()
        lhs = self._expr()
        if self._accept(OP, "="):
            target = self._as_lvalue(lhs, start)
            if self._check(KEYWORD, "malloc"):
                self._next()
                self._expect(PUNCT, "(")
                size = self._expr()
                self._no_nested_calls(size)
                self._expect(PUNCT, ")")
                self._expect(PUNCT, ";")
                return A.Malloc(target=target, size=size, line=start.line)
            rhs = self._expr()
            self._expect(PUNCT, ";")
            if isinstance(rhs, _CallExpr):
                self._no_nested_calls(rhs.callee)
                for a in rhs.args:
                    self._no_nested_calls(a)
                return A.CallStmt(
                    callee=rhs.callee, args=rhs.args, target=target, line=start.line
                )
            self._no_nested_calls(rhs)
            return A.Assign(target=target, expr=rhs, line=start.line)
        # bare statement: must be a call
        self._expect(PUNCT, ";")
        if isinstance(lhs, _CallExpr):
            self._no_nested_calls(lhs.callee)
            for a in lhs.args:
                self._no_nested_calls(a)
            return A.CallStmt(callee=lhs.callee, args=lhs.args, target=None, line=start.line)
        raise ParseError("expression used as a statement (only calls may be)", start.line, start.col)

    def _as_lvalue(self, expr: A.Expr, tok: Token) -> A.LValue:
        if isinstance(expr, A.Name):
            return A.NameLV(ident=expr.ident, line=expr.line)
        if isinstance(expr, A.Deref):
            self._no_nested_calls(expr.base)
            self._no_nested_calls(expr.index)
            return A.DerefLV(base=expr.base, index=expr.index, line=expr.line)
        raise ParseError("invalid assignment target", tok.line, tok.col)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    _BINOP_LEVELS: tuple[tuple[str, ...], ...] = (
        ("||",),
        ("&&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def _expr(self) -> A.Expr:
        return self._binary(0)

    def _binary(self, level: int) -> A.Expr:
        if level >= len(self._BINOP_LEVELS):
            return self._unary()
        ops = self._BINOP_LEVELS[level]
        left = self._binary(level + 1)
        while self._peek().kind == OP and self._peek().text in ops:
            op = self._next()
            right = self._binary(level + 1)
            self._no_nested_calls(left)
            self._no_nested_calls(right)
            left = A.Binary(op=op.text, left=left, right=right, line=op.line)
        return left

    def _unary(self) -> A.Expr:
        tok = self._peek()
        if tok.kind == OP and tok.text in ("!", "-"):
            self._next()
            operand = self._unary()
            self._no_nested_calls(operand)
            if tok.text == "-" and isinstance(operand, A.IntLit):
                return A.IntLit(value=-operand.value, line=tok.line)
            return A.Unary(op=tok.text, operand=operand, line=tok.line)
        if tok.kind == OP and tok.text == "*":
            self._next()
            base = self._unary()
            self._no_nested_calls(base)
            return A.Deref(base=base, index=A.IntLit(value=0, line=tok.line), line=tok.line)
        if tok.kind == OP and tok.text == "&":
            self._next()
            name = self._expect(IDENT)
            return A.AddrOf(ident=name.text, line=tok.line)
        return self._postfix()

    def _postfix(self) -> A.Expr:
        expr = self._primary()
        while True:
            tok = self._peek()
            if tok.kind == PUNCT and tok.text == "[":
                self._next()
                index = self._expr()
                self._no_nested_calls(index)
                self._expect(PUNCT, "]")
                self._no_nested_calls(expr)
                expr = A.Deref(base=expr, index=index, line=tok.line)
            elif tok.kind == PUNCT and tok.text == "(":
                self._next()
                args: list[A.Expr] = []
                if not self._check(PUNCT, ")"):
                    args.append(self._expr())
                    while self._accept(PUNCT, ","):
                        args.append(self._expr())
                self._expect(PUNCT, ")")
                expr = _CallExpr(callee=expr, args=tuple(args), line=tok.line)
            else:
                return expr

    def _primary(self) -> A.Expr:
        tok = self._peek()
        if tok.kind == INT:
            self._next()
            return A.IntLit(value=int(tok.text), line=tok.line)
        if tok.kind == KEYWORD and tok.text in ("true", "false"):
            self._next()
            return A.IntLit(value=1 if tok.text == "true" else 0, line=tok.line)
        if tok.kind == IDENT:
            self._next()
            return A.Name(ident=tok.text, line=tok.line)
        if tok.kind == PUNCT and tok.text == "(":
            self._next()
            expr = self._expr()
            self._expect(PUNCT, ")")
            return expr
        raise ParseError(f"expected expression, found {tok.text or tok.kind!r}", tok.line, tok.col)

    def _no_nested_calls(self, expr: A.Expr | None) -> None:
        if isinstance(expr, _CallExpr):
            raise ParseError(
                "calls are statements, not expressions "
                "(write 'tmp = f(...); use tmp' instead)",
                expr.line,
                None,
            )


def parse(source: str) -> A.ProgramAST:
    """Parse *source* into a :class:`~repro.lang.ast_nodes.ProgramAST`."""
    return Parser(tokenize(source)).parse_program()
