"""Programmatic AST construction helpers.

A thin, readable layer over :mod:`repro.lang.ast_nodes` used by the
program corpus (:mod:`repro.programs`) and by the hypothesis random
program generator in the test suite.  Example::

    from repro.lang import builder as B

    prog = B.program(
        B.globals(A=0, B=0, x=0, y=0),
        B.func("main")(
            B.cobegin(
                [B.assign("A", 1, label="s1"), B.assign("y", B.var("B"), label="s2")],
                [B.assign("B", 1, label="s3"), B.assign("x", B.var("A"), label="s4")],
            ),
        ),
    )
"""

from __future__ import annotations

from repro.lang import ast_nodes as A

# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------


def const(v: int) -> A.IntLit:
    return A.IntLit(value=int(v))


def var(name: str) -> A.Name:
    return A.Name(ident=name)


def deref(base, index=0) -> A.Deref:
    return A.Deref(base=as_expr(base), index=as_expr(index))


def addrof(name: str) -> A.AddrOf:
    return A.AddrOf(ident=name)


def unary(op: str, operand) -> A.Unary:
    return A.Unary(op=op, operand=as_expr(operand))


def binop(op: str, left, right) -> A.Binary:
    return A.Binary(op=op, left=as_expr(left), right=as_expr(right))


def add(l, r):  # noqa: E743
    return binop("+", l, r)


def sub(l, r):
    return binop("-", l, r)


def mul(l, r):
    return binop("*", l, r)


def eq(l, r):
    return binop("==", l, r)


def ne(l, r):
    return binop("!=", l, r)


def lt(l, r):
    return binop("<", l, r)


def as_expr(x) -> A.Expr:
    """Coerce ints to literals and strings to variable references."""
    if isinstance(x, A.Expr):
        return x
    if isinstance(x, bool):
        return const(int(x))
    if isinstance(x, int):
        return const(x)
    if isinstance(x, str):
        return var(x)
    raise TypeError(f"cannot coerce {x!r} to an expression")


def as_lvalue(x) -> A.LValue:
    if isinstance(x, A.LValue):
        return x
    if isinstance(x, str):
        return A.NameLV(ident=x)
    if isinstance(x, A.Deref):
        return A.DerefLV(base=x.base, index=x.index)
    raise TypeError(f"cannot coerce {x!r} to an lvalue")


def store(base, index=0) -> A.DerefLV:
    """L-value ``base[index]`` (``*base`` when index is 0)."""
    return A.DerefLV(base=as_expr(base), index=as_expr(index))


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------


def decl(name: str, init=None, *, label: str | None = None) -> A.VarDecl:
    return A.VarDecl(
        ident=name, init=None if init is None else as_expr(init), label=label
    )


def assign(target, expr, *, label: str | None = None) -> A.Assign:
    return A.Assign(target=as_lvalue(target), expr=as_expr(expr), label=label)


def malloc(target, size=1, *, label: str | None = None) -> A.Malloc:
    return A.Malloc(target=as_lvalue(target), size=as_expr(size), label=label)


def call(callee, *args, target=None, label: str | None = None) -> A.CallStmt:
    return A.CallStmt(
        callee=as_expr(callee),
        args=tuple(as_expr(a) for a in args),
        target=None if target is None else as_lvalue(target),
        label=label,
    )


def ret(expr=None, *, label: str | None = None) -> A.Return:
    return A.Return(expr=None if expr is None else as_expr(expr), label=label)


def if_(cond, then_body, else_body=(), *, label: str | None = None) -> A.If:
    return A.If(
        cond=as_expr(cond),
        then_body=tuple(then_body),
        else_body=tuple(else_body),
        label=label,
    )


def while_(cond, body, *, label: str | None = None) -> A.While:
    return A.While(cond=as_expr(cond), body=tuple(body), label=label)


def cobegin(*branches, label: str | None = None) -> A.Cobegin:
    return A.Cobegin(branches=tuple(tuple(b) for b in branches), label=label)


def assume(cond, *, label: str | None = None) -> A.Assume:
    return A.Assume(cond=as_expr(cond), label=label)


def assert_(cond, *, label: str | None = None) -> A.Assert:
    return A.Assert(cond=as_expr(cond), label=label)


def acquire(name: str, *, label: str | None = None) -> A.Acquire:
    return A.Acquire(ident=name, label=label)


def release(name: str, *, label: str | None = None) -> A.Release:
    return A.Release(ident=name, label=label)


def skip(*, label: str | None = None) -> A.Skip:
    return A.Skip(label=label)


# --------------------------------------------------------------------------
# top level
# --------------------------------------------------------------------------


def globals(**names) -> tuple[A.VarDecl, ...]:  # noqa: A001 - deliberate DSL name
    """Global declarations with initial values: ``globals(A=0, B=1)``."""
    return tuple(A.VarDecl(ident=n, init=const(v)) for n, v in names.items())


class _FuncMaker:
    def __init__(self, name: str, params: tuple[str, ...]):
        self._name = name
        self._params = params

    def __call__(self, *body: A.Stmt) -> A.FuncDef:
        return A.FuncDef(name=self._name, params=self._params, body=tuple(body))


def func(name: str, *params: str) -> _FuncMaker:
    """``func("f", "a", "b")(stmt, ...)`` builds a function definition."""
    return _FuncMaker(name, tuple(params))


def program(*parts) -> A.ProgramAST:
    """Assemble globals tuples and function definitions into a program."""
    globs: list[A.VarDecl] = []
    funcs: list[A.FuncDef] = []
    for part in parts:
        if isinstance(part, A.FuncDef):
            funcs.append(part)
        elif isinstance(part, A.VarDecl):
            globs.append(part)
        elif isinstance(part, tuple):
            for item in part:
                if isinstance(item, A.VarDecl):
                    globs.append(item)
                elif isinstance(item, A.FuncDef):
                    funcs.append(item)
                else:
                    raise TypeError(f"unexpected program part: {item!r}")
        else:
            raise TypeError(f"unexpected program part: {part!r}")
    return A.ProgramAST(globals=tuple(globs), funcs=tuple(funcs))
