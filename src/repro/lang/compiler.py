"""AST-to-instruction compiler.

Turns a :class:`~repro.lang.ast_nodes.ProgramAST` into a
:class:`~repro.lang.program.Program`:

- resolves names (via :mod:`repro.lang.resolver`), classifying every
  reference as global / local / function value;
- flattens structured control flow into branch/jump instructions with
  backpatching;
- lays cobegin branches out inline in the enclosing function's code,
  each ending in :class:`~repro.lang.instructions.IThreadEnd`;
- assigns every statement a program-wide-unique label (user labels are
  validated, unlabeled statements get ``{func}#{n}``), which is also the
  allocation-site identity of ``malloc`` statements;
- constant-folds global initializers.
"""

from __future__ import annotations

from repro.lang import ast_nodes as A
from repro.lang.instructions import (
    FuncCode,
    IAcquire,
    IAlloc,
    IAssert,
    IAssign,
    IAssume,
    IBranch,
    ICall,
    ICobegin,
    IJump,
    IRelease,
    IReturn,
    ISkip,
    IThreadEnd,
    Instr,
    LabelInfo,
    LDeref,
    LGlobal,
    LLocal,
    RAddrGlobal,
    RBinary,
    RConst,
    RDeref,
    RExpr,
    RFunc,
    RGlobal,
    RLocal,
    RLValue,
    RUnary,
)
from repro.lang.parser import parse
from repro.lang.program import Program
from repro.lang.resolver import FuncBinding, GlobalBinding, LocalBinding, Scopes
from repro.util.errors import CompileError, ResolveError


def compile_source(source: str) -> Program:
    """Parse and compile *source* in one step."""
    prog = compile_ast(parse(source))
    object.__setattr__(prog, "source", source)
    return prog


def compile_ast(ast: A.ProgramAST) -> Program:
    """Compile a parsed program to the instruction IR."""
    return _ProgramCompiler(ast).compile()


# --------------------------------------------------------------------------


def _const_eval(expr: A.Expr) -> int:
    """Evaluate a constant expression (global initializers)."""
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.Unary):
        v = _const_eval(expr.operand)
        if expr.op == "-":
            return -v
        if expr.op == "!":
            return 0 if v else 1
    if isinstance(expr, A.Binary):
        lhs = _const_eval(expr.left)
        rhs = _const_eval(expr.right)
        return _apply_binop(expr.op, lhs, rhs, expr.line)
    raise ResolveError(
        "global initializers must be constant expressions", getattr(expr, "line", None)
    )


def _apply_binop(op: str, lhs: int, rhs: int, line: int) -> int:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if rhs == 0:
            raise ResolveError("division by zero in constant expression", line)
        return int(lhs / rhs) if (lhs < 0) != (rhs < 0) and lhs % rhs else lhs // rhs
    if op == "%":
        if rhs == 0:
            raise ResolveError("modulo by zero in constant expression", line)
        return lhs - rhs * int(lhs / rhs)
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    if op == "<":
        return int(lhs < rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == ">=":
        return int(lhs >= rhs)
    if op == "&&":
        return int(bool(lhs) and bool(rhs))
    if op == "||":
        return int(bool(lhs) or bool(rhs))
    raise ResolveError(f"unknown operator {op!r}", line)


class _ProgramCompiler:
    def __init__(self, ast: A.ProgramAST):
        self._ast = ast
        self._labels: dict[str, LabelInfo] = {}
        self._auto_label_counter: dict[str, int] = {}

    def compile(self) -> Program:
        ast = self._ast
        # globals
        global_names: list[str] = []
        global_init: list[int] = []
        global_indices: dict[str, int] = {}
        for decl in ast.globals:
            if decl.ident in global_indices:
                raise ResolveError(f"duplicate global {decl.ident!r}", decl.line)
            global_indices[decl.ident] = len(global_names)
            global_names.append(decl.ident)
            global_init.append(_const_eval(decl.init) if decl.init is not None else 0)
        # functions
        func_arities: dict[str, int] = {}
        for f in ast.funcs:
            if f.name in func_arities:
                raise ResolveError(f"duplicate function {f.name!r}", f.line)
            if f.name in global_indices:
                raise ResolveError(
                    f"{f.name!r} declared both as a global and a function", f.line
                )
            func_arities[f.name] = len(f.params)
        if "main" not in func_arities:
            raise ResolveError("program must define func main()")
        if func_arities["main"] != 0:
            raise ResolveError("func main() must take no parameters")

        funcs: dict[str, FuncCode] = {}
        for f in ast.funcs:
            funcs[f.name] = _FunctionCompiler(
                self, f, global_indices, func_arities
            ).compile()

        return Program(
            funcs=funcs,
            global_names=tuple(global_names),
            global_init=tuple(global_init),
            labels=self._labels,
            entry="main",
        )

    # -- label registry -------------------------------------------------

    def fresh_label(self, stmt: A.Stmt, func: str) -> str:
        if stmt.label is not None:
            if stmt.label in self._labels:
                raise CompileError(
                    f"duplicate statement label {stmt.label!r}", stmt.line
                )
            return stmt.label
        n = self._auto_label_counter.get(func, 0)
        self._auto_label_counter[func] = n + 1
        return f"{func}#{n}"

    def register_label(
        self, label: str, func: str, pc: int, kind: str, line: int
    ) -> None:
        if label in self._labels:
            raise CompileError(f"duplicate statement label {label!r}", line)
        self._labels[label] = LabelInfo(label=label, func=func, pc=pc, kind=kind, line=line)


class _FunctionCompiler:
    def __init__(
        self,
        owner: _ProgramCompiler,
        func: A.FuncDef,
        global_indices: dict[str, int],
        func_arities: dict[str, int],
    ):
        self._owner = owner
        self._func = func
        self._arities = func_arities
        self._scopes = Scopes(global_indices, func_arities, func.name)
        self._instrs: list[Instr] = []

    # -- emission helpers -------------------------------------------------

    def _emit(self, ins: Instr) -> int:
        pc = len(self._instrs)
        self._instrs.append(ins)
        return pc

    def _patch(self, pc: int, **fields: int | tuple[int, ...]) -> None:
        import dataclasses

        self._instrs[pc] = dataclasses.replace(self._instrs[pc], **fields)

    def _labelled(self, stmt: A.Stmt, kind: str) -> str:
        label = self._owner.fresh_label(stmt, self._func.name)
        self._owner.register_label(
            label, self._func.name, len(self._instrs), kind, stmt.line
        )
        return label

    # -- entry point ------------------------------------------------------

    def compile(self) -> FuncCode:
        f = self._func
        for p in f.params:
            self._scopes.declare_local(p, f.line)
        self._compile_body(f.body)
        # implicit return
        self._emit(IReturn(expr=None, label="", line=f.line))
        return FuncCode(
            name=f.name,
            num_params=len(f.params),
            num_locals=self._scopes.num_locals,
            local_names=tuple(self._scopes.local_names),
            instrs=tuple(self._instrs),
        )

    def _compile_body(self, body: tuple[A.Stmt, ...]) -> None:
        for stmt in body:
            self._compile_stmt(stmt)

    # -- statements ---------------------------------------------------------

    def _compile_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.VarDecl):
            binding = self._scopes.declare_local(stmt.ident, stmt.line)
            if stmt.init is not None:
                label = self._labelled(stmt, "IAssign")
                expr = self._expr(stmt.init)
                self._emit(
                    IAssign(
                        target=LLocal(slot=binding.slot, name=binding.name),
                        expr=expr,
                        label=label,
                        line=stmt.line,
                    )
                )
            return
        if isinstance(stmt, A.Assign):
            label = self._labelled(stmt, "IAssign")
            self._emit(
                IAssign(
                    target=self._lvalue(stmt.target),
                    expr=self._expr(stmt.expr),
                    label=label,
                    line=stmt.line,
                )
            )
            return
        if isinstance(stmt, A.Malloc):
            label = self._labelled(stmt, "IAlloc")
            self._emit(
                IAlloc(
                    target=self._lvalue(stmt.target),
                    size=self._expr(stmt.size),
                    site=label,
                    label=label,
                    line=stmt.line,
                )
            )
            return
        if isinstance(stmt, A.CallStmt):
            label = self._labelled(stmt, "ICall")
            callee = self._expr(stmt.callee)
            if isinstance(callee, RFunc):
                arity = self._arities[callee.name]
                if arity != len(stmt.args):
                    raise CompileError(
                        f"call to {callee.name!r} with {len(stmt.args)} args; "
                        f"expected {arity}",
                        stmt.line,
                    )
            self._emit(
                ICall(
                    target=self._lvalue(stmt.target) if stmt.target else None,
                    callee=callee,
                    args=tuple(self._expr(a) for a in stmt.args),
                    label=label,
                    line=stmt.line,
                )
            )
            return
        if isinstance(stmt, A.Return):
            if self._scopes.in_branch:
                raise CompileError(
                    "return inside a cobegin branch is not allowed "
                    "(branches terminate at their closing brace)",
                    stmt.line,
                )
            label = self._labelled(stmt, "IReturn")
            self._emit(
                IReturn(
                    expr=self._expr(stmt.expr) if stmt.expr is not None else None,
                    label=label,
                    line=stmt.line,
                )
            )
            return
        if isinstance(stmt, A.If):
            label = self._labelled(stmt, "IBranch")
            cond = self._expr(stmt.cond)
            branch_pc = self._emit(IBranch(cond=cond, label=label, line=stmt.line))
            self._scopes.push()
            self._compile_body(stmt.then_body)
            self._scopes.pop()
            if stmt.else_body:
                jump_pc = self._emit(IJump(line=stmt.line))
                else_start = len(self._instrs)
                self._scopes.push()
                self._compile_body(stmt.else_body)
                self._scopes.pop()
                end = len(self._instrs)
                self._patch(branch_pc, then_target=branch_pc + 1, else_target=else_start)
                self._patch(jump_pc, target=end)
            else:
                end = len(self._instrs)
                self._patch(branch_pc, then_target=branch_pc + 1, else_target=end)
            return
        if isinstance(stmt, A.While):
            label = self._labelled(stmt, "IBranch")
            cond = self._expr(stmt.cond)
            test_pc = self._emit(IBranch(cond=cond, label=label, line=stmt.line))
            self._scopes.push()
            self._compile_body(stmt.body)
            self._scopes.pop()
            self._emit(IJump(target=test_pc, line=stmt.line))
            end = len(self._instrs)
            self._patch(test_pc, then_target=test_pc + 1, else_target=end)
            return
        if isinstance(stmt, A.Cobegin):
            label = self._labelled(stmt, "ICobegin")
            cobegin_pc = self._emit(ICobegin(label=label, line=stmt.line))
            starts: list[int] = []
            for branch in stmt.branches:
                starts.append(len(self._instrs))
                self._scopes.push(thread_boundary=True)
                self._compile_body(branch)
                self._scopes.pop()
                self._emit(IThreadEnd(line=stmt.line))
            join = len(self._instrs)
            self._patch(cobegin_pc, branch_targets=tuple(starts), join_target=join)
            return
        if isinstance(stmt, A.Assume):
            label = self._labelled(stmt, "IAssume")
            self._emit(IAssume(cond=self._expr(stmt.cond), label=label, line=stmt.line))
            return
        if isinstance(stmt, A.Assert):
            label = self._labelled(stmt, "IAssert")
            self._emit(IAssert(cond=self._expr(stmt.cond), label=label, line=stmt.line))
            return
        if isinstance(stmt, A.Acquire):
            label = self._labelled(stmt, "IAcquire")
            binding = self._scopes.lookup_global(stmt.ident, stmt.line, what="acquire")
            self._emit(
                IAcquire(index=binding.index, name=binding.name, label=label, line=stmt.line)
            )
            return
        if isinstance(stmt, A.Release):
            label = self._labelled(stmt, "IRelease")
            binding = self._scopes.lookup_global(stmt.ident, stmt.line, what="release")
            self._emit(
                IRelease(index=binding.index, name=binding.name, label=label, line=stmt.line)
            )
            return
        if isinstance(stmt, A.Skip):
            label = self._labelled(stmt, "ISkip")
            self._emit(ISkip(label=label, line=stmt.line))
            return
        raise CompileError(f"unsupported statement: {type(stmt).__name__}", stmt.line)

    # -- operands -------------------------------------------------------

    def _lvalue(self, lv: A.LValue) -> RLValue:
        if isinstance(lv, A.NameLV):
            binding = self._scopes.lookup(lv.ident, lv.line)
            if isinstance(binding, LocalBinding):
                return LLocal(slot=binding.slot, name=binding.name)
            if isinstance(binding, GlobalBinding):
                return LGlobal(index=binding.index, name=binding.name)
            raise ResolveError(f"cannot assign to function {lv.ident!r}", lv.line)
        if isinstance(lv, A.DerefLV):
            return LDeref(base=self._expr(lv.base), index=self._expr(lv.index))
        raise CompileError(f"unsupported lvalue: {type(lv).__name__}", lv.line)

    def _expr(self, expr: A.Expr) -> RExpr:
        if isinstance(expr, A.IntLit):
            return RConst(value=expr.value)
        if isinstance(expr, A.Name):
            binding = self._scopes.lookup(expr.ident, expr.line)
            if isinstance(binding, LocalBinding):
                return RLocal(slot=binding.slot, name=binding.name)
            if isinstance(binding, GlobalBinding):
                return RGlobal(index=binding.index, name=binding.name)
            assert isinstance(binding, FuncBinding)
            return RFunc(name=binding.name)
        if isinstance(expr, A.Deref):
            return RDeref(base=self._expr(expr.base), index=self._expr(expr.index))
        if isinstance(expr, A.AddrOf):
            binding = self._scopes.lookup_global(expr.ident, expr.line, what="&")
            return RAddrGlobal(index=binding.index, name=binding.name)
        if isinstance(expr, A.Unary):
            return RUnary(op=expr.op, operand=self._expr(expr.operand))
        if isinstance(expr, A.Binary):
            return RBinary(op=expr.op, left=self._expr(expr.left), right=self._expr(expr.right))
        raise CompileError(f"unsupported expression: {type(expr).__name__}", getattr(expr, "line", 0))
