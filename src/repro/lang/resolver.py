"""Name resolution for the compiler.

Implements the scoping rules of DESIGN.md S1/S2:

- globals are declared at top level and visible everywhere;
- locals are lexically scoped within a function, with shadowing;
- **cobegin branches may not reference enclosing locals** — locals are
  process-private registers, so cross-process data flows exclusively
  through globals and the heap (which is what the paper's examples do).
  The resolver rejects a reference that would cross a thread boundary
  to reach a local, with a targeted diagnostic;
- a bare function name denotes a first-class function value when no
  variable shadows it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ResolveError


@dataclass(frozen=True)
class GlobalBinding:
    index: int
    name: str


@dataclass(frozen=True)
class LocalBinding:
    slot: int
    name: str


@dataclass(frozen=True)
class FuncBinding:
    name: str
    num_params: int


class Scopes:
    """Scope stack for one function body.

    Scopes are pushed for blocks; a scope pushed with
    ``is_thread_boundary=True`` marks the start of a cobegin branch.
    Lookups that would cross such a boundary into an outer *local*
    binding raise :class:`ResolveError`.
    """

    def __init__(
        self,
        global_indices: dict[str, int],
        func_arities: dict[str, int],
        func_name: str,
    ):
        self._globals = global_indices
        self._funcs = func_arities
        self._func_name = func_name
        # each entry: (bindings dict, is_thread_boundary)
        self._stack: list[tuple[dict[str, int], bool]] = [({}, False)]
        self._next_slot = 0
        self.local_names: list[str] = []

    # -- scope structure ------------------------------------------------

    def push(self, *, thread_boundary: bool = False) -> None:
        self._stack.append(({}, thread_boundary))

    def pop(self) -> None:
        self._stack.pop()

    @property
    def in_branch(self) -> bool:
        return any(boundary for _, boundary in self._stack)

    # -- declaration ----------------------------------------------------

    def declare_local(self, name: str, line: int) -> LocalBinding:
        scope, _ = self._stack[-1]
        if name in scope:
            raise ResolveError(f"duplicate declaration of {name!r} in the same scope", line)
        slot = self._next_slot
        self._next_slot += 1
        scope[name] = slot
        self.local_names.append(name)
        return LocalBinding(slot=slot, name=name)

    @property
    def num_locals(self) -> int:
        return self._next_slot

    # -- lookup ---------------------------------------------------------

    def lookup(self, name: str, line: int) -> GlobalBinding | LocalBinding | FuncBinding:
        crossed_boundary = False
        for bindings, boundary in reversed(self._stack):
            if name in bindings:
                if crossed_boundary:
                    raise ResolveError(
                        f"{name!r} is a local of the enclosing scope and may not be "
                        f"referenced inside a cobegin branch (locals are process-"
                        f"private; use a global or the heap to share data)",
                        line,
                    )
                return LocalBinding(slot=bindings[name], name=name)
            if boundary:
                crossed_boundary = True
        if name in self._globals:
            return GlobalBinding(index=self._globals[name], name=name)
        if name in self._funcs:
            return FuncBinding(name=name, num_params=self._funcs[name])
        raise ResolveError(f"undeclared name {name!r} (in function {self._func_name!r})", line)

    def lookup_global(self, name: str, line: int, *, what: str) -> GlobalBinding:
        binding = self.lookup(name, line)
        if not isinstance(binding, GlobalBinding):
            raise ResolveError(f"{what} requires a global variable, but {name!r} is not one", line)
        return binding
