"""The cobegin language front end: lexer, parser, AST, compiler, IR.

Public API:

- :func:`parse_program` — source text → compiled :class:`Program`
  (the common entry point);
- :func:`parse_ast` — source text → AST;
- :func:`compile_program` — AST → compiled :class:`Program`;
- :mod:`repro.lang.builder` — programmatic AST construction;
- :func:`pretty_program` — AST → source text (round-trips).
"""

from repro.lang.ast_nodes import ProgramAST
from repro.lang.compiler import compile_ast, compile_source
from repro.lang.parser import parse as parse_ast
from repro.lang.pretty import pretty_program
from repro.lang.program import Program


def parse_program(source: str) -> Program:
    """Parse and compile *source* into an executable :class:`Program`."""
    return compile_source(source)


def compile_program(ast: ProgramAST) -> Program:
    """Compile a (possibly programmatically built) AST."""
    return compile_ast(ast)


__all__ = [
    "Program",
    "ProgramAST",
    "parse_program",
    "parse_ast",
    "compile_program",
    "compile_ast",
    "compile_source",
    "pretty_program",
]
