"""Token definitions for the cobegin language lexer."""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds
INT = "INT"
IDENT = "IDENT"
KEYWORD = "KEYWORD"
OP = "OP"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "var",
        "shared",
        "func",
        "if",
        "else",
        "while",
        "cobegin",
        "coend",
        "return",
        "malloc",
        "assume",
        "assert",
        "acquire",
        "release",
        "skip",
        "true",
        "false",
    }
)

# Multi-character operators must be listed before their prefixes.
OPERATORS = (
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "!",
    "&",
    "=",
)

PUNCTUATION = ("(", ")", "{", "}", "[", "]", ";", ",", ":")


@dataclass(frozen=True)
class Token:
    """A lexical token with its source position."""

    kind: str
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # compact in error messages
        return f"{self.kind}({self.text!r})@{self.line}:{self.col}"
