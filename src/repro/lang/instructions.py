"""Flat instruction IR produced by the compiler.

Each function body compiles to a dense array of instructions with
explicit control flow (``pc`` indices into the array).  One instruction
is one **atomic action** of the concrete semantics — the granularity at
which interleavings are explored (the paper's transitions).  Virtual
coarsening (Observation 5) later fuses runs of instructions dynamically.

Operands are *resolved*: variable references have been classified as
globals (indices into the globals area) or locals (slots in the current
frame).  Locals are process-private registers; only globals and heap
cells can be shared, which is what makes read/write-set computation for
the stubborn-set algorithm exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# --------------------------------------------------------------------------
# Resolved expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RExpr:
    """Base class for resolved (compiled) expressions."""


@dataclass(frozen=True)
class RConst(RExpr):
    """Integer constant."""

    value: int


@dataclass(frozen=True)
class RGlobal(RExpr):
    """Read of global variable ``name`` at globals-area offset ``index``."""

    index: int
    name: str


@dataclass(frozen=True)
class RLocal(RExpr):
    """Read of frame-local slot ``slot`` (process-private)."""

    slot: int
    name: str


@dataclass(frozen=True)
class RDeref(RExpr):
    """Heap read ``base[index]`` (``*p`` is ``p[0]``)."""

    base: RExpr
    index: RExpr


@dataclass(frozen=True)
class RAddrGlobal(RExpr):
    """``&g`` — a pointer to the globals area at offset ``index``."""

    index: int
    name: str


@dataclass(frozen=True)
class RFunc(RExpr):
    """A first-class function value."""

    name: str


@dataclass(frozen=True)
class RUnary(RExpr):
    op: str
    operand: RExpr


@dataclass(frozen=True)
class RBinary(RExpr):
    op: str
    left: RExpr
    right: RExpr


# --------------------------------------------------------------------------
# Resolved l-values
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RLValue:
    """Base class for resolved assignment targets."""


@dataclass(frozen=True)
class LGlobal(RLValue):
    index: int
    name: str


@dataclass(frozen=True)
class LLocal(RLValue):
    slot: int
    name: str


@dataclass(frozen=True)
class LDeref(RLValue):
    base: RExpr
    index: RExpr


# --------------------------------------------------------------------------
# Instructions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Instr:
    """Base instruction.

    ``label`` names the source statement this instruction realizes (used
    by every client analysis); ``line`` is the source line.
    """

    label: str = field(default="", kw_only=True)
    line: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class IAssign(Instr):
    """``target = expr`` — evaluate and store, atomically."""

    target: RLValue = None  # type: ignore[assignment]
    expr: RExpr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class IAlloc(Instr):
    """``target = malloc(size)`` — allocate a fresh heap object.

    ``site`` is the allocation-site identifier (= the statement label),
    unique program-wide; it is the unit of heap abstraction.
    """

    target: RLValue = None  # type: ignore[assignment]
    size: RExpr = None  # type: ignore[assignment]
    site: str = ""


@dataclass(frozen=True)
class IJump(Instr):
    target: int = -1


@dataclass(frozen=True)
class IBranch(Instr):
    """Conditional branch on ``cond`` (nonzero = true)."""

    cond: RExpr = None  # type: ignore[assignment]
    then_target: int = -1
    else_target: int = -1


@dataclass(frozen=True)
class ICall(Instr):
    """Call ``callee(args)``; on return, the callee's result is stored to
    ``target`` (if any).  ``callee`` may be any expression evaluating to
    a function value (first-class functions)."""

    target: RLValue | None = None
    callee: RExpr = None  # type: ignore[assignment]
    args: tuple[RExpr, ...] = ()


@dataclass(frozen=True)
class IReturn(Instr):
    expr: RExpr | None = None


@dataclass(frozen=True)
class ICobegin(Instr):
    """Spawn one child process per branch entry point, then block until
    all children reach :class:`IThreadEnd`; resume at ``join_target``."""

    branch_targets: tuple[int, ...] = ()
    join_target: int = -1


@dataclass(frozen=True)
class IThreadEnd(Instr):
    """Terminates a cobegin branch (child process)."""


@dataclass(frozen=True)
class IAssume(Instr):
    """Blocking guard: enabled only when ``cond`` evaluates nonzero."""

    cond: RExpr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class IAssert(Instr):
    """Fault the execution when ``cond`` evaluates to zero."""

    cond: RExpr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class IAcquire(Instr):
    """Atomic test-and-set of global lock ``name``: enabled iff its value
    is 0; sets it to 1."""

    index: int = -1
    name: str = ""


@dataclass(frozen=True)
class IRelease(Instr):
    """Set global lock ``name`` to 0."""

    index: int = -1
    name: str = ""


@dataclass(frozen=True)
class ISkip(Instr):
    """No-op atomic action."""


# --------------------------------------------------------------------------
# Compiled units
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FuncCode:
    """A compiled function: instruction array plus frame layout."""

    name: str
    num_params: int
    num_locals: int  # includes params (slots 0..num_params-1)
    local_names: tuple[str, ...]
    instrs: tuple[Instr, ...]

    def __post_init__(self) -> None:
        assert self.num_params <= self.num_locals
        assert len(self.local_names) == self.num_locals


@dataclass(frozen=True)
class LabelInfo:
    """Source metadata for a statement label."""

    label: str
    func: str
    pc: int
    kind: str  # instruction class name, e.g. "IAssign"
    line: int
