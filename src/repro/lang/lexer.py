"""Hand-written lexer for the cobegin language.

Supports ``//`` line comments and ``/* ... */`` block comments, decimal
integer literals, identifiers, and the operators/punctuation listed in
:mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from repro.lang.tokens import (
    EOF,
    IDENT,
    INT,
    KEYWORD,
    KEYWORDS,
    OP,
    OPERATORS,
    PUNCT,
    PUNCTUATION,
    Token,
)
from repro.util.errors import LexError


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, returning tokens terminated by an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = source[i]
        # whitespace
        if c in " \t\r\n":
            advance(1)
            continue
        # comments
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise LexError("unterminated block comment", start_line, start_col)
            advance(2)
            continue
        # integer literal
        if c.isdigit():
            start = i
            start_line, start_col = line, col
            while i < n and source[i].isdigit():
                advance(1)
            if i < n and (source[i].isalpha() or source[i] == "_"):
                raise LexError(
                    f"identifier may not start with a digit: {source[start:i+1]!r}",
                    start_line,
                    start_col,
                )
            tokens.append(Token(INT, source[start:i], start_line, start_col))
            continue
        # identifier / keyword
        if c.isalpha() or c == "_":
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[start:i]
            kind = KEYWORD if text in KEYWORDS else IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        # operators (longest match first — OPERATORS is ordered)
        matched = False
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(OP, op, line, col))
                advance(len(op))
                matched = True
                break
        if matched:
            continue
        if c in PUNCTUATION:
            tokens.append(Token(PUNCT, c, line, col))
            advance(1)
            continue
        raise LexError(f"unexpected character {c!r}", line, col)

    tokens.append(Token(EOF, "", line, col))
    return tokens
