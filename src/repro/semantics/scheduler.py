"""Concrete execution under a scheduler.

Exploration enumerates *all* interleavings; sometimes you just want to
*run* a program — for testing the semantics, for demos, and for
differential testing against exploration (every scheduled run's outcome
must appear among the explored result configurations).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.lang.program import Program
from repro.semantics.config import Config, initial_config
from repro.semantics.step import ActionInfo, StepOptions, next_infos


@dataclass
class RunResult:
    """Outcome of one scheduled execution."""

    config: Config
    trace: list[ActionInfo] = field(default_factory=list)
    steps: int = 0
    deadlocked: bool = False

    @property
    def faulted(self) -> bool:
        return self.config.fault is not None

    @property
    def terminated(self) -> bool:
        return self.config.is_terminated

    def global_value(self, program: Program, name: str):
        return self.config.globals[program.global_index(name)]


def run_program(
    program: Program,
    *,
    scheduler: str = "roundrobin",
    seed: int = 0,
    max_steps: int = 100_000,
    opts: StepOptions = StepOptions(),
    keep_trace: bool = False,
) -> RunResult:
    """Execute *program* to completion under a scheduler.

    Parameters
    ----------
    scheduler:
        ``"roundrobin"`` rotates among enabled processes per step;
        ``"random"`` picks uniformly (seeded — runs are reproducible);
        ``"first"`` always picks the lowest pid (a depth-first run).
    max_steps:
        Step budget; exceeding it raises ``RuntimeError`` (the subject
        program probably diverges).
    """
    rng = random.Random(seed)
    config = initial_config(program, track_procstrings=opts.track_procstrings)
    result = RunResult(config=config)
    rr_index = 0
    while True:
        if config.fault is not None or config.is_terminated:
            result.config = config
            return result
        infos = [ni for ni in next_infos(program, config, opts) if ni.enabled]
        if not infos:
            result.config = config
            result.deadlocked = True
            return result
        if result.steps >= max_steps:
            raise RuntimeError(
                f"run exceeded {max_steps} steps (divergent program?)"
            )
        if scheduler == "random":
            choice = rng.choice(infos)
        elif scheduler == "first":
            choice = infos[0]
        elif scheduler == "roundrobin":
            choice = infos[rr_index % len(infos)]
            rr_index += 1
        else:
            raise ValueError(f"unknown scheduler {scheduler!r}")
        config = choice.succ
        result.steps += 1
        if keep_trace:
            result.trace.append(choice.action)
