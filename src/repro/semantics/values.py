"""Concrete runtime values.

The value universe of the language (paper §4's standard semantics):

- integers (booleans are 0/1);
- pointers — a heap object identity plus a cell offset; the globals area
  is addressable through the distinguished ``GLOBALS_OBJ`` identity
  (``&g`` yields a pointer into it);
- first-class function values.

Object identities are **canonical**: ``(site, k)`` where *site* is the
allocation-site label and *k* the smallest index not currently in use.
Two interleavings that allocate the same number of objects at a site
therefore produce identical identities, which is essential for merging
equal configurations during exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

# Object identity: (allocation-site label, instance index).
ObjId = tuple[str, int]

#: The pseudo-object that backs the globals area (targets of ``&g``).
GLOBALS_OBJ: ObjId = ("<globals>", 0)


@dataclass(frozen=True)
class Pointer:
    """A pointer to cell ``offset`` of object ``obj``."""

    obj: ObjId
    offset: int = 0

    def __repr__(self) -> str:
        site, k = self.obj
        return f"&{site}[{k}]+{self.offset}"


@dataclass(frozen=True)
class FuncRef:
    """A first-class function value."""

    name: str

    def __repr__(self) -> str:
        return f"<func {self.name}>"


Value = Union[int, Pointer, FuncRef]


def truthy(v: Value) -> bool:
    """Truth of a value: nonzero integers, any pointer, any function."""
    if isinstance(v, int):
        return v != 0
    return True


def is_int(v: Value) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


def show_value(v: Value) -> str:
    """Render a value for reports."""
    if isinstance(v, Pointer):
        return repr(v)
    if isinstance(v, FuncRef):
        return repr(v)
    return str(v)
