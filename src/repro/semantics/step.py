"""The atomic-step (transition) function of the concrete semantics.

One call to :func:`execute` performs one **atomic action** of one
process: the granularity at which the exploration engine interleaves.
Besides the successor configuration, every action reports:

- its dynamic **read/write location sets** — the ``r_i``/``w_i`` of the
  paper's Algorithm 1 (stubborn sets);
- instrumentation for the client analyses: the acting process's function
  stack and depth, its procedure string, objects allocated, functions
  entered/exited.

:func:`next_infos` additionally reports, for *disabled* processes, the
**necessary enabling set** (NES): the locations some other process must
write before the process can become enabled.  The stubborn-set closure
consumes this.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.lang.instructions import (
    IAcquire,
    IAlloc,
    IAssert,
    IAssign,
    IAssume,
    IBranch,
    ICall,
    ICobegin,
    IJump,
    IRelease,
    IReturn,
    ISkip,
    IThreadEnd,
    Instr,
    RFunc,
)
from repro.lang.program import Program
from repro.semantics import procstring as PS
from repro.semantics.config import (
    DONE,
    JOINING,
    RUNNING,
    Config,
    Frame,
    HeapObj,
    Loc,
    Pid,
    Process,
    collect_garbage,
    glob_loc,
    loc_value,
    proc_loc,
)
from repro.semantics.eval import eval_expr, eval_lvalue
from repro.semantics.values import FuncRef, Pointer, Value, truthy
from repro.util.errors import RuntimeFault


@dataclass(frozen=True)
class StepOptions:
    """Knobs of the semantics.

    track_procstrings:
        Maintain procedure strings and object birthdates (instrumented
        semantics, §5).  Off by default: instrumentation refines state
        identity and grows the explored space.
    gc:
        Garbage-collect unreachable heap objects after each action, so
        configurations differing only in dead objects merge.
    """

    track_procstrings: bool = False
    gc: bool = True


@dataclass(frozen=True)
class ActionInfo:
    """Metadata of one executed atomic action."""

    pid: Pid
    label: str
    kind: str
    reads: tuple[Loc, ...]
    writes: tuple[Loc, ...]
    stack: tuple[str, ...]
    depth: int
    allocs: tuple = ()
    entered: str | None = None
    exited: str | None = None
    ps: PS.ProcString = ()
    line: int = 0


@dataclass(frozen=True)
class NextInfo:
    """Per-process expansion info at a configuration."""

    proc: Process
    enabled: bool
    succ: Config | None = None
    action: ActionInfo | None = None
    # For disabled processes: locations whose *write* could enable it,
    # plus (for joins) the children that must terminate first.
    nes: tuple[Loc, ...] = ()
    blocked_children: tuple[Pid, ...] = ()


# --------------------------------------------------------------------------
# control-flow helpers
# --------------------------------------------------------------------------


def resolve_pc(program: Program, func: str, pc: int) -> int:
    """Follow unconditional-jump chains; the returned pc is never an IJump."""
    instrs = program.funcs[func].instrs
    seen = 0
    while isinstance(instrs[pc], IJump):
        pc = instrs[pc].target
        seen += 1
        if seen > len(instrs):  # pragma: no cover - compiler never emits jump cycles
            raise RuntimeFault("jump-cycle", f"in {func}")
    return pc


def current_instr(program: Program, proc: Process) -> Instr:
    top = proc.top
    return program.funcs[top.func].instrs[top.pc]


# --------------------------------------------------------------------------
# enabledness
# --------------------------------------------------------------------------


def enabledness(
    program: Program, config: Config, proc: Process, footprint: list | None = None
) -> tuple[bool, tuple[Loc, ...], tuple[Pid, ...]]:
    """Return ``(enabled, nes_locations, blocked_children)`` for *proc*.

    For a disabled process the NES lists the shared locations whose
    change could enable it (guard reads / the lock cell); for a blocked
    join the children that must still terminate are listed instead.

    With *footprint* (a list) supplied, every shared location this
    decision consulted is appended as a ``(loc, value)`` pair — the
    values it saw in *config*.  Any configuration where the same process
    sees the same footprint values reaches the same verdict, which is
    what the expansion memo cache keys on.  Note the footprint can be
    strictly larger than the NES: a join consults *every* child's
    status, enabled assumes consult their guard reads.
    """
    if proc.status == DONE:
        return (False, (), ())
    if proc.status == JOINING:
        if footprint is None:
            waiting = tuple(
                c for c in proc.children if config.proc(c).status != DONE
            )
        else:
            blocked = []
            for c in proc.children:
                status = config.proc(c).status
                footprint.append((proc_loc(c), status))
                if status != DONE:
                    blocked.append(c)
            waiting = tuple(blocked)
        if waiting:
            return (False, tuple(proc_loc(c) for c in waiting), waiting)
        return (True, (), ())
    instr = current_instr(program, proc)
    if isinstance(instr, IAssume):
        reads: list[Loc] = []
        try:
            v = eval_expr(instr.cond, config, proc.top.locals, reads)
        except RuntimeFault:
            # executing it will fault — that's a transition
            _record_reads(footprint, config, reads)
            return (True, (), ())
        _record_reads(footprint, config, reads)
        if truthy(v):
            return (True, (), ())
        return (False, tuple(reads), ())
    if isinstance(instr, IAcquire):
        if footprint is not None:
            footprint.append(
                (glob_loc(instr.index), config.globals[instr.index])
            )
        if config.globals[instr.index] == 0:
            return (True, (), ())
        return (False, (glob_loc(instr.index),), ())
    return (True, (), ())


def _record_reads(
    footprint: list | None, config: Config, reads: list[Loc]
) -> None:
    """Append ``(loc, value-in-config)`` for every read location.  The
    locations were just read successfully, so the values are present."""
    if footprint is None:
        return
    for loc in reads:
        footprint.append((loc, loc_value(config, loc)))


# --------------------------------------------------------------------------
# execution
# --------------------------------------------------------------------------


def execute(
    program: Program,
    config: Config,
    proc: Process,
    opts: StepOptions = StepOptions(),
) -> tuple[Config, ActionInfo]:
    """Execute *proc*'s next atomic action.  The caller must have checked
    enabledness.  A :class:`RuntimeFault` in the subject program yields a
    terminal fault configuration, not a Python exception."""
    stack = proc.func_stack()
    depth = proc.depth if proc.frames else 0
    base = dict(
        pid=proc.pid,
        stack=stack,
        depth=depth,
        ps=proc.ps,
    )

    if proc.status == JOINING:
        return _exec_join(program, config, proc, base)

    instr = current_instr(program, proc)
    reads: list[Loc] = []
    try:
        return _dispatch(program, config, proc, instr, reads, base, opts)
    except RuntimeFault as fault:
        action = ActionInfo(
            label=instr.label,
            kind=type(instr).__name__,
            reads=tuple(reads),
            writes=(),
            line=instr.line,
            **base,
        )
        fault_cfg = Config(
            procs=config.procs,
            globals=config.globals,
            heap=config.heap,
            fault=f"{fault.kind} at {instr.label or instr.line}: {fault.detail}",
        )
        return fault_cfg, action


def _finish(
    config: Config,
    opts: StepOptions,
) -> Config:
    if opts.gc and config.fault is None:
        return collect_garbage(config)
    return config


def _exec_join(
    program: Program, config: Config, proc: Process, base: dict
) -> tuple[Config, ActionInfo]:
    instr = current_instr(program, proc)
    assert isinstance(instr, ICobegin)
    join_pc = resolve_pc(program, proc.top.func, instr.join_target)
    new_top = replace(proc.top, pc=join_pc)
    new_proc = replace(
        proc,
        frames=proc.frames[:-1] + (new_top,),
        status=RUNNING,
        children=(),
    )
    children = set(proc.children)
    new_procs = tuple(
        new_proc if p.pid == proc.pid else p
        for p in config.procs
        if p.pid not in children
    )
    new_cfg = Config(procs=new_procs, globals=config.globals, heap=config.heap)
    action = ActionInfo(
        label=(instr.label + "$join") if instr.label else "$join",
        kind="IJoin",
        reads=tuple(proc_loc(c) for c in proc.children),
        writes=(),
        line=instr.line,
        **base,
    )
    return new_cfg, action


def _dispatch(
    program: Program,
    config: Config,
    proc: Process,
    instr: Instr,
    reads: list[Loc],
    base: dict,
    opts: StepOptions,
) -> tuple[Config, ActionInfo]:
    top = proc.top
    func = top.func

    def advance(pc: int, locals_: tuple[Value, ...] | None = None) -> Process:
        new_top = replace(
            top, pc=resolve_pc(program, func, pc), locals=top.locals if locals_ is None else locals_
        )
        return replace(proc, frames=proc.frames[:-1] + (new_top,))

    def mk_action(writes: tuple[Loc, ...], **extra) -> ActionInfo:
        return ActionInfo(
            label=instr.label,
            kind=type(instr).__name__,
            reads=tuple(reads),
            writes=writes,
            line=instr.line,
            **base,
            **extra,
        )

    def commit(
        new_proc: Process,
        writes: tuple[Loc, ...] = (),
        globals_: tuple | None = None,
        heap: tuple | None = None,
        extra_procs: tuple[Process, ...] = (),
        **extra,
    ) -> tuple[Config, ActionInfo]:
        procs = tuple(new_proc if p.pid == proc.pid else p for p in config.procs)
        if extra_procs:
            procs = tuple(sorted(procs + extra_procs, key=lambda p: p.pid))
        cfg = Config(
            procs=procs,
            globals=config.globals if globals_ is None else globals_,
            heap=config.heap if heap is None else heap,
        )
        return _finish(cfg, opts), mk_action(writes, **extra)

    # ---------------- simple actions ----------------
    if isinstance(instr, ISkip):
        return commit(advance(top.pc + 1))

    if isinstance(instr, IAssume):
        v = eval_expr(instr.cond, config, top.locals, reads)
        assert truthy(v), "execute() on a disabled assume"
        return commit(advance(top.pc + 1))

    if isinstance(instr, IAssert):
        v = eval_expr(instr.cond, config, top.locals, reads)
        if not truthy(v):
            raise RuntimeFault("assert-failed", f"assertion {instr.label!r} is false")
        return commit(advance(top.pc + 1))

    if isinstance(instr, IBranch):
        v = eval_expr(instr.cond, config, top.locals, reads)
        target = instr.then_target if truthy(v) else instr.else_target
        return commit(advance(target))

    if isinstance(instr, IAcquire):
        assert config.globals[instr.index] == 0, "execute() on a held lock"
        new_globals = _set_tuple(config.globals, instr.index, 1)
        reads.append(glob_loc(instr.index))
        return commit(
            advance(top.pc + 1),
            writes=(glob_loc(instr.index),),
            globals_=new_globals,
        )

    if isinstance(instr, IRelease):
        new_globals = _set_tuple(config.globals, instr.index, 0)
        return commit(
            advance(top.pc + 1),
            writes=(glob_loc(instr.index),),
            globals_=new_globals,
        )

    # ---------------- data actions ----------------
    if isinstance(instr, IAssign):
        value = eval_expr(instr.expr, config, top.locals, reads)
        dest = eval_lvalue(instr.target, config, top.locals, reads)
        return _store_to(
            program, config, proc, dest, value, advance, commit, top
        )

    if isinstance(instr, IAlloc):
        size = eval_expr(instr.size, config, top.locals, reads)
        if not isinstance(size, int) or size < 0:
            raise RuntimeFault("bad-alloc", f"malloc size {size!r}")
        oid = config.fresh_oid(instr.site)
        obj = HeapObj(
            oid=oid,
            cells=(0,) * size,
            birth_pid=proc.pid,
            birth_ps=proc.ps if opts.track_procstrings else (),
        )
        new_heap = tuple(sorted(config.heap + (obj,), key=lambda o: o.oid))
        dest = eval_lvalue(instr.target, config, top.locals, reads)
        value = Pointer(oid, 0)
        if dest[0] == "l":
            new_locals = _set_tuple(top.locals, dest[1], value)
            return commit(
                advance(top.pc + 1, new_locals), heap=new_heap, allocs=(oid,)
            )
        new_globals, new_heap = _write_shared(config, dest, value, heap=new_heap)
        return commit(
            advance(top.pc + 1),
            writes=(dest,),
            globals_=new_globals,
            heap=new_heap,
            allocs=(oid,),
        )

    # ---------------- control transfers ----------------
    if isinstance(instr, ICall):
        callee = eval_expr(instr.callee, config, top.locals, reads)
        if not isinstance(callee, FuncRef):
            raise RuntimeFault("bad-call", f"calling non-function {callee!r}")
        fc = program.funcs.get(callee.name)
        if fc is None:  # pragma: no cover - RFunc values always name real funcs
            raise RuntimeFault("bad-call", f"no function {callee.name!r}")
        args = [eval_expr(a, config, top.locals, reads) for a in instr.args]
        if len(args) != fc.num_params:
            raise RuntimeFault(
                "bad-call",
                f"{callee.name} expects {fc.num_params} args, got {len(args)}",
            )
        ret_loc = None
        if instr.target is not None:
            ret_loc = eval_lvalue(instr.target, config, top.locals, reads)
        # caller resumes past the call
        caller_top = replace(top, pc=resolve_pc(program, func, top.pc + 1))
        locals_ = tuple(args) + (0,) * (fc.num_locals - fc.num_params)
        callee_frame = Frame(
            func=callee.name,
            pc=resolve_pc(program, callee.name, 0),
            locals=locals_,
            ret_loc=ret_loc,
        )
        new_ps = proc.ps
        if opts.track_procstrings:
            new_ps = PS.push(proc.ps, PS.enter_proc(callee.name, instr.label))
        new_proc = replace(
            proc, frames=proc.frames[:-1] + (caller_top, callee_frame), ps=new_ps
        )
        return commit(new_proc, entered=callee.name)

    if isinstance(instr, IReturn):
        value: Value = 0
        if instr.expr is not None:
            value = eval_expr(instr.expr, config, top.locals, reads)
        new_ps = proc.ps
        if opts.track_procstrings and proc.ps and proc.ps[-1][0] == "+":
            new_ps = proc.ps[:-1]
        if len(proc.frames) == 1:
            new_proc = replace(
                proc, frames=(), status=DONE, retval=value, ps=new_ps
            )
            writes: tuple[Loc, ...] = ()
            if proc.pid != (0,):  # pragma: no cover - only root runs plain returns
                writes = (proc_loc(proc.pid),)
            return commit(new_proc, writes=writes, exited=func)
        ret_loc = top.ret_loc
        caller = proc.frames[-2]
        if ret_loc is None:
            new_proc = replace(
                proc, frames=proc.frames[:-2] + (caller,), ps=new_ps
            )
            return commit(new_proc, exited=func)
        if ret_loc[0] == "l":
            new_caller = replace(
                caller, locals=_set_tuple(caller.locals, ret_loc[1], value)
            )
            new_proc = replace(
                proc, frames=proc.frames[:-2] + (new_caller,), ps=new_ps
            )
            return commit(new_proc, exited=func)
        new_globals, new_heap = _write_shared(config, ret_loc, value)
        new_proc = replace(proc, frames=proc.frames[:-2] + (caller,), ps=new_ps)
        return commit(
            new_proc,
            writes=(ret_loc,),
            globals_=new_globals,
            heap=new_heap,
            exited=func,
        )

    if isinstance(instr, ICobegin):
        fc = program.funcs[func]
        children: list[Process] = []
        writes: list[Loc] = []
        for i, bt in enumerate(instr.branch_targets):
            cpid = proc.pid + (i,)
            cps: PS.ProcString = ()
            if opts.track_procstrings:
                cps = PS.push(proc.ps, PS.enter_thread(i, instr.label))
            children.append(
                Process(
                    pid=cpid,
                    frames=(
                        Frame(
                            func=func,
                            pc=resolve_pc(program, func, bt),
                            locals=(0,) * fc.num_locals,
                            ret_loc=None,
                        ),
                    ),
                    status=RUNNING,
                    ps=cps,
                )
            )
            writes.append(proc_loc(cpid))
        new_proc = replace(
            proc,
            status=JOINING,
            children=tuple(c.pid for c in children),
        )
        return commit(new_proc, writes=tuple(writes), extra_procs=tuple(children))

    if isinstance(instr, IThreadEnd):
        new_proc = replace(proc, frames=(), status=DONE, retval=None)
        return commit(new_proc, writes=(proc_loc(proc.pid),))

    raise RuntimeFault("bad-instr", f"unknown instruction {type(instr).__name__}")


def _store_to(program, config, proc, dest, value, advance, commit, top):
    if dest[0] == "l":
        new_locals = _set_tuple(top.locals, dest[1], value)
        return commit(advance(top.pc + 1, new_locals))
    new_globals, new_heap = _write_shared(config, dest, value)
    return commit(
        advance(top.pc + 1), writes=(dest,), globals_=new_globals, heap=new_heap
    )


def _write_shared(
    config: Config, loc, value: Value, heap: tuple | None = None
) -> tuple[tuple, tuple]:
    """Write a global or heap cell; returns (globals, heap)."""
    the_heap = config.heap if heap is None else heap
    if loc[0] == "g":
        return _set_tuple(config.globals, loc[1], value), the_heap
    assert loc[0] == "h"
    oid, off = loc[1], loc[2]
    new_heap = []
    found = False
    for obj in the_heap:
        if obj.oid == oid:
            new_heap.append(replace(obj, cells=_set_tuple(obj.cells, off, value)))
            found = True
        else:
            new_heap.append(obj)
    if not found:
        raise RuntimeFault("bad-deref", f"dangling pointer to {oid}")
    return config.globals, tuple(new_heap)


def _set_tuple(t: tuple, i: int, v) -> tuple:
    return t[:i] + (v,) + t[i + 1 :]


# --------------------------------------------------------------------------
# frontier computation
# --------------------------------------------------------------------------


def next_infos(
    program: Program, config: Config, opts: StepOptions = StepOptions()
) -> list[NextInfo]:
    """Expansion info for every live process of *config*, in pid order.

    Enabled processes carry their successor configuration and action;
    disabled ones carry their NES.  Terminal/fault configurations return
    an empty list.
    """
    if config.fault is not None:
        return []
    out: list[NextInfo] = []
    for proc in config.live_procs():
        enabled, nes, blocked = enabledness(program, config, proc)
        if not enabled:
            out.append(
                NextInfo(proc=proc, enabled=False, nes=nes, blocked_children=blocked)
            )
            continue
        succ, action = execute(program, config, proc, opts)
        out.append(NextInfo(proc=proc, enabled=True, succ=succ, action=action))
    return out
