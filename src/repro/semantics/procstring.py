"""Procedure strings (Harrison [Har89]), the paper's instrumentation.

A procedure string records the *procedural and concurrency movements* of
a process: entering/exiting a procedure, entering a cobegin thread.  We
keep strings **normalized**: an exit cancels the matching immediately
preceding enter, so a normalized string read from the program's start is
exactly the current activation path, e.g.::

    (('+', 'main', '<entry>'), ('[', '0', 's5'), ('+', 'f', 's7'))

means "inside an activation of ``f`` called from statement ``s7``, inside
branch 0 of the cobegin at ``s5``, inside ``main``".

When an object is created, the process's procedure string at that point
is recorded as the object's **birthdate**.  Comparing an access's
procedure string against the birthdate tells whether the access happens
inside the creating activation (the birthdate is a prefix) — the basis of
the lifetime analysis in the paper's §5.3.

Normalization trades precision for boundedness: two successive
activations with the same activation path are identified (the paper's
implementation k-limits strings similarly).  The lifetime analysis
therefore *additionally* uses sound stack-depth watermarks on the
configuration graph (see :mod:`repro.analyses.lifetime`); procedure
strings provide the reporting vocabulary and the thread structure.
"""

from __future__ import annotations

from typing import Iterable

# Op kinds: '+' enter procedure, '-' exit procedure,
#           '[' enter thread (cobegin branch), ']' exit thread.
# An op is (kind, name, site): for procedures, name = function and
# site = call-site label; for threads, name = branch index (as str) and
# site = the cobegin's label.
Op = tuple[str, str, str]
ProcString = tuple[Op, ...]

EMPTY: ProcString = ()

_MATCH = {"-": "+", "]": "["}


def enter_proc(func: str, callsite: str) -> Op:
    return ("+", func, callsite)


def exit_proc(func: str, callsite: str) -> Op:
    return ("-", func, callsite)


def enter_thread(branch: int, cobegin_label: str) -> Op:
    return ("[", str(branch), cobegin_label)


def exit_thread(branch: int, cobegin_label: str) -> Op:
    return ("]", str(branch), cobegin_label)


def push(ps: ProcString, op: Op) -> ProcString:
    """Append *op*, cancelling a matching enter with its exit."""
    kind, name, site = op
    if kind in _MATCH and ps:
        last_kind, last_name, last_site = ps[-1]
        if last_kind == _MATCH[kind] and last_name == name and last_site == site:
            return ps[:-1]
    return ps + (op,)


def concat(ps: ProcString, ops: Iterable[Op]) -> ProcString:
    for op in ops:
        ps = push(ps, op)
    return ps


def is_prefix(p: ProcString, q: ProcString) -> bool:
    """True iff normalized path *p* is a prefix of normalized path *q*."""
    return len(p) <= len(q) and q[: len(p)] == p


def common_prefix(p: ProcString, q: ProcString) -> ProcString:
    """Longest common activation-path prefix (the LCA activation)."""
    out = []
    for a, b in zip(p, q):
        if a != b:
            break
        out.append(a)
    return tuple(out)


def depth(ps: ProcString) -> int:
    """Number of unmatched enters (activation-path length)."""
    return len(ps)


def pretty(ps: ProcString) -> str:
    """Human-readable rendering, e.g. ``main / cobegin s5 branch 0 / f``."""
    if not ps:
        return "<root>"
    parts = []
    for kind, name, site in ps:
        if kind == "+":
            parts.append(name)
        elif kind == "[":
            parts.append(f"cobegin {site} branch {name}")
        else:  # pragma: no cover - normalized strings hold only enters
            parts.append(f"{kind}{name}")
    return " / ".join(parts)
