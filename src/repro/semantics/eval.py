"""Expression evaluation for the concrete semantics.

Evaluation happens *within one atomic action*: an entire statement's
expression tree is read in a single transition (the paper's granularity;
virtual coarsening later shows when this is harmless and the framework
explores interleavings at statement level regardless).

Every evaluation returns the value **and the list of shared locations it
read** — the dynamic read sets that the stubborn-set algorithm
(Algorithm 1) consumes.  Reads of process-private locals are not
recorded: they can never participate in a conflict.
"""

from __future__ import annotations

from repro.lang.instructions import (
    LDeref,
    LGlobal,
    LLocal,
    RAddrGlobal,
    RBinary,
    RConst,
    RDeref,
    RExpr,
    RFunc,
    RGlobal,
    RLocal,
    RLValue,
    RUnary,
)
from repro.semantics.config import Config, Loc, glob_loc, heap_loc
from repro.semantics.values import GLOBALS_OBJ, FuncRef, Pointer, Value, truthy
from repro.util.errors import RuntimeFault


def eval_expr(
    expr: RExpr, config: Config, locals_: tuple[Value, ...], reads: list[Loc]
) -> Value:
    """Evaluate *expr*; append every shared location read to *reads*.

    Raises :class:`RuntimeFault` on bad dereferences, division by zero,
    or ill-typed operations (the subject program's bug, not ours).
    """
    if isinstance(expr, RConst):
        return expr.value
    if isinstance(expr, RLocal):
        return locals_[expr.slot]
    if isinstance(expr, RGlobal):
        reads.append(glob_loc(expr.index))
        return config.globals[expr.index]
    if isinstance(expr, RAddrGlobal):
        return Pointer(GLOBALS_OBJ, expr.index)
    if isinstance(expr, RFunc):
        return FuncRef(expr.name)
    if isinstance(expr, RDeref):
        base = eval_expr(expr.base, config, locals_, reads)
        index = eval_expr(expr.index, config, locals_, reads)
        loc = resolve_pointer(base, index, config)
        reads.append(loc)
        return read_loc(config, loc)
    if isinstance(expr, RUnary):
        v = eval_expr(expr.operand, config, locals_, reads)
        if expr.op == "-":
            _require_int(v, "unary -")
            return -v
        if expr.op == "!":
            return 0 if truthy(v) else 1
        raise RuntimeFault("bad-op", f"unknown unary {expr.op!r}")
    if isinstance(expr, RBinary):
        return _eval_binary(expr, config, locals_, reads)
    raise RuntimeFault("bad-expr", f"unknown expression {type(expr).__name__}")


def _eval_binary(
    expr: RBinary, config: Config, locals_: tuple[Value, ...], reads: list[Loc]
) -> Value:
    op = expr.op
    # Short-circuit logicals: the unevaluated arm contributes no reads.
    if op == "&&":
        lhs = eval_expr(expr.left, config, locals_, reads)
        if not truthy(lhs):
            return 0
        return 1 if truthy(eval_expr(expr.right, config, locals_, reads)) else 0
    if op == "||":
        lhs = eval_expr(expr.left, config, locals_, reads)
        if truthy(lhs):
            return 1
        return 1 if truthy(eval_expr(expr.right, config, locals_, reads)) else 0
    lhs = eval_expr(expr.left, config, locals_, reads)
    rhs = eval_expr(expr.right, config, locals_, reads)
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    # pointer arithmetic: ptr ± int
    if isinstance(lhs, Pointer) and op in ("+", "-") and isinstance(rhs, int):
        delta = rhs if op == "+" else -rhs
        return Pointer(lhs.obj, lhs.offset + delta)
    if isinstance(rhs, Pointer) and op == "+" and isinstance(lhs, int):
        return Pointer(rhs.obj, rhs.offset + lhs)
    _require_int(lhs, op)
    _require_int(rhs, op)
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if rhs == 0:
            raise RuntimeFault("div-by-zero", "division by zero")
        q = abs(lhs) // abs(rhs)
        return q if (lhs < 0) == (rhs < 0) else -q
    if op == "%":
        if rhs == 0:
            raise RuntimeFault("div-by-zero", "modulo by zero")
        q = abs(lhs) // abs(rhs)
        q = q if (lhs < 0) == (rhs < 0) else -q
        return lhs - rhs * q
    if op == "<":
        return int(lhs < rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == ">=":
        return int(lhs >= rhs)
    raise RuntimeFault("bad-op", f"unknown binary {op!r}")


def _require_int(v: Value, op: str) -> None:
    if not isinstance(v, int):
        raise RuntimeFault("type-error", f"{op} applied to non-integer {v!r}")


# --------------------------------------------------------------------------
# locations
# --------------------------------------------------------------------------


def resolve_pointer(base: Value, index: Value, config: Config) -> Loc:
    """Turn ``base[index]`` into a shared location, with bounds checks."""
    if not isinstance(base, Pointer):
        raise RuntimeFault("bad-deref", f"dereference of non-pointer {base!r}")
    if not isinstance(index, int):
        raise RuntimeFault("bad-deref", f"non-integer index {index!r}")
    off = base.offset + index
    if base.obj == GLOBALS_OBJ:
        if not 0 <= off < len(config.globals):
            raise RuntimeFault("bad-deref", f"globals offset {off} out of range")
        return glob_loc(off)
    obj = config.heap_obj(base.obj)
    if obj is None:
        raise RuntimeFault("bad-deref", f"dangling pointer to {base.obj}")
    if not 0 <= off < len(obj.cells):
        raise RuntimeFault(
            "bad-deref", f"offset {off} out of range for {base.obj} (size {len(obj.cells)})"
        )
    return heap_loc(base.obj, off)


def read_loc(config: Config, loc: Loc) -> Value:
    """Read a shared location."""
    if loc[0] == "g":
        return config.globals[loc[1]]
    assert loc[0] == "h"
    obj = config.heap_obj(loc[1])
    if obj is None:
        raise RuntimeFault("bad-deref", f"dangling pointer to {loc[1]}")
    return obj.cells[loc[2]]


def eval_lvalue(
    lv: RLValue, config: Config, locals_: tuple[Value, ...], reads: list[Loc]
) -> tuple:
    """Resolve an l-value to a *write destination*.

    Returns ``("l", slot)`` for locals (process-private) or a shared
    location (``("g", i)`` / ``("h", oid, off)``).  Address computation
    for ``*p = e`` reads ``p`` — those reads are appended to *reads*.
    """
    if isinstance(lv, LLocal):
        return ("l", lv.slot)
    if isinstance(lv, LGlobal):
        return glob_loc(lv.index)
    if isinstance(lv, LDeref):
        base = eval_expr(lv.base, config, locals_, reads)
        index = eval_expr(lv.index, config, locals_, reads)
        return resolve_pointer(base, index, config)
    raise RuntimeFault("bad-lvalue", f"unknown lvalue {type(lv).__name__}")
