"""Shared-memory component transport for the parallel backend.

The work-stealing exploration backend routes *candidate configurations*
between OS processes continuously (unlike the old round-barrier design,
which scattered whole batches once per round).  Pickling every candidate
in full would re-serialize the same interned :class:`~repro.semantics.
config.Process` and :class:`~repro.semantics.config.HeapObj` components
thousands of times — successors share almost all structure with their
parents, which is the entire point of interning.

This module ships each distinct component across the boundary **once**:

* every participant (each worker, plus the master) owns one append-only
  ``multiprocessing.shared_memory`` segment it alone writes;
* encoding a configuration writes any component not yet published to the
  producer's own segment and replaces it with a ``(producer, offset)``
  handle tuple — the ledger hands back the *same* tuple object on every
  reuse, so within one message blob pickle's memo collapses repeats to a
  2-byte back-reference (an int-packed handle would re-emit ~8 bytes per
  occurrence: pickle never memoizes integers);
* decoding reads the ``[u32 length][pickle]`` record at the handle (the
  component pickle re-interns via ``__reduce__``, so the receiver gets
  its canonical object) and caches the handle → object mapping, making
  repeat decodes pointer lookups.

Segments are created by the master *before* forking and inherited by the
workers through ``Process`` args — no name re-attachment, so the
resource tracker sees each segment exactly once and the master's
``unlink()`` in its ``finally`` block is the single point of cleanup.
When a segment fills up, or when the platform cannot fork / lacks POSIX
shared memory, encoding degrades per-component to an inline ``("b",
pickle)`` payload: strictly the old behaviour, never an error.

The codec is deliberately asymmetric-free: any participant can encode
(workers publish successor components; the master publishes the initial
configuration and checkpoint-resume preloads) and any participant can
decode any producer's handles.
"""

from __future__ import annotations

import pickle
import struct
from typing import Optional

from repro.semantics.config import Config, intern_config

#: Default size of each producer's append-only segment.  Components are
#: a few hundred bytes pickled; 8 MiB holds tens of thousands of them,
#: and overflow degrades to inline payloads rather than failing.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024

_LEN = struct.Struct("<I")


def shm_available() -> bool:
    """True when POSIX shared memory can back the transport."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - exotic platforms
        return False
    return True


class ComponentStore:
    """Per-producer shared-memory logs plus the config codec.

    Create in the master with ``nproducers = nshards + 1`` (producer
    ``nshards`` is the master), fork, then call :meth:`bind` in every
    process with its own producer id before encoding.  Decoding needs no
    binding.  ``use_shm=False`` builds an inline-only store (every
    component ships as bytes) with the identical interface.
    """

    def __init__(
        self,
        nproducers: int,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        use_shm: bool = True,
        name_prefix: str = "repro-shm",
    ) -> None:
        self.nproducers = nproducers
        self.segment_bytes = segment_bytes
        self._segments: list = []
        self._producer: Optional[int] = None
        self._tail = [0] * nproducers
        # encoder state: id(component) -> (component, handle); holding
        # the component pins it, so id() reuse cannot alias the map.
        # Decoding feeds this map too: a component received from another
        # producer re-encodes as the *original* handle instead of being
        # republished, so each component crosses the run exactly once
        # no matter how many shards forward configurations built on it.
        self._published: dict[int, tuple] = {}
        # value-keyed ledger for small immutables (the globals tuple):
        # equal-but-distinct objects would defeat both the id-keyed map
        # and pickle's id-based memo, republishing the same value once
        # per successor
        self._value_published: dict = {}
        # decoder state: (producer, offset) handle -> component
        self._decoded: dict[tuple, object] = {}
        self.inline_fallbacks = 0  # components shipped as raw bytes
        self._inline_bytes = 0
        if use_shm and shm_available():
            from multiprocessing import shared_memory
            import os
            import secrets

            token = f"{name_prefix}-{os.getpid()}-{secrets.token_hex(4)}"
            try:
                for i in range(nproducers):
                    self._segments.append(
                        shared_memory.SharedMemory(
                            name=f"{token}-{i}", create=True,
                            size=segment_bytes,
                        )
                    )
            except OSError:  # pragma: no cover - /dev/shm unavailable
                self.unlink()
                self._segments = []

    @property
    def using_shm(self) -> bool:
        return bool(self._segments)

    def segment_names(self) -> list[str]:
        """The backing segment names (leak-check support for tests)."""
        return [s.name for s in self._segments]

    def bind(self, producer: int) -> None:
        """Declare which producer slot this process writes."""
        if not 0 <= producer < self.nproducers:
            raise ValueError(f"producer {producer} out of range")
        self._producer = producer

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def _publish(self, component):
        """The transport handle for one shared component (a Process or
        HeapObj of a configuration, or an edge's ActionInfo)."""
        key = id(component)
        hit = self._published.get(key)
        if hit is not None:
            return hit[1]
        data = pickle.dumps(component, protocol=pickle.HIGHEST_PROTOCOL)
        handle = None
        if self._segments and self._producer is not None:
            seg = self._segments[self._producer]
            tail = self._tail[self._producer]
            end = tail + _LEN.size + len(data)
            if end <= self.segment_bytes:
                _LEN.pack_into(seg.buf, tail, len(data))
                seg.buf[tail + _LEN.size : end] = data
                self._tail[self._producer] = end
                handle = (self._producer, tail)
        if handle is None:
            handle = ("b", data)
            self.inline_fallbacks += 1
            self._inline_bytes += len(data)
        self._published[key] = (component, handle)
        return handle

    def publish(self, obj):
        """Publish any shared object once; returns its handle.  The
        same incremental ledger backs configurations and edge-action
        metadata, so a repeat publish is a dict hit."""
        return self._publish(obj)

    def published_bytes(self) -> int:
        """Bytes this producer has published so far (its segment tail
        plus inline-fallback payloads) — lets senders estimate the
        marginal cost of the configuration they just encoded."""
        tail = 0
        if self._segments and self._producer is not None:
            tail = self._tail[self._producer]
        return tail + self._inline_bytes

    def _publish_value(self, value):
        """Publish a small hashable immutable keyed by *value* rather
        than identity — successors rebuild an equal globals tuple, so
        id-keying (and pickle's id-based memo) would republish it per
        configuration."""
        handle = self._value_published.get(value)
        if handle is None:
            handle = self._publish(value)
            self._value_published[value] = handle
        return handle

    def encode_config(self, config: Config, *, digest: bool = True) -> tuple:
        """A compact, queue-shippable payload for *config*.

        ``digest=False`` omits the stable digest (graph fragments headed
        for the canonical merge recompute it there; candidate messages
        keep it because the receiving shard routes and deduplicates on
        it)."""
        return (
            tuple(self._publish(p) for p in config.procs),
            self._publish_value(config.globals),
            tuple(self._publish(o) for o in config.heap),
            config.fault,
            config._digest if digest else None,
        )

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def _resolve(self, handle):
        if handle[0] == "b":  # ("b", pickle) inline fallback
            return pickle.loads(handle[1])
        hit = self._decoded.get(handle)
        if hit is not None:
            return hit
        producer, offset = handle
        buf = self._segments[producer].buf
        (length,) = _LEN.unpack_from(buf, offset)
        start = offset + _LEN.size
        component = pickle.loads(bytes(buf[start : start + length]))
        self._decoded[handle] = component
        # ledger reuse: re-encoding this component forwards the original
        # producer's handle (any participant can resolve any handle)
        self._published.setdefault(id(component), (component, handle))
        return component

    def resolve(self, handle):
        """Resolve any handle produced by :meth:`publish` (or by config
        encoding) to its canonical object."""
        return self._resolve(handle)

    def decode_config(self, payload: tuple) -> Config:
        """Rebuild (and intern) a configuration from a payload."""
        proc_refs, globals_ref, heap_refs, fault, digest = payload
        globals_ = self._resolve(globals_ref)
        # ledger reuse for the value-keyed map too: forwarding a config
        # with these globals reuses the original producer's handle
        self._value_published.setdefault(globals_, globals_ref)
        config = intern_config(
            Config(
                procs=tuple(self._resolve(r) for r in proc_refs),
                globals=globals_,
                heap=tuple(self._resolve(r) for r in heap_refs),
                fault=fault,
            )
        )
        if digest is not None and config._digest is None:
            object.__setattr__(config, "_digest", digest)
        return config

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's views (workers, on exit)."""
        for seg in self._segments:
            try:
                seg.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def unlink(self) -> None:
        """Close and remove the segments (master only, exactly once)."""
        for seg in self._segments:
            try:
                seg.close()
            except OSError:  # pragma: no cover
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []
