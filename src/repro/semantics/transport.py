"""Shared-memory component transport for the parallel backend.

The work-stealing exploration backend routes *candidate configurations*
between OS processes continuously (unlike the old round-barrier design,
which scattered whole batches once per round).  Pickling every candidate
in full would re-serialize the same interned :class:`~repro.semantics.
config.Process` and :class:`~repro.semantics.config.HeapObj` components
thousands of times — successors share almost all structure with their
parents, which is the entire point of interning.

This module ships each distinct component across the boundary **once**:

* every participant (each worker, plus the master) owns one append-only
  ``multiprocessing.shared_memory`` segment it alone writes;
* encoding a configuration writes any component not yet published to the
  producer's own segment and replaces it with a ``("r", producer,
  offset)`` handle — subsequent configurations reusing the component
  carry only the 3-tuple;
* decoding reads the ``[u32 length][pickle]`` record at the handle (the
  component pickle re-interns via ``__reduce__``, so the receiver gets
  its canonical object) and caches the handle → object mapping, making
  repeat decodes pointer lookups.

Segments are created by the master *before* forking and inherited by the
workers through ``Process`` args — no name re-attachment, so the
resource tracker sees each segment exactly once and the master's
``unlink()`` in its ``finally`` block is the single point of cleanup.
When a segment fills up, or when the platform cannot fork / lacks POSIX
shared memory, encoding degrades per-component to an inline ``("b",
pickle)`` payload: strictly the old behaviour, never an error.

The codec is deliberately asymmetric-free: any participant can encode
(workers publish successor components; the master publishes the initial
configuration and checkpoint-resume preloads) and any participant can
decode any producer's handles.
"""

from __future__ import annotations

import pickle
import struct
from typing import Optional

from repro.semantics.config import Config, intern_config

#: Default size of each producer's append-only segment.  Components are
#: a few hundred bytes pickled; 8 MiB holds tens of thousands of them,
#: and overflow degrades to inline payloads rather than failing.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024

_LEN = struct.Struct("<I")


def shm_available() -> bool:
    """True when POSIX shared memory can back the transport."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - exotic platforms
        return False
    return True


class ComponentStore:
    """Per-producer shared-memory logs plus the config codec.

    Create in the master with ``nproducers = nshards + 1`` (producer
    ``nshards`` is the master), fork, then call :meth:`bind` in every
    process with its own producer id before encoding.  Decoding needs no
    binding.  ``use_shm=False`` builds an inline-only store (every
    component ships as bytes) with the identical interface.
    """

    def __init__(
        self,
        nproducers: int,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        use_shm: bool = True,
        name_prefix: str = "repro-shm",
    ) -> None:
        self.nproducers = nproducers
        self.segment_bytes = segment_bytes
        self._segments: list = []
        self._producer: Optional[int] = None
        self._tail = [0] * nproducers
        # encoder state: id(component) -> (component, handle); holding
        # the component pins it, so id() reuse cannot alias the map
        self._published: dict[int, tuple] = {}
        # decoder state: (producer, offset) -> component
        self._decoded: dict[tuple[int, int], object] = {}
        self.inline_fallbacks = 0  # components shipped as raw bytes
        if use_shm and shm_available():
            from multiprocessing import shared_memory
            import os
            import secrets

            token = f"{name_prefix}-{os.getpid()}-{secrets.token_hex(4)}"
            try:
                for i in range(nproducers):
                    self._segments.append(
                        shared_memory.SharedMemory(
                            name=f"{token}-{i}", create=True,
                            size=segment_bytes,
                        )
                    )
            except OSError:  # pragma: no cover - /dev/shm unavailable
                self.unlink()
                self._segments = []

    @property
    def using_shm(self) -> bool:
        return bool(self._segments)

    def segment_names(self) -> list[str]:
        """The backing segment names (leak-check support for tests)."""
        return [s.name for s in self._segments]

    def bind(self, producer: int) -> None:
        """Declare which producer slot this process writes."""
        if not 0 <= producer < self.nproducers:
            raise ValueError(f"producer {producer} out of range")
        self._producer = producer

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def _publish(self, component) -> tuple:
        """The transport handle for one Process/HeapObj component."""
        key = id(component)
        hit = self._published.get(key)
        if hit is not None:
            return hit[1]
        data = pickle.dumps(component, protocol=pickle.HIGHEST_PROTOCOL)
        handle = None
        if self._segments and self._producer is not None:
            seg = self._segments[self._producer]
            tail = self._tail[self._producer]
            end = tail + _LEN.size + len(data)
            if end <= self.segment_bytes:
                _LEN.pack_into(seg.buf, tail, len(data))
                seg.buf[tail + _LEN.size : end] = data
                self._tail[self._producer] = end
                handle = ("r", self._producer, tail)
        if handle is None:
            handle = ("b", data)
            self.inline_fallbacks += 1
        self._published[key] = (component, handle)
        return handle

    def encode_config(self, config: Config) -> tuple:
        """A compact, queue-shippable payload for *config*."""
        return (
            tuple(self._publish(p) for p in config.procs),
            config.globals,
            tuple(self._publish(o) for o in config.heap),
            config.fault,
            config._digest,
        )

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    def _resolve(self, handle: tuple):
        tag = handle[0]
        if tag == "b":
            return pickle.loads(handle[1])
        key = (handle[1], handle[2])
        hit = self._decoded.get(key)
        if hit is not None:
            return hit
        buf = self._segments[handle[1]].buf
        offset = handle[2]
        (length,) = _LEN.unpack_from(buf, offset)
        start = offset + _LEN.size
        component = pickle.loads(bytes(buf[start : start + length]))
        self._decoded[key] = component
        return component

    def decode_config(self, payload: tuple) -> Config:
        """Rebuild (and intern) a configuration from a payload."""
        proc_refs, globals_, heap_refs, fault, digest = payload
        config = intern_config(
            Config(
                procs=tuple(self._resolve(r) for r in proc_refs),
                globals=globals_,
                heap=tuple(self._resolve(r) for r in heap_refs),
                fault=fault,
            )
        )
        if digest is not None and config._digest is None:
            object.__setattr__(config, "_digest", digest)
        return config

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Unmap this process's views (workers, on exit)."""
        for seg in self._segments:
            try:
                seg.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def unlink(self) -> None:
        """Close and remove the segments (master only, exactly once)."""
        for seg in self._segments:
            try:
                seg.close()
            except OSError:  # pragma: no cover
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []
