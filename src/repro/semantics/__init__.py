"""Concrete (standard + instrumented) semantics of the cobegin language.

- :mod:`repro.semantics.values` — the value universe;
- :mod:`repro.semantics.config` — configurations (processes, globals,
  heap), the states of the transition system;
- :mod:`repro.semantics.eval` — atomic expression evaluation with
  dynamic read-set reporting;
- :mod:`repro.semantics.step` — the transition function with full
  action metadata (read/write sets, NES, instrumentation);
- :mod:`repro.semantics.procstring` — procedure strings [Har89];
- :mod:`repro.semantics.scheduler` — single-run execution.
"""

from repro.semantics.config import (
    DONE,
    JOINING,
    ROOT_PID,
    RUNNING,
    Config,
    Frame,
    HeapObj,
    Process,
    collect_garbage,
    glob_loc,
    heap_loc,
    initial_config,
    proc_loc,
)
from repro.semantics.scheduler import RunResult, run_program
from repro.semantics.step import (
    ActionInfo,
    NextInfo,
    StepOptions,
    enabledness,
    execute,
    next_infos,
    resolve_pc,
)
from repro.semantics.values import GLOBALS_OBJ, FuncRef, ObjId, Pointer, Value

__all__ = [
    "ActionInfo",
    "Config",
    "DONE",
    "Frame",
    "FuncRef",
    "GLOBALS_OBJ",
    "HeapObj",
    "JOINING",
    "NextInfo",
    "ObjId",
    "Pointer",
    "Process",
    "ROOT_PID",
    "RUNNING",
    "RunResult",
    "StepOptions",
    "Value",
    "collect_garbage",
    "enabledness",
    "execute",
    "glob_loc",
    "heap_loc",
    "initial_config",
    "next_infos",
    "proc_loc",
    "resolve_pc",
    "run_program",
]
