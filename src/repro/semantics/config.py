"""Configurations: the global states of the transition system.

A *configuration* (the paper's term) packages every live process, the
globals area, and the heap.  Configurations are immutable and hashable —
the exploration engine relies on structural equality to merge states
reached along different interleavings.

Process identities are **canonical paths**: the root process is ``(0,)``
and the *i*-th branch of a cobegin executed by process ``p`` is
``p + (i,)``.  Identities are therefore independent of interleaving
order, and two pids are *concurrent* exactly when neither is a prefix of
the other (a parent is blocked at its join while children run).

Interning
---------
Successor configurations along different interleavings share almost all
of their structure.  :func:`intern_config` (and the per-component
:func:`intern_process` / :func:`intern_heap_obj`) canonicalize
structurally equal values to one representative object, so equality
checks degrade to pointer comparisons for the common hit case and the
resident set stops paying for duplicated ``Process`` tuples.  Unpickling
routes through the intern tables too, which is what makes configurations
cheap to ship between the processes of the parallel exploration backend:
a worker that receives a configuration it has seen before gets back the
exact object it already holds.

``_hash`` is a *salted, per-process* hash — fine for dict probing, never
for identity: all visited-set structures key on full structural equality
(dict/set semantics), and cross-process shard routing uses
:func:`stable_digest`, which is independent of ``PYTHONHASHSEED``.

O(delta) digests
----------------
:func:`stable_digest` composes fixed-size per-component digests cached
on each :class:`Process` and :class:`HeapObj` (``_digest`` fields), so
hashing a successor configuration costs proportional to what changed:
unchanged components are shared by reference with the parent and their
digests are reused.  ``__reduce__`` carries the cached digests across
pickle transport, so the parallel backend never re-hashes a received
configuration; :func:`digest_stats` exposes the compose/reuse counters
the transport tests and telemetry consume.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.lang.program import Program
from repro.semantics import procstring as PS
from repro.semantics.values import GLOBALS_OBJ, ObjId, Pointer, Value

Pid = tuple[int, ...]

ROOT_PID: Pid = (0,)

# Process statuses
RUNNING = "run"
JOINING = "join"
DONE = "done"

# Location keys (the currency of read/write sets):
#   ("g", index)          — a global variable
#   ("h", oid, offset)    — a heap cell
#   ("p", pid)            — process-completion pseudo-location
Loc = tuple


def glob_loc(index: int) -> Loc:
    return ("g", index)


def heap_loc(oid: ObjId, offset: int) -> Loc:
    return ("h", oid, offset)


def proc_loc(pid: Pid) -> Loc:
    return ("p", pid)


class _Missing:
    """Sentinel for :func:`loc_value`: location absent (unequal to every
    program value, including None)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing>"


MISSING = _Missing()


def loc_value(config: "Config", loc: Loc):
    """The current value of a shared location in *config*, or
    :data:`MISSING` when the location does not exist there (heap object
    absent or offset out of range, process pid absent).

    For ``("p", pid)`` pseudo-locations the "value" is the process's
    status — exactly the attribute join enabledness consults.  This is
    the probe primitive of the expansion memo cache: a cached footprint
    matches iff every recorded location still holds its recorded value.
    """
    tag = loc[0]
    if tag == "g":
        globals_ = config.globals
        index = loc[1]
        return globals_[index] if 0 <= index < len(globals_) else MISSING
    if tag == "h":
        obj = config.heap_obj(loc[1])
        if obj is None:
            return MISSING
        off = loc[2]
        return obj.cells[off] if 0 <= off < len(obj.cells) else MISSING
    try:
        return config.proc(loc[1]).status
    except KeyError:
        return MISSING


# Return destination of a call, resolved at call time:
#   ("g", index) | ("l", slot) | ("h", oid, offset) | None
RetLoc = Optional[tuple]


@dataclass(frozen=True)
class Frame:
    """One procedure activation of a process."""

    func: str
    pc: int
    locals: tuple[Value, ...]
    ret_loc: RetLoc = None


@dataclass(frozen=True)
class Process:
    """A sequential thread of control.

    ``status`` is one of :data:`RUNNING`, :data:`JOINING` (blocked at a
    cobegin join), :data:`DONE`.  ``ps`` is the (normalized) procedure
    string — empty when instrumentation is off.
    """

    pid: Pid
    frames: tuple[Frame, ...]
    status: str = RUNNING
    join_pc: int = -1
    children: tuple[Pid, ...] = ()
    retval: Optional[Value] = None
    ps: PS.ProcString = ()
    # Cached component digest (see stable_digest); init=False so
    # dataclasses.replace() never copies a stale digest onto a changed
    # process.  Never compared, carried through __reduce__.
    _digest: Optional[bytes] = field(
        default=None, init=False, compare=False, repr=False
    )

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    @property
    def depth(self) -> int:
        return len(self.frames)

    def func_stack(self) -> tuple[str, ...]:
        return tuple(f.func for f in self.frames)

    def __reduce__(self):
        # Compact positional pickle that re-interns on load: equal
        # processes received from another OS process collapse onto the
        # receiver's canonical representative.  The cached component
        # digest rides along so the receiver never re-hashes.
        return (
            _unpickle_process,
            (
                self.pid, self.frames, self.status, self.join_pc,
                self.children, self.retval, self.ps, self._digest,
            ),
        )


@dataclass(frozen=True)
class HeapObj:
    """A heap object: canonical identity, cells, and birth metadata."""

    oid: ObjId
    cells: tuple[Value, ...]
    birth_pid: Pid = ()
    birth_ps: PS.ProcString = ()
    _digest: Optional[bytes] = field(
        default=None, init=False, compare=False, repr=False
    )

    def __reduce__(self):
        return (
            _unpickle_heap_obj,
            (self.oid, self.cells, self.birth_pid, self.birth_ps,
             self._digest),
        )


@dataclass(frozen=True)
class Config:
    """A global state: processes (sorted by pid), globals area, heap
    (sorted by oid), and an optional fault marker.

    A configuration with ``fault`` set is terminal and represents an
    execution that crashed (bad dereference, division by zero, failed
    assertion); the fault string describes the crash.
    """

    procs: tuple[Process, ...]
    globals: tuple[Value, ...]
    heap: tuple[HeapObj, ...]
    fault: Optional[str] = None
    _hash: int = field(default=0, compare=False, repr=False)
    # Lazily-built lookup indexes (pid -> Process, oid -> HeapObj) and
    # the cached cross-process digest.  Never compared, never pickled.
    _proc_index: Optional[dict] = field(default=None, compare=False, repr=False)
    _heap_index: Optional[dict] = field(default=None, compare=False, repr=False)
    _digest: Optional[int] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.procs, self.globals, self.heap, self.fault))
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Positional payload without the lookup caches; the loader
        # re-interns, so a configuration shipped across a process
        # boundary lands on the receiver's canonical instance
        # (identity-equal to any copy it already holds).  The cached
        # stable digest rides along: scatter/gather never re-hashes.
        return (
            _unpickle_config,
            (self.procs, self.globals, self.heap, self.fault,
             self._digest),
        )

    # ------------------------------------------------------------------
    # process access
    # ------------------------------------------------------------------

    def proc(self, pid: Pid) -> Process:
        idx = self._proc_index
        if idx is None:
            idx = {p.pid: p for p in self.procs}
            object.__setattr__(self, "_proc_index", idx)
        return idx[pid]

    def live_procs(self) -> Iterator[Process]:
        """Processes that may still take actions (running or joining)."""
        for p in self.procs:
            if p.status != DONE:
                yield p

    def replace_proc(self, proc: Process) -> tuple[Process, ...]:
        return tuple(proc if p.pid == proc.pid else p for p in self.procs)

    # ------------------------------------------------------------------
    # heap access
    # ------------------------------------------------------------------

    def heap_obj(self, oid: ObjId) -> HeapObj | None:
        idx = self._heap_index
        if idx is None:
            idx = {o.oid: o for o in self.heap}
            object.__setattr__(self, "_heap_index", idx)
        return idx.get(oid)

    def fresh_oid(self, site: str) -> ObjId:
        used = {o.oid[1] for o in self.heap if o.oid[0] == site}
        k = 0
        while k in used:
            k += 1
        return (site, k)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------

    @property
    def is_terminal(self) -> bool:
        """Terminated (root done) or faulted.  Deadlock is *not* covered
        here — it needs enabledness, see the explorer."""
        if self.fault is not None:
            return True
        return all(p.status == DONE for p in self.procs)

    @property
    def is_terminated(self) -> bool:
        return self.fault is None and all(p.status == DONE for p in self.procs)

    def result_store(self) -> tuple:
        """The observable outcome: globals plus live heap contents.

        This is the paper's *result configuration* payload — what
        stubborn-set reduction must preserve.
        """
        return (
            self.globals,
            tuple((o.oid, o.cells) for o in self.heap),
            self.fault,
        )


def initial_config(program: Program, *, track_procstrings: bool = False) -> Config:
    """The start configuration: a root process entering ``main``."""
    entry = program.funcs[program.entry]
    frame = Frame(
        func=program.entry,
        pc=0,
        locals=(0,) * entry.num_locals,
        ret_loc=None,
    )
    ps: PS.ProcString = ()
    if track_procstrings:
        ps = PS.push((), PS.enter_proc(program.entry, "<entry>"))
    root = Process(pid=ROOT_PID, frames=(frame,), status=RUNNING, ps=ps)
    return Config(
        procs=(root,),
        globals=tuple(program.global_init),
        heap=(),
    )


def collect_garbage(config: Config) -> Config:
    """Drop heap objects unreachable from globals and process frames.

    Improves state merging during exploration (configurations differing
    only in dead objects become equal).  Analyses that must observe the
    full allocation history run with GC off.
    """
    reachable: set[ObjId] = set()
    work: list[Value] = list(config.globals)
    for p in config.procs:
        for f in p.frames:
            work.extend(f.locals)
            if f.ret_loc is not None and f.ret_loc[0] == "h":
                reachable.add(f.ret_loc[1])
    objs = {o.oid: o for o in config.heap}
    while work:
        v = work.pop()
        if isinstance(v, Pointer) and v.obj != GLOBALS_OBJ and v.obj not in reachable:
            if v.obj in objs:
                reachable.add(v.obj)
                work.extend(objs[v.obj].cells)
    # ret_loc heap targets queued above need their cells traced too
    changed = True
    while changed:
        changed = False
        for oid in list(reachable):
            for v in objs.get(oid, HeapObj(oid, ())).cells:
                if (
                    isinstance(v, Pointer)
                    and v.obj != GLOBALS_OBJ
                    and v.obj in objs
                    and v.obj not in reachable
                ):
                    reachable.add(v.obj)
                    changed = True
    new_heap = tuple(o for o in config.heap if o.oid in reachable)
    if len(new_heap) == len(config.heap):
        return config
    return Config(
        procs=config.procs, globals=config.globals, heap=new_heap, fault=config.fault
    )


# --------------------------------------------------------------------------
# interning
# --------------------------------------------------------------------------

# Canonical-representative tables.  Keys *are* values (x -> x): probing
# costs one hash + one structural comparison, and every later comparison
# between interned equals is a pointer check.  Exploration already keeps
# every distinct configuration alive in its graph, so the tables add
# only O(live states) bookkeeping — call :func:`clear_intern_caches`
# between unrelated long runs to release them.
_INTERN_PROCS: dict[Process, Process] = {}
_INTERN_HEAP_OBJS: dict[HeapObj, HeapObj] = {}
_INTERN_CONFIGS: dict[Config, Config] = {}


def intern_process(proc: Process) -> Process:
    """The canonical representative of *proc* in this OS process."""
    cached = _INTERN_PROCS.get(proc)
    if cached is not None:
        return cached
    _INTERN_PROCS[proc] = proc
    return proc


def intern_heap_obj(obj: HeapObj) -> HeapObj:
    """The canonical representative of *obj* in this OS process."""
    cached = _INTERN_HEAP_OBJS.get(obj)
    if cached is not None:
        return cached
    _INTERN_HEAP_OBJS[obj] = obj
    return obj


def intern_config(config: Config) -> Config:
    """The canonical representative of *config* in this OS process.

    Guarantees ``intern_config(a) is intern_config(b)`` iff ``a == b``
    and ``intern_config(c) == c`` always.  Sub-structures (processes,
    heap objects) are canonicalized too, so two configurations differing
    in one process share every other component.
    """
    cached = _INTERN_CONFIGS.get(config)
    if cached is not None:
        return cached
    procs = tuple(intern_process(p) for p in config.procs)
    heap = tuple(intern_heap_obj(o) for o in config.heap)
    if any(a is not b for a, b in zip(procs, config.procs)) or any(
        a is not b for a, b in zip(heap, config.heap)
    ):
        config = Config(
            procs=procs, globals=config.globals, heap=heap, fault=config.fault
        )
    _INTERN_CONFIGS[config] = config
    return config


def clear_intern_caches() -> None:
    """Drop all canonical-representative tables (frees their memory;
    subsequently interned values simply become new representatives)."""
    _INTERN_PROCS.clear()
    _INTERN_HEAP_OBJS.clear()
    _INTERN_CONFIGS.clear()


def intern_table_sizes() -> dict[str, int]:
    """Current intern-table populations (telemetry/tests)."""
    return {
        "procs": len(_INTERN_PROCS),
        "heap_objs": len(_INTERN_HEAP_OBJS),
        "configs": len(_INTERN_CONFIGS),
    }


def _unpickle_process(
    pid, frames, status, join_pc, children, retval, ps, digest=None
):
    proc = intern_process(
        Process(
            pid=pid, frames=frames, status=status, join_pc=join_pc,
            children=children, retval=retval, ps=ps,
        )
    )
    if digest is not None and proc._digest is None:
        object.__setattr__(proc, "_digest", digest)
    return proc


def _unpickle_heap_obj(oid, cells, birth_pid, birth_ps, digest=None):
    obj = intern_heap_obj(
        HeapObj(oid=oid, cells=cells, birth_pid=birth_pid, birth_ps=birth_ps)
    )
    if digest is not None and obj._digest is None:
        object.__setattr__(obj, "_digest", digest)
    return obj


def _unpickle_config(procs, globals_, heap, fault, digest=None):
    cfg = intern_config(
        Config(procs=procs, globals=globals_, heap=heap, fault=fault)
    )
    if digest is not None and cfg._digest is None:
        object.__setattr__(cfg, "_digest", digest)
    return cfg


# --------------------------------------------------------------------------
# cross-process digests
# --------------------------------------------------------------------------

#: Compose/reuse counters behind :func:`stable_digest` — how much of the
#: hashing work was served from component caches (telemetry + the
#: transport test's "never re-hash on receipt" assertion).
_DIGEST_STATS = {
    "config_composed": 0,   # config digests computed (by composition)
    "config_cached": 0,     # config digests served from the cache
    "component_new": 0,     # per-proc/per-heap-obj digests computed
    "component_reused": 0,  # component digests reused from their cache
}

#: blake2b ``person`` tags: domain separation between component kinds,
#: so a process payload can never alias a heap-object payload.
_PERSON_PROC = b"repro.proc"
_PERSON_HEAP = b"repro.heap"
_PERSON_CONFIG = b"repro.config"
_COMPONENT_SIZE = 16


def digest_stats() -> dict[str, int]:
    """A copy of the digest compose/reuse counters."""
    return dict(_DIGEST_STATS)


def reset_digest_stats() -> None:
    for key in _DIGEST_STATS:
        _DIGEST_STATS[key] = 0


def _proc_digest(proc: Process) -> bytes:
    d = proc._digest
    if d is not None:
        _DIGEST_STATS["component_reused"] += 1
        return d
    payload = repr(
        (
            proc.pid,
            tuple((f.func, f.pc, f.locals, f.ret_loc) for f in proc.frames),
            proc.status,
            proc.join_pc,
            proc.children,
            proc.retval,
            proc.ps,
        )
    ).encode("utf-8")
    d = hashlib.blake2b(
        payload, digest_size=_COMPONENT_SIZE, person=_PERSON_PROC
    ).digest()
    object.__setattr__(proc, "_digest", d)
    _DIGEST_STATS["component_new"] += 1
    return d


def _heap_obj_digest(obj: HeapObj) -> bytes:
    d = obj._digest
    if d is not None:
        _DIGEST_STATS["component_reused"] += 1
        return d
    payload = repr(
        (obj.oid, obj.cells, obj.birth_pid, obj.birth_ps)
    ).encode("utf-8")
    d = hashlib.blake2b(
        payload, digest_size=_COMPONENT_SIZE, person=_PERSON_HEAP
    ).digest()
    object.__setattr__(obj, "_digest", d)
    _DIGEST_STATS["component_new"] += 1
    return d


def stable_digest(config: Config) -> int:
    """A 64-bit structural digest, identical across OS processes, runs,
    and ``PYTHONHASHSEED`` values (unlike ``hash()``).

    This is what the parallel backend routes on: equal configurations
    always land on the same shard, so each shard's visited set is
    authoritative for its slice of the state space.  A digest collision
    between *distinct* configurations merely co-locates them on one
    shard — dedup itself always compares full structural equality.

    Cost is O(delta): the digest composes fixed-size per-component
    digests cached on each :class:`Process` and :class:`HeapObj`.  A
    successor sharing all but one process with its parent re-hashes only
    that process (the shared components are the *same objects*, digest
    included).  The composition is unambiguous: components are
    fixed-size and every variable-length section is length-prefixed.
    """
    d = config._digest
    if d is not None:
        _DIGEST_STATS["config_cached"] += 1
        return d
    h = hashlib.blake2b(digest_size=8, person=_PERSON_CONFIG)
    h.update(len(config.procs).to_bytes(4, "big"))
    for proc in config.procs:
        h.update(_proc_digest(proc))
    glob = repr(config.globals).encode("utf-8")
    h.update(len(glob).to_bytes(4, "big"))
    h.update(glob)
    h.update(len(config.heap).to_bytes(4, "big"))
    for obj in config.heap:
        h.update(_heap_obj_digest(obj))
    fault = repr(config.fault).encode("utf-8")
    h.update(len(fault).to_bytes(4, "big"))
    h.update(fault)
    d = int.from_bytes(h.digest(), "big")
    object.__setattr__(config, "_digest", d)
    _DIGEST_STATS["config_composed"] += 1
    return d


def shard_of(config: Config, nshards: int) -> int:
    """The shard that owns *config* in an ``nshards``-way partition."""
    return stable_digest(config) % nshards
