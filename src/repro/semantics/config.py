"""Configurations: the global states of the transition system.

A *configuration* (the paper's term) packages every live process, the
globals area, and the heap.  Configurations are immutable and hashable —
the exploration engine relies on structural equality to merge states
reached along different interleavings.

Process identities are **canonical paths**: the root process is ``(0,)``
and the *i*-th branch of a cobegin executed by process ``p`` is
``p + (i,)``.  Identities are therefore independent of interleaving
order, and two pids are *concurrent* exactly when neither is a prefix of
the other (a parent is blocked at its join while children run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.lang.program import Program
from repro.semantics import procstring as PS
from repro.semantics.values import GLOBALS_OBJ, ObjId, Pointer, Value

Pid = tuple[int, ...]

ROOT_PID: Pid = (0,)

# Process statuses
RUNNING = "run"
JOINING = "join"
DONE = "done"

# Location keys (the currency of read/write sets):
#   ("g", index)          — a global variable
#   ("h", oid, offset)    — a heap cell
#   ("p", pid)            — process-completion pseudo-location
Loc = tuple


def glob_loc(index: int) -> Loc:
    return ("g", index)


def heap_loc(oid: ObjId, offset: int) -> Loc:
    return ("h", oid, offset)


def proc_loc(pid: Pid) -> Loc:
    return ("p", pid)


# Return destination of a call, resolved at call time:
#   ("g", index) | ("l", slot) | ("h", oid, offset) | None
RetLoc = Optional[tuple]


@dataclass(frozen=True)
class Frame:
    """One procedure activation of a process."""

    func: str
    pc: int
    locals: tuple[Value, ...]
    ret_loc: RetLoc = None


@dataclass(frozen=True)
class Process:
    """A sequential thread of control.

    ``status`` is one of :data:`RUNNING`, :data:`JOINING` (blocked at a
    cobegin join), :data:`DONE`.  ``ps`` is the (normalized) procedure
    string — empty when instrumentation is off.
    """

    pid: Pid
    frames: tuple[Frame, ...]
    status: str = RUNNING
    join_pc: int = -1
    children: tuple[Pid, ...] = ()
    retval: Optional[Value] = None
    ps: PS.ProcString = ()

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    @property
    def depth(self) -> int:
        return len(self.frames)

    def func_stack(self) -> tuple[str, ...]:
        return tuple(f.func for f in self.frames)


@dataclass(frozen=True)
class HeapObj:
    """A heap object: canonical identity, cells, and birth metadata."""

    oid: ObjId
    cells: tuple[Value, ...]
    birth_pid: Pid = ()
    birth_ps: PS.ProcString = ()


@dataclass(frozen=True)
class Config:
    """A global state: processes (sorted by pid), globals area, heap
    (sorted by oid), and an optional fault marker.

    A configuration with ``fault`` set is terminal and represents an
    execution that crashed (bad dereference, division by zero, failed
    assertion); the fault string describes the crash.
    """

    procs: tuple[Process, ...]
    globals: tuple[Value, ...]
    heap: tuple[HeapObj, ...]
    fault: Optional[str] = None
    _hash: int = field(default=0, compare=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.procs, self.globals, self.heap, self.fault))
        )

    def __hash__(self) -> int:
        return self._hash

    # ------------------------------------------------------------------
    # process access
    # ------------------------------------------------------------------

    def proc(self, pid: Pid) -> Process:
        for p in self.procs:
            if p.pid == pid:
                return p
        raise KeyError(pid)

    def live_procs(self) -> Iterator[Process]:
        """Processes that may still take actions (running or joining)."""
        for p in self.procs:
            if p.status != DONE:
                yield p

    def replace_proc(self, proc: Process) -> tuple[Process, ...]:
        return tuple(proc if p.pid == proc.pid else p for p in self.procs)

    # ------------------------------------------------------------------
    # heap access
    # ------------------------------------------------------------------

    def heap_obj(self, oid: ObjId) -> HeapObj | None:
        for o in self.heap:
            if o.oid == oid:
                return o
        return None

    def fresh_oid(self, site: str) -> ObjId:
        used = {o.oid[1] for o in self.heap if o.oid[0] == site}
        k = 0
        while k in used:
            k += 1
        return (site, k)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------

    @property
    def is_terminal(self) -> bool:
        """Terminated (root done) or faulted.  Deadlock is *not* covered
        here — it needs enabledness, see the explorer."""
        if self.fault is not None:
            return True
        return all(p.status == DONE for p in self.procs)

    @property
    def is_terminated(self) -> bool:
        return self.fault is None and all(p.status == DONE for p in self.procs)

    def result_store(self) -> tuple:
        """The observable outcome: globals plus live heap contents.

        This is the paper's *result configuration* payload — what
        stubborn-set reduction must preserve.
        """
        return (
            self.globals,
            tuple((o.oid, o.cells) for o in self.heap),
            self.fault,
        )


def initial_config(program: Program, *, track_procstrings: bool = False) -> Config:
    """The start configuration: a root process entering ``main``."""
    entry = program.funcs[program.entry]
    frame = Frame(
        func=program.entry,
        pc=0,
        locals=(0,) * entry.num_locals,
        ret_loc=None,
    )
    ps: PS.ProcString = ()
    if track_procstrings:
        ps = PS.push((), PS.enter_proc(program.entry, "<entry>"))
    root = Process(pid=ROOT_PID, frames=(frame,), status=RUNNING, ps=ps)
    return Config(
        procs=(root,),
        globals=tuple(program.global_init),
        heap=(),
    )


def collect_garbage(config: Config) -> Config:
    """Drop heap objects unreachable from globals and process frames.

    Improves state merging during exploration (configurations differing
    only in dead objects become equal).  Analyses that must observe the
    full allocation history run with GC off.
    """
    reachable: set[ObjId] = set()
    work: list[Value] = list(config.globals)
    for p in config.procs:
        for f in p.frames:
            work.extend(f.locals)
            if f.ret_loc is not None and f.ret_loc[0] == "h":
                reachable.add(f.ret_loc[1])
    objs = {o.oid: o for o in config.heap}
    while work:
        v = work.pop()
        if isinstance(v, Pointer) and v.obj != GLOBALS_OBJ and v.obj not in reachable:
            if v.obj in objs:
                reachable.add(v.obj)
                work.extend(objs[v.obj].cells)
    # ret_loc heap targets queued above need their cells traced too
    changed = True
    while changed:
        changed = False
        for oid in list(reachable):
            for v in objs.get(oid, HeapObj(oid, ())).cells:
                if (
                    isinstance(v, Pointer)
                    and v.obj != GLOBALS_OBJ
                    and v.obj in objs
                    and v.obj not in reachable
                ):
                    reachable.add(v.obj)
                    changed = True
    new_heap = tuple(o for o in config.heap if o.oid in reachable)
    if len(new_heap) == len(config.heap):
        return config
    return Config(
        procs=config.procs, globals=config.globals, heap=new_heap, fault=config.fault
    )
