"""The ``repro bench`` sweep: corpus × policy grid → ``BENCH_*.json``.

Runs every bundled corpus program under the full policy grid
``{full, stubborn, stubborn-proc} × {±coarsen} × {±sleep}`` (12
combinations), with a :class:`~repro.metrics.MetricsObserver` attached,
and emits one schema-versioned JSON document holding, per program and
per combination: configuration/edge counts, reduction ratios against
the ``full`` baseline, wall-clock, and the key telemetry scalars.

Two jobs in one:

1. **soundness gate** — while sweeping, every combination's result
   stores, deadlock count, and fault messages are compared against the
   ``full`` baseline; any divergence raises :class:`DivergenceError`
   (the CLI exits non-zero).  This is the paper's central reduction
   invariant checked end-to-end on every bench run.
2. **perf trajectory** — the JSON is the regression baseline future PRs
   diff against (check a run in, re-run, compare ``totals``).

Determinism: everything except the ``wall_time_s`` / ``*_per_s``
fields is deterministic; diff tools should ignore those.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.explore import ExploreOptions, ExploreResult, explore
from repro.metrics import SCHEMA_VERSION as METRICS_SCHEMA_VERSION
from repro.metrics import MetricsObserver
from repro.util.errors import ReproError

#: Version of the ``BENCH_explore.json`` document layout.  Bump on any
#: key rename or semantic change so trajectory tooling can refuse to
#: compare apples to oranges.
SCHEMA_VERSION = "repro.bench.explore/1"

POLICIES = ("full", "stubborn", "stubborn-proc")

#: Fast, representative subset for CI smoke runs: one paper figure, one
#: synchronization idiom, one deadlock, one fault-free reducer-friendly
#: workload, one heap program, one scaling family member.
SMOKE_PROGRAMS = (
    "fig2_shasha_snir",
    "fig5_locality",
    "mutex_counter",
    "deadlock_pair",
    "example8_pointers",
    "philosophers_3",
)


class DivergenceError(ReproError):
    """A reduced policy produced different result configurations than
    full exploration — the soundness invariant is broken."""


def policy_combos() -> list[tuple[str, bool, bool]]:
    """The 12-point grid, ``full`` (the baseline) first."""
    return [
        (policy, coarsen, sleep)
        for policy in POLICIES
        for coarsen in (False, True)
        for sleep in (False, True)
    ]


@dataclass
class _Baseline:
    stores: set
    deadlocks: int
    faults: frozenset


@dataclass
class BenchReport:
    """In-memory form of the emitted JSON."""

    document: dict
    divergences: list[str] = field(default_factory=list)


def _combo_name(policy: str, coarsen: bool, sleep: bool) -> str:
    return ExploreOptions(policy=policy, coarsen=coarsen, sleep=sleep).describe()


def _ratio(full: int, reduced: int) -> float | None:
    return round(full / reduced, 4) if reduced else None


def _scalar_metrics(mo: MetricsObserver) -> dict:
    """Compact telemetry scalars worth tracking across PRs."""
    reg = mo.registry
    out: dict = {}
    hits = reg.counter("explore.intern.hits").value
    misses = reg.counter("explore.intern.misses").value
    if hits + misses:
        out["intern_hit_rate"] = round(hits / (hits + misses), 4)
    fd = reg.histogram("explore.frontier_depth")
    if fd.count:
        out["frontier_depth_max"] = fd.max
        out["frontier_depth_mean"] = round(fd.mean, 2)
    se = reg.histogram("stubborn.enabled")
    if se.count:
        out["stubborn_mean_enabled"] = round(se.mean, 3)
        out["stubborn_mean_chosen"] = round(
            reg.histogram("stubborn.chosen").mean, 3
        )
        out["stubborn_singleton_rate"] = round(
            reg.counter("stubborn.singleton_steps").value / se.count, 4
        )
        ci = reg.histogram("stubborn.closure_iterations")
        if ci.count:
            out["closure_iterations_mean"] = round(ci.mean, 2)
    bl = reg.histogram("coarsen.block_len")
    if bl.count:
        out["block_len_mean"] = round(bl.mean, 3)
        out["block_len_max"] = bl.max
    out["expansions_per_s"] = round(
        reg.gauge("explore.expansions_per_s").value, 1
    )
    return out


def _check_equivalence(
    name: str, combo: str, result: ExploreResult, base: _Baseline
) -> None:
    problems = []
    if result.final_stores() != base.stores:
        problems.append(
            f"result stores differ ({len(result.final_stores())} vs "
            f"{len(base.stores)} baseline)"
        )
    if result.stats.num_deadlocks != base.deadlocks:
        problems.append(
            f"deadlock count {result.stats.num_deadlocks} != {base.deadlocks}"
        )
    if frozenset(result.fault_messages()) != base.faults:
        problems.append("fault messages differ")
    if problems:
        raise DivergenceError(
            f"policy {combo!r} diverges from 'full' on {name!r}: "
            + "; ".join(problems)
        )


def run_bench(
    *,
    programs: list[str] | None = None,
    smoke: bool = False,
    max_configs: int = 200_000,
    time_limit_s: float | None = None,
    progress=None,
) -> BenchReport:
    """Sweep the corpus and build the benchmark document.

    Raises :class:`DivergenceError` on the first policy whose results
    differ from full exploration (soundness failure beats telemetry).
    """
    from repro.programs.corpus import CORPUS

    if programs is None:
        programs = list(SMOKE_PROGRAMS) if smoke else sorted(CORPUS)
    unknown = [n for n in programs if n not in CORPUS]
    if unknown:
        raise ReproError(
            f"unknown corpus programs: {', '.join(unknown)}; "
            f"see 'repro corpus'"
        )

    combos = policy_combos()
    per_program: dict[str, dict] = {}
    totals: dict[str, dict] = {
        _combo_name(*c): {"configs": 0, "edges": 0, "wall_time_s": 0.0}
        for c in combos
    }
    truncated_runs: list[str] = []

    for name in programs:
        program = CORPUS[name]()
        entries: dict[str, dict] = {}
        baseline: _Baseline | None = None

        for policy, coarsen, sleep in combos:
            combo = _combo_name(policy, coarsen, sleep)
            opts = ExploreOptions(
                policy=policy,
                coarsen=coarsen,
                sleep=sleep,
                max_configs=max_configs,
                time_limit_s=time_limit_s,
            )
            mo = MetricsObserver()
            t0 = time.perf_counter()
            result = explore(program, options=opts, observers=(mo,))
            wall = time.perf_counter() - t0
            s = result.stats

            if combo == "full":
                baseline = _Baseline(
                    stores=result.final_stores(),
                    deadlocks=s.num_deadlocks,
                    faults=frozenset(result.fault_messages()),
                )
            assert baseline is not None
            if s.truncated:
                # a truncated space has no complete result set to compare
                truncated_runs.append(f"{name}/{combo}")
            else:
                _check_equivalence(name, combo, result, baseline)

            full_entry = entries.get("full")
            entry = {
                "policy": policy,
                "coarsen": coarsen,
                "sleep": sleep,
                "configs": s.num_configs,
                "edges": s.num_edges,
                "expansions": s.expansions,
                "actions": s.actions_executed,
                "terminated": s.num_terminated,
                "deadlocks": s.num_deadlocks,
                "faults": s.num_faults,
                "truncated": s.truncated,
                "wall_time_s": round(wall, 6),
                "reduction_vs_full": (
                    _ratio(full_entry["configs"], s.num_configs)
                    if full_entry is not None
                    else 1.0
                ),
                "edge_reduction_vs_full": (
                    _ratio(full_entry["edges"], s.num_edges)
                    if full_entry is not None
                    else 1.0
                ),
                "results_match_full": not s.truncated,
                "metrics": _scalar_metrics(mo),
            }
            entries[combo] = entry
            tot = totals[combo]
            tot["configs"] += s.num_configs
            tot["edges"] += s.num_edges
            tot["wall_time_s"] = round(tot["wall_time_s"] + wall, 6)
            if progress is not None:
                progress(name, combo, entry)

        per_program[name] = {"baseline": "full", "policies": entries}

    document = {
        "schema": SCHEMA_VERSION,
        "metrics_schema": METRICS_SCHEMA_VERSION,
        "smoke": smoke,
        "max_configs": max_configs,
        "time_limit_s": time_limit_s,
        "policy_grid": [_combo_name(*c) for c in combos],
        "programs": per_program,
        "totals": totals,
        "truncated_runs": truncated_runs,
        "soundness": "all policies matched 'full' result configurations"
        if not truncated_runs
        else "truncated runs skipped equivalence check",
    }
    return BenchReport(document=document)


def write_report(report: BenchReport, out_path: str) -> None:
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report.document, fh, indent=2, sort_keys=False)
        fh.write("\n")


def format_summary(report: BenchReport) -> str:
    """Human-readable trajectory table (per-combo totals)."""
    doc = report.document
    lines = [
        f"bench schema={doc['schema']} programs={len(doc['programs'])} "
        f"grid={len(doc['policy_grid'])} combos"
    ]
    full_total = doc["totals"]["full"]["configs"]
    header = f"{'combo':<28} {'configs':>9} {'edges':>9} {'vs full':>8} {'wall s':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for combo in doc["policy_grid"]:
        tot = doc["totals"][combo]
        ratio = full_total / tot["configs"] if tot["configs"] else 0.0
        lines.append(
            f"{combo:<28} {tot['configs']:>9} {tot['edges']:>9} "
            f"{ratio:>7.2f}x {tot['wall_time_s']:>8.3f}"
        )
    if doc["truncated_runs"]:
        lines.append(f"truncated (equivalence skipped): {doc['truncated_runs']}")
    lines.append(doc["soundness"])
    return "\n".join(lines)
