"""The ``repro bench`` sweep: corpus × policy grid → ``BENCH_*.json``.

Runs every bundled corpus program under the full policy grid
``{full, stubborn, stubborn-proc} × {±coarsen} × {±sleep}`` (12
combinations), with a :class:`~repro.metrics.MetricsObserver` attached,
and emits one schema-versioned JSON document holding, per program and
per combination: configuration/edge counts, reduction ratios against
the ``full`` baseline, wall-clock, and the key telemetry scalars.
With ``jobs=[2, 4]`` the grid grows parallel-backend columns
(``stubborn@j2`` …) that must reproduce their serial twin's graph
*exactly*, plus a ``scaling`` section timing philosophers(6..7)
serial-vs-parallel.

Two jobs in one:

1. **soundness gate** — while sweeping, every combination's result
   stores, deadlock count, and fault messages are compared against the
   ``full`` baseline; any divergence raises :class:`DivergenceError`
   (the CLI exits non-zero).  This is the paper's central reduction
   invariant checked end-to-end on every bench run.
2. **perf trajectory** — the JSON is the regression baseline future PRs
   diff against: :func:`diff_reports` (CLI ``repro bench-diff``)
   compares the deterministic per-entry fields of two documents and
   reports any drift.

Resilience: an optional per-program **watchdog** (``watchdog_s``) bounds
each program's sweep with a wall-clock alarm; a program that hangs (or
crashes the engine) is retried once, then *skipped with an error entry*
in the document — one pathological program no longer aborts the whole
sweep.  Soundness failures (:class:`DivergenceError`) still abort: a
broken reduction is a bug, not bad luck.

Determinism: everything except the ``wall_time_s`` / ``*_per_s`` /
``peak_rss_bytes`` fields is deterministic; diff tools should ignore
those.
"""

from __future__ import annotations

import hashlib
import json
import logging
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.explore import ExploreOptions, ExploreResult, explore
from repro.metrics import SCHEMA_VERSION as METRICS_SCHEMA_VERSION
from repro.metrics import MetricsObserver
from repro.util.errors import ReproError

LOG = logging.getLogger("repro.bench")

#: Version of the ``BENCH_explore.json`` document layout.  Bump on any
#: key rename or semantic change so trajectory tooling can refuse to
#: compare apples to oranges.
#:
#: ``/2`` added per-entry ``peak_rss_bytes``, ``escalations`` and
#: ``truncation_reason``, and the top-level ``errors`` / ``watchdog_s``
#: keys.  ``/3`` added per-entry ``backend`` / ``jobs`` /
#: ``shard_balance`` / ``result_digest``, the top-level ``jobs`` list
#: and the ``scaling`` section.  ``/4`` extends the parallel grid with
#: sleep-set combos (the work-stealing backend lifted the serial-only
#: restriction), always includes ``j1`` in scaling, and restructures
#: ``scaling`` as ``{cpus, policy, coarsen, programs}`` — ``cpus``
#: records the host's core count so trajectory tooling can tell a
#: genuine scaling regression from a one-core container, and each
#: parallel run reports ``steals``.  ``/5`` (this version) adds the
#: optional top-level ``serve`` section (:func:`run_serve_load` — the
#: analysis-service load bench; ``null`` when not run, and entirely
#: wall-clock, so :func:`diff_reports` ignores it).  ``/6`` (this
#: version) adds the optional top-level ``schedules`` section
#: (:func:`run_schedules_bench` — canonical equivalence-class counts
#: and edge-coverage of exhaustive vs seeded-sample schedule
#: generation on the philosophers family; ``null`` when not run, and
#: ignored by :func:`diff_reports` like ``serve``).  ``/7`` (this
#: version) adds the always-present top-level ``progress`` section
#: (:func:`run_progress_overhead` — the telemetry plane's cost:
#: ns-per-``due()`` tick, ns-per-frame, and attached-vs-unattached
#: exploration wall-clock; entirely wall-clock, so ignored by
#: :func:`diff_reports`).  ``/8`` (this version) adds the per-entry
#: ``interconnect`` sub-dict on parallel runs (and on the ``scaling``
#: section's ``jN`` runs): candidate message count, total message
#: bytes, source-suppressed candidates, and the canonical merge's
#: overlap/tail seconds — the parallel backend's data-plane cost.
#: ``null`` on serial entries and on documents predating ``/8``;
#: scheduling- and wall-clock-dependent, so :func:`diff_reports`
#: ignores it.  :func:`load_report` still reads ``/1`` .. ``/7``.
SCHEMA_VERSION = "repro.bench.explore/8"

#: Older layouts :func:`load_report` can upgrade on the fly.
COMPATIBLE_SCHEMAS = (
    "repro.bench.explore/1",
    "repro.bench.explore/2",
    "repro.bench.explore/3",
    "repro.bench.explore/4",
    "repro.bench.explore/5",
    "repro.bench.explore/6",
    "repro.bench.explore/7",
    SCHEMA_VERSION,
)

POLICIES = ("full", "stubborn", "stubborn-proc")

#: Fast, representative subset for CI smoke runs: one paper figure, one
#: synchronization idiom, one deadlock, one fault-free reducer-friendly
#: workload, one heap program, one scaling family member.
SMOKE_PROGRAMS = (
    "fig2_shasha_snir",
    "fig5_locality",
    "mutex_counter",
    "deadlock_pair",
    "example8_pointers",
    "philosophers_3",
)


class DivergenceError(ReproError):
    """A reduced policy produced different result configurations than
    full exploration — the soundness invariant is broken."""


class WatchdogAlarm(BaseException):
    """A program's sweep exceeded the per-program watchdog budget.

    Deliberately a :class:`BaseException` (like ``KeyboardInterrupt``):
    the exploration engine's resilience guards catch ``Exception`` to
    degrade gracefully, and the watchdog must pierce those guards —
    otherwise a hung program would swallow its own eviction notice and
    keep hanging.  ``run_bench`` converts it to an error entry; it never
    escapes this module.
    """


def policy_combos() -> list[tuple[str, bool, bool]]:
    """The 12-point serial grid, ``full`` (the baseline) first."""
    return [
        (policy, coarsen, sleep)
        for policy in POLICIES
        for coarsen in (False, True)
        for sleep in (False, True)
    ]


def parallel_combos() -> list[tuple[str, bool, bool]]:
    """The parallel-backend grid per jobs value: the same 12-point
    policy grid as the serial sweep.  Sleep sets compose with the
    parallel backend since the work-stealing rewrite (the master runs
    the sleep-DFS order; workers serve sharded expansions)."""
    return policy_combos()


def result_digest(result: ExploreResult) -> str:
    """A deterministic fingerprint of the result-configuration set —
    the paper's observable.  Stable across backends, jobs counts,
    machines, and ``PYTHONHASHSEED``."""
    payload = repr(sorted(repr(s) for s in result.final_stores()))
    return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


@dataclass
class _Baseline:
    stores: set
    deadlocks: int
    faults: frozenset


@dataclass
class BenchReport:
    """In-memory form of the emitted JSON."""

    document: dict
    divergences: list[str] = field(default_factory=list)


def _combo_name(policy: str, coarsen: bool, sleep: bool) -> str:
    return ExploreOptions(policy=policy, coarsen=coarsen, sleep=sleep).describe()


def _ratio(full: int, reduced: int) -> float | None:
    return round(full / reduced, 4) if reduced else None


def _scalar_metrics(mo: MetricsObserver) -> dict:
    """Compact telemetry scalars worth tracking across PRs."""
    reg = mo.registry
    out: dict = {}
    hits = reg.counter("explore.intern.hits").value
    misses = reg.counter("explore.intern.misses").value
    if hits + misses:
        out["intern_hit_rate"] = round(hits / (hits + misses), 4)
    fd = reg.histogram("explore.frontier_depth")
    if fd.count:
        out["frontier_depth_max"] = fd.max
        out["frontier_depth_mean"] = round(fd.mean, 2)
    se = reg.histogram("stubborn.enabled")
    if se.count:
        out["stubborn_mean_enabled"] = round(se.mean, 3)
        out["stubborn_mean_chosen"] = round(
            reg.histogram("stubborn.chosen").mean, 3
        )
        out["stubborn_singleton_rate"] = round(
            reg.counter("stubborn.singleton_steps").value / se.count, 4
        )
        ci = reg.histogram("stubborn.closure_iterations")
        if ci.count:
            out["closure_iterations_mean"] = round(ci.mean, 2)
    bl = reg.histogram("coarsen.block_len")
    if bl.count:
        out["block_len_mean"] = round(bl.mean, 3)
        out["block_len_max"] = bl.max
    # incremental-engine health (schema-compatible additions: absent
    # when the memo cache / digest components saw no traffic)
    if "expand.cache_hit_rate" in reg:
        out["expand_cache_hit_rate"] = round(
            reg.value("expand.cache_hit_rate"), 4
        )
    if "expand.invalidations" in reg:
        out["expand_invalidations"] = reg.value("expand.invalidations")
    if "digest.incremental_rate" in reg:
        out["digest_incremental_rate"] = round(
            reg.value("digest.incremental_rate"), 4
        )
    out["expansions_per_s"] = round(
        reg.gauge("explore.expansions_per_s").value, 1
    )
    return out


def _check_equivalence(
    name: str, combo: str, result: ExploreResult, base: _Baseline
) -> None:
    problems = []
    if result.final_stores() != base.stores:
        problems.append(
            f"result stores differ ({len(result.final_stores())} vs "
            f"{len(base.stores)} baseline)"
        )
    if result.stats.num_deadlocks != base.deadlocks:
        problems.append(
            f"deadlock count {result.stats.num_deadlocks} != {base.deadlocks}"
        )
    if frozenset(result.fault_messages()) != base.faults:
        problems.append("fault messages differ")
    if problems:
        raise DivergenceError(
            f"policy {combo!r} diverges from 'full' on {name!r}: "
            + "; ".join(problems)
        )


@contextmanager
def _watchdog(seconds: float | None):
    """Bound the enclosed block with a wall-clock alarm.

    No-op when *seconds* is None, off the main thread, or on a platform
    without ``SIGALRM`` — the sweep then runs unguarded, exactly as
    before the watchdog existed.
    """
    if (
        seconds is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _alarm(signum, frame):
        raise WatchdogAlarm(f"watchdog fired after {seconds}s")

    previous = signal.signal(signal.SIGALRM, _alarm)
    # Repeating interval, not one-shot: a single SIGALRM delivery can be
    # lost to signal races under load, and a lost one-shot alarm would
    # let the guarded block run unbounded.  A repeating timer re-fires
    # until the finally below disarms it.
    signal.setitimer(signal.ITIMER_REAL, seconds, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _timed_explore(program, opts, observers=(), profiler=None):
    """One wall-clocked exploration, optionally under an accumulating
    :mod:`cProfile` profiler (``repro bench --profile``).  The profiler
    is enabled only around engine work, so the dumped pstats artifact
    shows the exploration hot path, not JSON assembly."""
    t0 = time.perf_counter()
    if profiler is not None:
        profiler.enable()
    try:
        result = explore(program, options=opts, observers=observers)
    finally:
        if profiler is not None:
            profiler.disable()
    return result, time.perf_counter() - t0


def _interconnect(s) -> dict | None:
    """The ``interconnect`` sub-dict of a parallel run: what the
    backend's data plane cost.  ``None`` on serial runs — serial
    exploration sends no messages and merges nothing."""
    if s.backend != "parallel":
        return None
    return {
        "msgs": s.cand_msgs,
        "msg_bytes": s.msg_bytes,
        "cand_suppressed": s.cand_suppressed,
        "merge_overlap_s": round(s.merge_overlap_s, 6),
        "merge_tail_s": round(s.merge_tail_s, 6),
    }


def _make_entry(
    result: ExploreResult, wall: float, mo: MetricsObserver, full_entry
) -> dict:
    opts, s = result.options, result.stats
    return {
        "policy": opts.policy,
        "coarsen": opts.coarsen,
        "sleep": opts.sleep,
        "backend": s.backend,
        "jobs": s.jobs,
        "shard_balance": (
            round(s.shard_balance, 4) if s.shard_balance is not None else None
        ),
        "configs": s.num_configs,
        "edges": s.num_edges,
        "expansions": s.expansions,
        "actions": s.actions_executed,
        "terminated": s.num_terminated,
        "deadlocks": s.num_deadlocks,
        "faults": s.num_faults,
        "truncated": s.truncated,
        "truncation_reason": s.truncation_reason,
        "peak_rss_bytes": s.peak_rss_bytes,
        "escalations": list(s.escalations),
        "wall_time_s": round(wall, 6),
        "result_digest": result_digest(result),
        "interconnect": _interconnect(s),
        "reduction_vs_full": (
            _ratio(full_entry["configs"], s.num_configs)
            if full_entry is not None
            else 1.0
        ),
        "edge_reduction_vs_full": (
            _ratio(full_entry["edges"], s.num_edges)
            if full_entry is not None
            else 1.0
        ),
        "results_match_full": not s.truncated,
        "metrics": _scalar_metrics(mo),
    }


def _sweep_program(
    name: str,
    make_program,
    combos: list[tuple[str, bool, bool]],
    *,
    max_configs: int,
    time_limit_s: float | None,
    jobs: tuple[int, ...] = (),
    progress,
    profiler=None,
) -> tuple[dict, list[str]]:
    """One program through the serial grid, then the parallel grid for
    each requested ``jobs`` value; returns (entries, truncated).

    Pure with respect to the report accumulators so a watchdog retry can
    simply rerun it.
    """
    program = make_program()
    entries: dict[str, dict] = {}
    truncated: list[str] = []
    baseline: _Baseline | None = None

    for policy, coarsen, sleep in combos:
        combo = _combo_name(policy, coarsen, sleep)
        opts = ExploreOptions(
            policy=policy,
            coarsen=coarsen,
            sleep=sleep,
            max_configs=max_configs,
            time_limit_s=time_limit_s,
        )
        mo = MetricsObserver()
        result, wall = _timed_explore(program, opts, (mo,), profiler)
        s = result.stats

        if combo == "full":
            baseline = _Baseline(
                stores=result.final_stores(),
                deadlocks=s.num_deadlocks,
                faults=frozenset(result.fault_messages()),
            )
        assert baseline is not None
        if s.truncated:
            # a truncated space has no complete result set to compare
            truncated.append(f"{name}/{combo}")
        else:
            _check_equivalence(name, combo, result, baseline)

        entry = _make_entry(result, wall, mo, entries.get("full"))
        entries[combo] = entry
        if progress is not None:
            progress(name, combo, entry)

    # the parallel grid: every entry is held to a *stricter* bar than
    # the serial policies — its graph must match the same serial combo
    # exactly (configs/edges), on top of the result-store invariant
    for j in jobs:
        for policy, coarsen, sleep in parallel_combos():
            opts = ExploreOptions(
                policy=policy,
                coarsen=coarsen,
                sleep=sleep,
                backend="parallel",
                jobs=j,
                max_configs=max_configs,
                time_limit_s=time_limit_s,
            )
            combo = opts.describe()
            mo = MetricsObserver()
            result, wall = _timed_explore(program, opts, (mo,), profiler)
            s = result.stats

            serial_twin = entries[_combo_name(policy, coarsen, sleep)]
            if s.truncated:
                truncated.append(f"{name}/{combo}")
            else:
                assert baseline is not None
                _check_equivalence(name, combo, result, baseline)
                if (
                    not serial_twin["truncated"]
                    and (s.num_configs, s.num_edges)
                    != (serial_twin["configs"], serial_twin["edges"])
                ):
                    raise DivergenceError(
                        f"parallel combo {combo!r} explored a different "
                        f"graph than its serial twin on {name!r}: "
                        f"{s.num_configs}/{s.num_edges} configs/edges vs "
                        f"{serial_twin['configs']}/{serial_twin['edges']}"
                    )

            entry = _make_entry(result, wall, mo, entries.get("full"))
            entries[combo] = entry
            if progress is not None:
                progress(name, combo, entry)

    return entries, truncated


def _scaling_sweep(
    jobs: tuple[int, ...], *, max_configs: int, profiler=None
) -> dict:
    """The ``scaling`` section: the philosophers family (too big for the
    corpus grid under ``full``) under ``stubborn+coarsen``, serial vs
    parallel at j1 plus every requested jobs value.  Wall-clock here is
    the headline jobs-vs-time table in EXPERIMENTS.md; configs/edges are
    the determinism check.  ``cpus`` records the host core count —
    speedups are only meaningful relative to it (a one-core container
    can never beat serial, however good the backend)."""
    import os

    from repro.programs.philosophers import philosophers

    scaling_jobs = tuple(dict.fromkeys((1,) + tuple(jobs)))
    section: dict = {
        "cpus": os.cpu_count(),
        "policy": "stubborn",
        "coarsen": True,
        "programs": {},
    }
    for n in (6, 7):
        program = philosophers(n)
        opts = ExploreOptions(
            policy="stubborn", coarsen=True, max_configs=max_configs
        )
        ser, serial_wall = _timed_explore(program, opts, (), profiler)
        runs = {
            "serial": {
                "configs": ser.stats.num_configs,
                "edges": ser.stats.num_edges,
                "wall_time_s": round(serial_wall, 6),
                "result_digest": result_digest(ser),
            }
        }
        for j in scaling_jobs:
            opts = ExploreOptions(
                policy="stubborn",
                coarsen=True,
                backend="parallel",
                jobs=j,
                max_configs=max_configs,
            )
            par, wall = _timed_explore(program, opts, (), profiler)
            if (par.stats.num_configs, par.stats.num_edges) != (
                ser.stats.num_configs,
                ser.stats.num_edges,
            ) or result_digest(par) != runs["serial"]["result_digest"]:
                raise DivergenceError(
                    f"parallel scaling run philosophers({n}) @j{j} "
                    f"diverges from serial"
                )
            runs[f"j{j}"] = {
                "configs": par.stats.num_configs,
                "edges": par.stats.num_edges,
                "wall_time_s": round(wall, 6),
                "result_digest": result_digest(par),
                "shard_balance": (
                    round(par.stats.shard_balance, 4)
                    if par.stats.shard_balance is not None
                    else None
                ),
                "steals": par.stats.steals,
                "interconnect": _interconnect(par.stats),
                "speedup_vs_serial": (
                    round(serial_wall / wall, 3) if wall else None
                ),
            }
        section["programs"][f"philosophers_{n}"] = runs
    return section


def run_bench(
    *,
    programs: list[str] | None = None,
    smoke: bool = False,
    max_configs: int = 200_000,
    time_limit_s: float | None = None,
    watchdog_s: float | None = None,
    jobs: list[int] | tuple[int, ...] = (),
    scaling: bool | None = None,
    serve_load: bool = False,
    schedules_bench: bool = False,
    corpus: dict | None = None,
    progress=None,
    profiler=None,
) -> BenchReport:
    """Sweep the corpus and build the benchmark document.

    Raises :class:`DivergenceError` on the first policy whose results
    differ from full exploration (soundness failure beats telemetry).

    ``watchdog_s`` bounds each program's sweep: on timeout (or any
    engine crash) the program is retried once, then recorded under
    ``errors`` and skipped.  ``corpus`` overrides the bundled program
    table (tests inject pathological programs this way).

    ``jobs`` extends the grid with the parallel backend at each given
    worker count; every parallel run must reproduce its serial twin's
    graph exactly.  ``scaling`` (default: only on non-smoke sweeps that
    request ``jobs``) adds the philosophers(6..7) jobs-vs-wallclock
    section.

    ``profiler`` (a :class:`cProfile.Profile`) accumulates a profile of
    every exploration cell; the CLI's ``--profile`` flag dumps it as a
    pstats artifact next to the JSON (see EXPERIMENTS.md, "The hot
    path").  Worker-process time of parallel cells is not captured —
    profile serial sweeps for hot-path analysis.
    """
    if corpus is None:
        from repro.programs.corpus import CORPUS as corpus  # noqa: N811

    if programs is None:
        programs = list(SMOKE_PROGRAMS) if smoke else sorted(corpus)
    unknown = [n for n in programs if n not in corpus]
    if unknown:
        raise ReproError(
            f"unknown corpus programs: {', '.join(unknown)}; "
            f"see 'repro corpus'"
        )
    jobs = tuple(dict.fromkeys(jobs))  # dedup, keep order
    if any(j < 1 for j in jobs):
        raise ReproError(f"jobs values must be >= 1, got {list(jobs)}")
    if scaling is None:
        scaling = bool(jobs) and not smoke

    combos = policy_combos()
    grid = [_combo_name(*c) for c in combos] + [
        ExploreOptions(
            policy=p, coarsen=c, sleep=s, backend="parallel", jobs=j
        ).describe()
        for j in jobs
        for p, c, s in parallel_combos()
    ]
    per_program: dict[str, dict] = {}
    errors: dict[str, str] = {}
    totals: dict[str, dict] = {
        combo: {"configs": 0, "edges": 0, "wall_time_s": 0.0} for combo in grid
    }
    truncated_runs: list[str] = []

    for name in programs:
        entries = None
        truncated: list[str] = []
        failure = ""
        for attempt in (1, 2):
            t0 = time.perf_counter()
            try:
                with _watchdog(watchdog_s):
                    entries, truncated = _sweep_program(
                        name,
                        corpus[name],
                        combos,
                        max_configs=max_configs,
                        time_limit_s=time_limit_s,
                        jobs=jobs,
                        progress=progress,
                        profiler=profiler,
                    )
                break
            except DivergenceError:
                raise  # soundness failure: abort the sweep, loudly
            except (WatchdogAlarm, Exception) as exc:
                failure = f"{type(exc).__name__}: {exc}"
                LOG.warning(
                    "bench program %r failed on attempt %d after %.2fs (%s)",
                    name, attempt, time.perf_counter() - t0, failure,
                )
        if entries is None:
            errors[name] = failure
            per_program[name] = {"error": failure, "attempts": 2}
            continue

        truncated_runs.extend(truncated)
        for combo, entry in entries.items():
            tot = totals[combo]
            tot["configs"] += entry["configs"]
            tot["edges"] += entry["edges"]
            tot["wall_time_s"] = round(
                tot["wall_time_s"] + entry["wall_time_s"], 6
            )
        per_program[name] = {"baseline": "full", "policies": entries}

    scaling_section = (
        _scaling_sweep(jobs, max_configs=max_configs, profiler=profiler)
        if scaling
        else {}
    )

    if truncated_runs:
        soundness = "truncated runs skipped equivalence check"
    elif errors:
        soundness = "errored programs skipped equivalence check"
    else:
        soundness = "all policies matched 'full' result configurations"
    document = {
        "schema": SCHEMA_VERSION,
        "metrics_schema": METRICS_SCHEMA_VERSION,
        "smoke": smoke,
        "max_configs": max_configs,
        "time_limit_s": time_limit_s,
        "watchdog_s": watchdog_s,
        "jobs": list(jobs),
        "policy_grid": grid,
        "programs": per_program,
        "totals": totals,
        "scaling": scaling_section,
        "truncated_runs": truncated_runs,
        "errors": errors,
        "soundness": soundness,
        "serve": run_serve_load(smoke=smoke) if serve_load else None,
        "schedules": (
            run_schedules_bench(smoke=smoke) if schedules_bench else None
        ),
        "progress": run_progress_overhead(),
    }
    return BenchReport(document=document)


def run_progress_overhead(*, iters: int = 50_000) -> dict:
    """The ``progress`` bench section: what the telemetry plane costs.

    Two microbenchmarks (ns per :meth:`~repro.progress.ProgressEmitter.due`
    tick on the quiet path, ns per emitted frame) plus an end-to-end
    comparison: the same exploration bare vs with an attached emitter
    whose interval never fires — the bounded-overhead contract the
    tentpole promises.  Entirely wall-clock; :func:`diff_reports`
    ignores it like the ``serve`` section.
    """
    from repro.programs.philosophers import philosophers
    from repro.progress import ProgressEmitter

    emitter = ProgressEmitter(interval_s=3600.0)
    t0 = time.perf_counter()
    for _ in range(iters):
        emitter.due()
    due_ns = (time.perf_counter() - t0) / iters * 1e9

    emitter = ProgressEmitter(every=1, record_wall=False)
    frames = max(iters // 10, 1)
    t0 = time.perf_counter()
    for i in range(frames):
        emitter.emit("bench", configs=i)
    emit_ns = (time.perf_counter() - t0) / frames * 1e9

    program = philosophers(3)
    opts = ExploreOptions(policy="stubborn", coarsen=True)
    _, bare_s = _timed_explore(program, opts)
    attached = ProgressEmitter(interval_s=3600.0)
    _, attached_s = _timed_explore(program, opts, (attached,))
    return {
        "due_ns_per_tick": round(due_ns, 1),
        "emit_ns_per_frame": round(emit_ns, 1),
        "explore_bare_s": round(bare_s, 6),
        "explore_attached_s": round(attached_s, 6),
        "attached_overhead_pct": (
            round((attached_s - bare_s) / bare_s * 100.0, 2)
            if bare_s else None
        ),
        # interval never fires: only the unconditional done frame lands
        "frames_emitted": attached.seq,
    }


def run_schedules_bench(*, smoke: bool = False) -> dict:
    """The ``schedules`` bench section: canonical equivalence-class
    counts and coverage accounting (:mod:`repro.schedules`) on the
    philosophers family under ``stubborn+coarsen`` with and without
    sleep sets, plus seeded-sample coverage at a few sizes.

    Everything except ``wall_time_s`` is deterministic (the sampler is
    seeded), but the section is optional and program sizes may change
    run to run, so :func:`diff_reports` ignores it wholesale — the
    replay differential in CI is the correctness gate, this section is
    the trajectory record.
    """
    from repro.programs.philosophers import philosophers
    from repro.schedules import generate, verify_set

    sizes = (3,) if smoke else (6, 7)
    sample_sizes = (8, 32)
    section: dict = {"policy": "stubborn", "coarsen": True, "programs": {}}
    for n in sizes:
        program = philosophers(n)
        runs: dict = {}
        for sleep in (False, True):
            opts = ExploreOptions(
                policy="stubborn", coarsen=True, sleep=sleep
            )
            result, _ = _timed_explore(program, opts)
            t0 = time.perf_counter()
            sset = generate(result)
            wall = time.perf_counter() - t0
            verify_set(result, sset)
            run = {
                "configs": result.stats.num_configs,
                "edges": sset.num_edges,
                "classes": sset.num_classes,
                "paths": sset.num_paths,
                "edge_coverage": round(sset.edge_coverage, 4),
                "cycles_skipped": sset.cycles_skipped,
                "wall_time_s": round(wall, 6),
                "samples": {},
            }
            for k in sample_sizes:
                sampled = generate(result, sample=k, seed=0)
                run["samples"][f"n{k}"] = {
                    "classes": sampled.num_classes,
                    "edge_coverage": round(sampled.edge_coverage, 4),
                }
            runs["stubborn+sleep" if sleep else "stubborn"] = run
        section["programs"][f"philosophers_{n}"] = runs
    return section


def run_serve_load(
    *,
    programs: tuple[str, ...] = ("philosophers_3", "mutex_counter",
                                 "fig2_shasha_snir"),
    clients: int = 6,
    smoke: bool = False,
    max_configs: int = 50_000,
) -> dict:
    """Load-bench the analysis service (the ``serve`` bench section).

    Starts a throwaway server on a unix socket, fires *clients*
    concurrent submissions over *programs* (so identical in-flight
    requests coalesce), then replays the same batch against the now-warm
    store.  Reports cold vs warm wall-clock plus the server's own
    counters.  Everything here is wall-clock-dependent except
    ``digests_stable`` (warm results must be byte-identical to cold) —
    :func:`diff_reports` ignores the section wholesale.
    """
    import asyncio
    import concurrent.futures
    import os
    import tempfile

    from repro.serve import ReproServer, ResultStore, ServeOptions, request

    if smoke:
        programs = programs[:2]
        clients = 4

    def batch(address, pool):
        reqs = [
            {
                "op": "submit",
                "program": {"kind": "corpus", "name": programs[i % len(programs)]},
                "options": {"policy": "stubborn", "coarsen": True,
                            "max_configs": max_configs},
            }
            for i in range(clients)
        ]
        t0 = time.perf_counter()
        out = list(pool.map(lambda r: request(address, r), reqs))
        return time.perf_counter() - t0, out

    async def drive(root):
        store = ResultStore(os.path.join(root, "store"))
        address = os.path.join(root, "serve.sock")
        server = ReproServer(
            store, ServeOptions(max_pending=clients + 2, max_active=2)
        )
        serving = asyncio.ensure_future(server.serve(address))
        loop = asyncio.get_running_loop()
        with concurrent.futures.ThreadPoolExecutor(clients) as pool:
            for _ in range(200):  # wait for the socket to bind
                if os.path.exists(address):
                    break
                await asyncio.sleep(0.01)
            cold_s, cold = await loop.run_in_executor(
                None, batch, address, pool
            )
            warm_s, warm = await loop.run_in_executor(
                None, batch, address, pool
            )
            await loop.run_in_executor(
                None, request, address, {"op": "shutdown"}
            )
        await serving
        digests = lambda rs: [r.get("result_digest") for r in rs]  # noqa: E731
        return {
            "programs": list(programs),
            "clients": clients,
            "cold_wall_s": round(cold_s, 6),
            "warm_wall_s": round(warm_s, 6),
            "all_ok": all(r.get("ok") for r in cold + warm),
            "digests_stable": digests(cold) == digests(warm),
            "warm_store_hits": store.hits,
            "coalesced": server.counters["serve.coalesced"],
            "shed": server.counters["serve.shed"],
            "jobs_completed": server.counters["serve.jobs_completed"],
        }

    with tempfile.TemporaryDirectory() as root:
        return asyncio.run(drive(root))


def write_report(report: BenchReport, out_path: str) -> None:
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report.document, fh, indent=2, sort_keys=False)
        fh.write("\n")


def upgrade_document(doc: dict) -> dict:
    """Normalize a bench document to the current schema in place.

    ``/1`` documents (the PR-1 baseline) lack ``errors``/``watchdog_s``
    and the per-entry resilience fields; ``/2`` additionally lacks the
    backend/jobs/digest fields and the ``scaling`` section.  All are
    filled with neutral defaults so downstream tooling reads one shape
    (``result_digest: None`` means "not recorded" and is skipped by
    :func:`diff_reports`).  Unknown schemas raise :class:`ReproError`.
    """
    schema = doc.get("schema")
    if schema not in COMPATIBLE_SCHEMAS:
        raise ReproError(
            f"unsupported bench schema {schema!r}; "
            f"this reader speaks {', '.join(COMPATIBLE_SCHEMAS)}"
        )
    doc.setdefault("errors", {})
    doc.setdefault("watchdog_s", None)
    doc.setdefault("jobs", [])
    doc.setdefault("scaling", {})
    doc.setdefault("serve", None)
    doc.setdefault("schedules", None)
    doc.setdefault("progress", None)
    scaling = doc["scaling"]
    if scaling and "programs" not in scaling:
        # /3 layout: a bare name -> runs map, stubborn without coarsen,
        # no host-cpus record, no per-run steals
        doc["scaling"] = scaling = {
            "cpus": None,
            "policy": "stubborn",
            "coarsen": False,
            "programs": scaling,
        }
    for runs in scaling.get("programs", {}).values():
        for run_name, run in runs.items():
            if run_name != "serial":
                run.setdefault("steals", None)
                run.setdefault("interconnect", None)
    for prog in doc.get("programs", {}).values():
        for entry in prog.get("policies", {}).values():
            entry.setdefault("truncation_reason", None)
            entry.setdefault("peak_rss_bytes", 0)
            entry.setdefault("escalations", [])
            entry.setdefault("backend", "serial")
            entry.setdefault("jobs", 1)
            entry.setdefault("shard_balance", None)
            entry.setdefault("result_digest", None)
            entry.setdefault("interconnect", None)
    return doc


def load_report(path: str) -> dict:
    """Read a ``BENCH_*.json`` document, accepting any compatible
    schema (see :func:`upgrade_document`)."""
    with open(path, "r", encoding="utf-8") as fh:
        return upgrade_document(json.load(fh))


#: Per-entry fields that must be bit-identical run to run — everything
#: except wall-clock, RSS, and the derived telemetry scalars.
DETERMINISTIC_FIELDS = (
    "policy",
    "coarsen",
    "sleep",
    "backend",
    "jobs",
    "shard_balance",
    "configs",
    "edges",
    "expansions",
    "actions",
    "terminated",
    "deadlocks",
    "faults",
    "truncated",
    "truncation_reason",
    "escalations",
    "result_digest",
    "reduction_vs_full",
    "edge_reduction_vs_full",
    "results_match_full",
)


def diff_reports(new: dict, baseline: dict) -> list[str]:
    """Compare two (upgraded) bench documents over the intersection of
    their ``(program, combo)`` entries; return human-readable drift
    lines, empty when the deterministic fields all agree.

    Exploration is deterministic by contract, so any drift in counts or
    result digests between a fresh run and the checked-in baseline is a
    real behavior change, not noise.  Wall-clock, RSS, the telemetry
    scalars, the optional ``serve``/``schedules`` sections, the ``/8``
    ``interconnect`` sub-dicts (message counts and merge-overlap
    timings follow worker scheduling, not program semantics), and
    entries present on only one side (corpus growth, new jobs values)
    are ignored — :data:`DETERMINISTIC_FIELDS` is a whitelist, so new
    wall-clock fields stay ignored by construction.
    ``max_configs``/``time_limit_s`` must match — truncation points
    depend on them.
    """
    drift: list[str] = []
    for knob in ("max_configs", "time_limit_s"):
        if new.get(knob) != baseline.get(knob):
            drift.append(
                f"{knob} differs (new={new.get(knob)!r} "
                f"baseline={baseline.get(knob)!r}); runs not comparable"
            )
    if drift:
        return drift

    shared_programs = sorted(
        set(new.get("programs", {})) & set(baseline.get("programs", {}))
    )
    compared = 0
    for name in shared_programs:
        new_prog = new["programs"][name]
        base_prog = baseline["programs"][name]
        if "error" in new_prog or "error" in base_prog:
            continue
        shared_combos = sorted(
            set(new_prog["policies"]) & set(base_prog["policies"])
        )
        for combo in shared_combos:
            ne, be = new_prog["policies"][combo], base_prog["policies"][combo]
            for fieldname in DETERMINISTIC_FIELDS:
                if fieldname not in ne or fieldname not in be:
                    continue  # field predates one document's schema
                nv, bv = ne.get(fieldname), be.get(fieldname)
                if fieldname == "result_digest" and (nv is None or bv is None):
                    continue  # pre-/3 baseline: digest not recorded
                if nv != bv:
                    drift.append(
                        f"{name}/{combo}: {fieldname} {bv!r} -> {nv!r}"
                    )
            compared += 1
    if compared == 0:
        drift.append(
            "no overlapping (program, combo) entries; nothing compared"
        )
    return drift


def format_summary(report: BenchReport) -> str:
    """Human-readable trajectory table (per-combo totals)."""
    doc = report.document
    lines = [
        f"bench schema={doc['schema']} programs={len(doc['programs'])} "
        f"grid={len(doc['policy_grid'])} combos"
    ]
    full_total = doc["totals"]["full"]["configs"]
    header = f"{'combo':<28} {'configs':>9} {'edges':>9} {'vs full':>8} {'wall s':>8}"
    lines.append(header)
    lines.append("-" * len(header))
    for combo in doc["policy_grid"]:
        tot = doc["totals"][combo]
        ratio = full_total / tot["configs"] if tot["configs"] else 0.0
        lines.append(
            f"{combo:<28} {tot['configs']:>9} {tot['edges']:>9} "
            f"{ratio:>7.2f}x {tot['wall_time_s']:>8.3f}"
        )
    if doc["truncated_runs"]:
        lines.append(f"truncated (equivalence skipped): {doc['truncated_runs']}")
    scaling = doc.get("scaling", {})
    if scaling:
        lines.append(
            f"scaling grid: {scaling.get('policy', 'stubborn')}"
            f"{'+coarsen' if scaling.get('coarsen') else ''} "
            f"on {scaling.get('cpus')} cpus"
        )
    for name, runs in scaling.get("programs", {}).items():
        parts = []
        for run_name, run in runs.items():
            extra = (
                f" ({run['speedup_vs_serial']}x)"
                if run.get("speedup_vs_serial") is not None
                else ""
            )
            parts.append(f"{run_name}={run['wall_time_s']:.3f}s{extra}")
        lines.append(
            f"scaling {name}: configs={runs['serial']['configs']} "
            + " ".join(parts)
        )
    for name, message in doc.get("errors", {}).items():
        lines.append(f"ERROR {name}: {message}")
    lines.append(doc["soundness"])
    return "\n".join(lines)
