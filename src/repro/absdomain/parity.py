"""The parity domain: subsets of {even, odd}."""

from __future__ import annotations

from repro.absdomain.lattice import Element, NumDomain

EVEN = "even"
ODD = "odd"
_ALL = frozenset((EVEN, ODD))


def parity_of(n: int) -> str:
    return EVEN if n % 2 == 0 else ODD


class ParityDomain(NumDomain):
    """Four-element powerset lattice over {even, odd}."""

    name = "parity"

    @property
    def bottom(self) -> Element:
        return frozenset()

    @property
    def top(self) -> Element:
        return _ALL

    def leq(self, a, b) -> bool:
        return a <= b

    def join(self, a, b):
        return a | b

    def meet(self, a, b):
        return a & b

    def abstract(self, n: int) -> Element:
        return frozenset((parity_of(n),))

    def contains(self, a, n: int) -> bool:
        return parity_of(n) in a

    _ADD = {
        (EVEN, EVEN): EVEN,
        (EVEN, ODD): ODD,
        (ODD, EVEN): ODD,
        (ODD, ODD): EVEN,
    }
    _MUL = {
        (EVEN, EVEN): EVEN,
        (EVEN, ODD): EVEN,
        (ODD, EVEN): EVEN,
        (ODD, ODD): ODD,
    }

    def binop(self, op, a, b):
        if not a or not b:
            return self.bottom
        if op in ("+", "-"):
            return frozenset(self._ADD[(x, y)] for x in a for y in b)
        if op == "*":
            return frozenset(self._MUL[(x, y)] for x in a for y in b)
        if op in ("==", "!="):
            # disjoint parities refute equality; otherwise unknown
            if not (a & b):
                return self.abstract(0) if op == "==" else self.abstract(1)
            return self._bool_top()
        if op in ("<", "<=", ">", ">=", "/", "%", "&&", "||"):
            return self._bool_top() if op in ("<", "<=", ">", ">=", "&&", "||") else self.top
        return self.top

    def _bool_top(self):
        return self.abstract_all((0, 1))

    def unop(self, op, a):
        if not a:
            return self.bottom
        if op == "-":
            return a
        if op == "!":
            return self._bool_top()
        return self.top

    def truth(self, a):
        if not a:
            return (False, False)
        may_false = EVEN in a  # 0 is even
        may_true = True  # every parity class has nonzero members
        return (may_true, may_false)
