"""Direct products of numeric domains.

A cartesian (non-reduced) product: each component abstracts the value
independently; precision is the componentwise meet of the factors.
E.g. ``ProductDomain(IntervalDomain(), ParityDomain())`` tracks range
and parity at once.  (A *reduced* product would propagate information
between components; we keep the direct product and note the difference
in the docs — the framework point of §6 is the *choice* of abstraction,
not maximal precision.)
"""

from __future__ import annotations

from repro.absdomain.lattice import Element, NumDomain


class ProductDomain(NumDomain):
    """Componentwise product of two or more numeric domains."""

    def __init__(self, *factors: NumDomain):
        if len(factors) < 2:
            raise ValueError("product needs at least two factors")
        self.factors = factors
        self.name = "x".join(f.name for f in factors)

    @property
    def bottom(self) -> Element:
        return tuple(f.bottom for f in self.factors)

    @property
    def top(self) -> Element:
        return tuple(f.top for f in self.factors)

    def leq(self, a, b) -> bool:
        return all(f.leq(x, y) for f, x, y in zip(self.factors, a, b))

    def join(self, a, b):
        return tuple(f.join(x, y) for f, x, y in zip(self.factors, a, b))

    def meet(self, a, b):
        return tuple(f.meet(x, y) for f, x, y in zip(self.factors, a, b))

    def widen(self, old, new):
        return tuple(f.widen(x, y) for f, x, y in zip(self.factors, old, new))

    def abstract(self, n: int) -> Element:
        return tuple(f.abstract(n) for f in self.factors)

    def contains(self, a, n: int) -> bool:
        return all(f.contains(x, n) for f, x in zip(self.factors, a))

    def binop(self, op, a, b):
        return tuple(
            f.binop(op, x, y) for f, x, y in zip(self.factors, a, b)
        )

    def unop(self, op, a):
        return tuple(f.unop(op, x) for f, x in zip(self.factors, a))

    def truth(self, a):
        # a value may be nonzero/zero only if *every* component allows it
        may_true = all(f.truth(x)[0] for f, x in zip(self.factors, a))
        may_false = all(f.truth(x)[1] for f, x in zip(self.factors, a))
        return (may_true, may_false)

    def cmp_range(self, op: str, c: int) -> Element:
        return tuple(f.cmp_range(op, c) for f in self.factors)
