"""The k-bounded set domain: small finite sets of integers, else ⊤.

A strictly more precise refinement of the flat constant domain: joins
keep *sets* of possible values until the set would exceed *k*, then
give up to ⊤.  ``join(0, 1)`` stays ``{0, 1}`` — exactly the kind of
value a racy flag takes — so analyses over it can still decide both
truth values precisely where the flat domain degrades to ⊤.

Operations are computed by enumeration over the member sets (exact),
falling back to ⊤ when an operand is ⊤ or a concrete operation faults.
"""

from __future__ import annotations

from repro.absdomain.concrete_ops import apply_binop, apply_unop
from repro.absdomain.lattice import Element, NumDomain

TOP = ("top",)


class KSetDomain(NumDomain):
    """Sets of at most *k* integers, with ⊤ above them."""

    def __init__(self, k: int = 4):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.name = f"kset{k}"

    @property
    def bottom(self) -> Element:
        return frozenset()

    @property
    def top(self) -> Element:
        return TOP

    def _norm(self, s: frozenset) -> Element:
        return TOP if len(s) > self.k else frozenset(s)

    def leq(self, a, b) -> bool:
        if b == TOP:
            return True
        if a == TOP:
            return False
        return a <= b

    def join(self, a, b):
        if a == TOP or b == TOP:
            return TOP
        return self._norm(a | b)

    def meet(self, a, b):
        if a == TOP:
            return b
        if b == TOP:
            return a
        return a & b

    def abstract(self, n: int) -> Element:
        return frozenset((n,))

    def contains(self, a, n: int) -> bool:
        if a == TOP:
            return True
        return n in a

    def binop(self, op, a, b):
        if a == self.bottom or b == self.bottom:
            return self.bottom
        if a == TOP or b == TOP:
            if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                return self._norm(frozenset((0, 1)))
            return TOP
        out = set()
        for x in a:
            for y in b:
                v = apply_binop(op, x, y)
                if v is None:
                    return TOP  # a faulting combination: stay safe
                out.add(v)
                if len(out) > self.k:
                    return TOP
        return frozenset(out)

    def unop(self, op, a):
        if a == self.bottom:
            return self.bottom
        if a == TOP:
            if op == "!":
                return self._norm(frozenset((0, 1)))
            return TOP
        out = set()
        for x in a:
            v = apply_unop(op, x)
            if v is None:
                return TOP
            out.add(v)
        return self._norm(frozenset(out))

    def truth(self, a):
        if a == self.bottom:
            return (False, False)
        if a == TOP:
            return (True, True)
        return (any(x != 0 for x in a), 0 in a)

    def cmp_range(self, op, c: int):
        if op == "==":
            return self.abstract(c)
        return TOP

    def refine(self, old, op, c: int):
        """Exact refinement by member filtering (sets are enumerable)."""
        if old == TOP:
            return self.meet(old, self.cmp_range(op, c))
        kept = set()
        for x in old:
            v = apply_binop(op, x, c)
            if v is None or v:
                kept.add(x)
        return frozenset(kept)
