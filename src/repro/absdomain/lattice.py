"""Lattice framework for abstract interpretation ([CC77], paper §3).

A *domain* object bundles the lattice structure (⊑, ⊔, ⊓, ⊥, ⊤,
widening) and the abstract transfer functions over its *elements*
(plain hashable Python values).  Keeping elements as values — rather
than objects with methods — makes abstract stores cheap to hash and
compare, which the folding driver depends on.

Every numeric domain also exposes the Galois-connection side needed by
the soundness tests:

- ``abstract(n)`` — α of a single concrete integer;
- ``contains(a, n)`` — is ``n ∈ γ(a)``; and
- ``truth(a)`` — may the value be nonzero / zero (drives abstract
  branching).

The laws (partial order, lub/glb, monotonicity, α/γ soundness,
widening stabilization) are exercised by hypothesis property tests.
"""

from __future__ import annotations

from typing import Hashable, Iterable

Element = Hashable


class NumDomain:
    """Base class for abstract numeric domains over the integers."""

    name = "num"

    # -- lattice structure ---------------------------------------------

    @property
    def bottom(self) -> Element:
        raise NotImplementedError

    @property
    def top(self) -> Element:
        raise NotImplementedError

    def leq(self, a: Element, b: Element) -> bool:
        raise NotImplementedError

    def join(self, a: Element, b: Element) -> Element:
        raise NotImplementedError

    def meet(self, a: Element, b: Element) -> Element:
        raise NotImplementedError

    def widen(self, old: Element, new: Element) -> Element:
        """Widening; defaults to join (finite-height domains)."""
        return self.join(old, new)

    # -- Galois connection ----------------------------------------------

    def abstract(self, n: int) -> Element:
        raise NotImplementedError

    def abstract_all(self, ns: Iterable[int]) -> Element:
        out = self.bottom
        for n in ns:
            out = self.join(out, self.abstract(n))
        return out

    def contains(self, a: Element, n: int) -> bool:
        raise NotImplementedError

    # -- transfer functions ----------------------------------------------

    def const(self, n: int) -> Element:
        return self.abstract(n)

    def binop(self, op: str, a: Element, b: Element) -> Element:
        raise NotImplementedError

    def unop(self, op: str, a: Element) -> Element:
        raise NotImplementedError

    def truth(self, a: Element) -> tuple[bool, bool]:
        """``(may_be_nonzero, may_be_zero)`` — both False only for ⊥."""
        raise NotImplementedError

    def cmp_range(self, op: str, c: int) -> Element:
        """An element covering ``{x : x op c}`` — used to *refine* a
        value through a passed guard (``assume``/branch conditions).
        The default is exact for ``==`` and gives up (⊤) otherwise;
        ordered domains override with real ranges."""
        if op == "==":
            return self.abstract(c)
        return self.top

    def refine(self, old: Element, op: str, c: int) -> Element:
        """Refine *old* knowing ``old op c`` holds.  Default: meet with
        :meth:`cmp_range`; enumerable domains override with exact member
        filtering."""
        return self.meet(old, self.cmp_range(op, c))

    # -- helpers -----------------------------------------------------------

    def is_bottom(self, a: Element) -> bool:
        return a == self.bottom

    def bool_of(self, may_true: bool, may_false: bool) -> Element:
        """Abstract a comparison result known only as may-true/may-false."""
        out = self.bottom
        if may_true:
            out = self.join(out, self.abstract(1))
        if may_false:
            out = self.join(out, self.abstract(0))
        return out


class FiniteEnumMixin:
    """Mixin for small finite domains: derives binop by enumeration.

    Subclasses provide ``concretize(a) -> frozenset[int] | None`` (None
    for unbounded elements) and ``abstract_all``; when both operands
    concretize finitely, any operation is computed exactly.
    """

    _ENUM_LIMIT = 64

    def concretize(self, a: Element):  # pragma: no cover - interface
        raise NotImplementedError

    def _enum_binop(self, op: str, a: Element, b: Element):
        from repro.absdomain.concrete_ops import apply_binop

        ca = self.concretize(a)
        cb = self.concretize(b)
        if ca is None or cb is None:
            return None
        if len(ca) * len(cb) > self._ENUM_LIMIT:
            return None
        outs = []
        for x in ca:
            for y in cb:
                v = apply_binop(op, x, y)
                if v is None:
                    return None  # a possible fault; stay conservative
                outs.append(v)
        return self.abstract_all(outs)
