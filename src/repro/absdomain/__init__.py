"""Abstract domains: lattices, numeric value domains, abstract values.

Available numeric domains (all :class:`~repro.absdomain.lattice.NumDomain`):

- :class:`~repro.absdomain.flat.FlatConstDomain` — constants;
- :class:`~repro.absdomain.sign.SignDomain` — signs {-,0,+};
- :class:`~repro.absdomain.interval.IntervalDomain` — intervals with
  widening/narrowing;
- :class:`~repro.absdomain.parity.ParityDomain` — parities;
- :class:`~repro.absdomain.product.ProductDomain` — direct products.

:class:`~repro.absdomain.absvalue.AbsValueDomain` lifts any of them to
full abstract values (numbers × pointers × functions).
"""

from repro.absdomain.absvalue import AbsValue, AbsValueDomain
from repro.absdomain.flat import FlatConstDomain
from repro.absdomain.interval import IntervalDomain
from repro.absdomain.kset import KSetDomain
from repro.absdomain.lattice import NumDomain
from repro.absdomain.parity import ParityDomain
from repro.absdomain.product import ProductDomain
from repro.absdomain.sign import SignDomain

__all__ = [
    "AbsValue",
    "AbsValueDomain",
    "FlatConstDomain",
    "IntervalDomain",
    "KSetDomain",
    "NumDomain",
    "ParityDomain",
    "ProductDomain",
    "SignDomain",
]
