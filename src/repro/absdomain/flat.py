"""The flat constant domain (constant propagation, Kildall).

Elements: ``BOT`` ⊑ ``("c", n)`` ⊑ ``TOP``.  The domain behind the
paper's §7 constant-propagation application: a variable is a known
constant at a point iff its abstract value is ``("c", n)`` there.
"""

from __future__ import annotations

from repro.absdomain.concrete_ops import apply_binop, apply_unop
from repro.absdomain.lattice import Element, NumDomain

BOT = ("bot",)
TOP = ("top",)


class FlatConstDomain(NumDomain):
    """Flat lattice of integer constants."""

    name = "const"

    @property
    def bottom(self) -> Element:
        return BOT

    @property
    def top(self) -> Element:
        return TOP

    def leq(self, a, b) -> bool:
        return a == BOT or b == TOP or a == b

    def join(self, a, b):
        if a == BOT:
            return b
        if b == BOT:
            return a
        if a == b:
            return a
        return TOP

    def meet(self, a, b):
        if a == TOP:
            return b
        if b == TOP:
            return a
        if a == b:
            return a
        return BOT

    def abstract(self, n: int) -> Element:
        return ("c", n)

    def contains(self, a, n: int) -> bool:
        if a == TOP:
            return True
        if a == BOT:
            return False
        return a[1] == n

    def binop(self, op, a, b):
        if a == BOT or b == BOT:
            return BOT
        if a == TOP or b == TOP:
            # comparisons stay boolean-shaped even on TOP
            if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                return TOP
            return TOP
        v = apply_binop(op, a[1], b[1])
        return TOP if v is None else ("c", v)

    def unop(self, op, a):
        if a in (BOT, TOP):
            return a
        v = apply_unop(op, a[1])
        return TOP if v is None else ("c", v)

    def truth(self, a):
        if a == BOT:
            return (False, False)
        if a == TOP:
            return (True, True)
        return (a[1] != 0, a[1] == 0)

    def value_of(self, a) -> int | None:
        """The known constant, or None."""
        return a[1] if isinstance(a, tuple) and a[0] == "c" else None
