"""The interval domain with widening ([CC77]'s running example).

Elements: ``("bot",)`` or ``(lo, hi)`` with ``lo ∈ ℤ ∪ {None}`` (None =
−∞) and ``hi ∈ ℤ ∪ {None}`` (None = +∞), ``lo ≤ hi`` when both finite.
The only infinite-height domain in the library — the one that makes the
widening machinery of the folding driver observable.
"""

from __future__ import annotations

from repro.absdomain.lattice import Element, NumDomain

BOT = ("bot",)
TOP = (None, None)


def _le(a: int | None, b: int | None, *, neg_inf_left: bool) -> bool:
    """lo-side/hi-side comparisons with None as ∓∞."""
    if a is None:
        return neg_inf_left
    if b is None:
        return not neg_inf_left
    return a <= b


def _min_lo(a, b):
    if a is None or b is None:
        return None
    return min(a, b)


def _max_hi(a, b):
    if a is None or b is None:
        return None
    return max(a, b)


def _max_lo(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _min_hi(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


class IntervalDomain(NumDomain):
    """Closed integer intervals with ±∞ bounds."""

    name = "interval"

    @property
    def bottom(self) -> Element:
        return BOT

    @property
    def top(self) -> Element:
        return TOP

    def make(self, lo: int | None, hi: int | None) -> Element:
        if lo is not None and hi is not None and lo > hi:
            return BOT
        return (lo, hi)

    def leq(self, a, b) -> bool:
        if a == BOT:
            return True
        if b == BOT:
            return False
        (alo, ahi), (blo, bhi) = a, b
        lo_ok = blo is None or (alo is not None and blo <= alo)
        hi_ok = bhi is None or (ahi is not None and ahi <= bhi)
        return lo_ok and hi_ok

    def join(self, a, b):
        if a == BOT:
            return b
        if b == BOT:
            return a
        return (_min_lo(a[0], b[0]), _max_hi(a[1], b[1]))

    def meet(self, a, b):
        if a == BOT or b == BOT:
            return BOT
        return self.make(_max_lo(a[0], b[0]), _min_hi(a[1], b[1]))

    def widen(self, old, new):
        """Standard interval widening: unstable bounds jump to ∞."""
        if old == BOT:
            return new
        if new == BOT:
            return old
        lo = old[0]
        if old[0] is not None and (new[0] is None or new[0] < old[0]):
            lo = None
        hi = old[1]
        if old[1] is not None and (new[1] is None or new[1] > old[1]):
            hi = None
        return (lo, hi)

    def narrow(self, old, new):
        """Standard narrowing: refine only infinite bounds."""
        if old == BOT or new == BOT:
            return BOT
        lo = new[0] if old[0] is None else old[0]
        hi = new[1] if old[1] is None else old[1]
        return self.make(lo, hi)

    def abstract(self, n: int) -> Element:
        return (n, n)

    def contains(self, a, n: int) -> bool:
        if a == BOT:
            return False
        lo, hi = a
        return (lo is None or lo <= n) and (hi is None or n <= hi)

    # -- transfer ---------------------------------------------------------

    def binop(self, op, a, b):
        if a == BOT or b == BOT:
            return BOT
        (alo, ahi), (blo, bhi) = a, b
        if op == "+":
            return self.make(
                None if alo is None or blo is None else alo + blo,
                None if ahi is None or bhi is None else ahi + bhi,
            )
        if op == "-":
            return self.make(
                None if alo is None or bhi is None else alo - bhi,
                None if ahi is None or blo is None else ahi - blo,
            )
        if op == "*":
            return self._mul(a, b)
        if op in ("/", "%"):
            # precise enough for the corpus: exact when b is a nonzero
            # constant, ⊤-width fallback otherwise
            return self._divmod(op, a, b)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._compare(op, a, b)
        if op in ("&&", "||"):
            ta, fa = self.truth(a)
            tb, fb = self.truth(b)
            if op == "&&":
                return self.bool_of(ta and tb, fa or fb)
            return self.bool_of(ta or tb, fa and fb)
        return TOP

    def _mul(self, a, b):
        def mul(x, y):
            if x is None or y is None:
                # sign-aware infinity handling is overkill here; any
                # infinite bound makes the product unbounded on that side
                return None
            return x * y

        candidates = [mul(a[0], b[0]), mul(a[0], b[1]), mul(a[1], b[0]), mul(a[1], b[1])]
        if any(c is None for c in candidates):
            return TOP
        return self.make(min(candidates), max(candidates))

    def _divmod(self, op, a, b):
        from repro.absdomain.concrete_ops import apply_binop

        if b[0] is not None and b[0] == b[1] and b[0] != 0 and a[0] is not None and a[1] is not None:
            vals = [apply_binop(op, x, b[0]) for x in range(a[0], a[1] + 1)] if a[1] - a[0] <= 64 else None
            if vals is not None:
                return self.make(min(vals), max(vals))
            if op == "%":
                # C-style remainder is not monotone in the dividend, so
                # probing the endpoints is unsound for wide dividends
                # (e.g. [-34, 31] % 2 hits -1, outside [-34%2, 31%2]).
                # Fall back to the full remainder range: magnitude below
                # |b|, sign following the dividend.
                m = abs(b[0]) - 1
                return self.make(-m if a[0] < 0 else 0, m if a[1] > 0 else 0)
            # truncating division is monotone in the dividend, so the
            # endpoint probe is exact here
            lo = apply_binop(op, a[0], b[0])
            hi = apply_binop(op, a[1], b[0])
            assert lo is not None and hi is not None
            return self.make(min(lo, hi, 0), max(lo, hi, 0))
        return TOP

    def _compare(self, op, a, b):
        (alo, ahi), (blo, bhi) = a, b

        def lt_always():  # a < b for all members
            return ahi is not None and blo is not None and ahi < blo

        def gt_always():
            return alo is not None and bhi is not None and alo > bhi

        def le_always():
            return ahi is not None and blo is not None and ahi <= blo

        def ge_always():
            return alo is not None and bhi is not None and alo >= bhi

        def eq_always():
            return (
                alo is not None
                and alo == ahi == blo == bhi
            )

        def disjoint():
            return lt_always() or gt_always()

        if op == "==":
            if eq_always():
                return self.abstract(1)
            if disjoint():
                return self.abstract(0)
            return self.bool_of(True, True)
        if op == "!=":
            if eq_always():
                return self.abstract(0)
            if disjoint():
                return self.abstract(1)
            return self.bool_of(True, True)
        if op == "<":
            if lt_always():
                return self.abstract(1)
            if ge_always():
                return self.abstract(0)
            return self.bool_of(True, True)
        if op == "<=":
            if le_always():
                return self.abstract(1)
            if gt_always():
                return self.abstract(0)
            return self.bool_of(True, True)
        if op == ">":
            if gt_always():
                return self.abstract(1)
            if le_always():
                return self.abstract(0)
            return self.bool_of(True, True)
        if op == ">=":
            if ge_always():
                return self.abstract(1)
            if lt_always():
                return self.abstract(0)
            return self.bool_of(True, True)
        raise AssertionError(op)

    def cmp_range(self, op, c: int):
        if op == "==":
            return (c, c)
        if op == "<":
            return (None, c - 1)
        if op == "<=":
            return (None, c)
        if op == ">":
            return (c + 1, None)
        if op == ">=":
            return (c, None)
        return TOP  # != cannot be expressed as one interval

    def unop(self, op, a):
        if a == BOT:
            return BOT
        if op == "-":
            lo = None if a[1] is None else -a[1]
            hi = None if a[0] is None else -a[0]
            return self.make(lo, hi)
        if op == "!":
            t, f = self.truth(a)
            return self.bool_of(f, t)
        return TOP

    def truth(self, a):
        if a == BOT:
            return (False, False)
        may_false = self.contains(a, 0)
        lo, hi = a
        may_true = not (lo == 0 and hi == 0)
        return (may_true, may_false)
