"""Concrete integer operations shared by the abstract domains.

The single source of truth for operator semantics on integers — kept in
sync with :mod:`repro.semantics.eval` (C-style truncating division).
Returns ``None`` where the concrete operation would fault, so enumerating
domains can fall back to ⊤ conservatively.
"""

from __future__ import annotations


def c_div(lhs: int, rhs: int) -> int:
    q = abs(lhs) // abs(rhs)
    return q if (lhs < 0) == (rhs < 0) else -q


def c_mod(lhs: int, rhs: int) -> int:
    return lhs - rhs * c_div(lhs, rhs)


def apply_binop(op: str, lhs: int, rhs: int) -> int | None:
    """Concrete binary operation; None when it would fault."""
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        return None if rhs == 0 else c_div(lhs, rhs)
    if op == "%":
        return None if rhs == 0 else c_mod(lhs, rhs)
    if op == "==":
        return int(lhs == rhs)
    if op == "!=":
        return int(lhs != rhs)
    if op == "<":
        return int(lhs < rhs)
    if op == "<=":
        return int(lhs <= rhs)
    if op == ">":
        return int(lhs > rhs)
    if op == ">=":
        return int(lhs >= rhs)
    if op == "&&":
        return int(bool(lhs) and bool(rhs))
    if op == "||":
        return int(bool(lhs) or bool(rhs))
    return None


def apply_unop(op: str, v: int) -> int | None:
    if op == "-":
        return -v
    if op == "!":
        return 0 if v else 1
    return None
