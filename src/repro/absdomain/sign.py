"""The signs domain: subsets of {-, 0, +}.

The classic first example of abstract interpretation; elements are
frozensets of the tokens ``"-"``, ``"0"``, ``"+"`` — an eight-element
powerset lattice.
"""

from __future__ import annotations

from repro.absdomain.concrete_ops import apply_binop
from repro.absdomain.lattice import Element, FiniteEnumMixin, NumDomain

NEG = "-"
ZERO = "0"
POS = "+"

_ALL = frozenset((NEG, ZERO, POS))

#: Representative concrete values per sign (for enumeration-based ops —
#: sound for the sign of the result only where sign is representative-
#: independent; the table methods below handle the rest).
_REPS = {NEG: (-1, -2), ZERO: (0,), POS: (1, 2)}


def sign_of(n: int) -> str:
    return ZERO if n == 0 else (POS if n > 0 else NEG)


class SignDomain(FiniteEnumMixin, NumDomain):
    """Powerset-of-signs lattice with table-driven transfer functions."""

    name = "sign"

    @property
    def bottom(self) -> Element:
        return frozenset()

    @property
    def top(self) -> Element:
        return _ALL

    def leq(self, a, b) -> bool:
        return a <= b

    def join(self, a, b):
        return a | b

    def meet(self, a, b):
        return a & b

    def abstract(self, n: int) -> Element:
        return frozenset((sign_of(n),))

    def contains(self, a, n: int) -> bool:
        return sign_of(n) in a

    def concretize(self, a):
        # signs denote unbounded sets; only usable via representatives
        return None

    # -- transfer: sign algebra ------------------------------------------

    _ADD = {
        (NEG, NEG): {NEG},
        (NEG, ZERO): {NEG},
        (NEG, POS): {NEG, ZERO, POS},
        (ZERO, ZERO): {ZERO},
        (ZERO, POS): {POS},
        (POS, POS): {POS},
    }
    _MUL = {
        (NEG, NEG): {POS},
        (NEG, ZERO): {ZERO},
        (NEG, POS): {NEG},
        (ZERO, ZERO): {ZERO},
        (ZERO, POS): {ZERO},
        (POS, POS): {POS},
    }

    def _table(self, table, a, b):
        out: set[str] = set()
        for x in a:
            for y in b:
                key = (x, y) if (x, y) in table else (y, x)
                out |= table[key]
        return frozenset(out)

    def binop(self, op, a, b):
        if not a or not b:
            return self.bottom
        if op == "+":
            return self._table(self._ADD, a, b)
        if op == "-":
            return self._table(self._ADD, a, frozenset(self._neg(s) for s in b))
        if op == "*":
            return self._table(self._MUL, a, b)
        if op == "/":
            # result sign follows the multiplication table except that
            # magnitude may truncate to zero; division by zero faults.
            if b == frozenset((ZERO,)):
                return self.bottom  # always faults
            bnz = b - {ZERO}
            out = set(self._table(self._MUL, a, bnz))
            out.add(ZERO)  # truncation toward zero
            return frozenset(out)
        if op == "%":
            if b == frozenset((ZERO,)):
                return self.bottom
            out: set[str] = {ZERO}
            # remainder has the dividend's sign (C semantics) or is 0
            out |= set(a) - {ZERO}
            return frozenset(out)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._compare(op, a, b)
        if op in ("&&", "||"):
            may_t_a, may_f_a = self.truth(a)
            may_t_b, may_f_b = self.truth(b)
            if op == "&&":
                return self.bool_of(may_t_a and may_t_b, may_f_a or may_f_b)
            return self.bool_of(may_t_a or may_t_b, may_f_a and may_f_b)
        return self.top

    def _compare(self, op, a, b):
        """Comparison via representatives — sound because each sign class
        is order-homogeneous except for magnitude ties, which the two
        representatives per class cover."""
        may: set[int] = set()
        for x in a:
            for y in b:
                for cx in _REPS[x]:
                    for cy in _REPS[y]:
                        v = apply_binop(op, cx, cy)
                        if v is not None:
                            may.add(v)
        return self.abstract_all(may) if may else self.bottom

    @staticmethod
    def _neg(s: str) -> str:
        return {NEG: POS, POS: NEG, ZERO: ZERO}[s]

    def unop(self, op, a):
        if not a:
            return self.bottom
        if op == "-":
            return frozenset(self._neg(s) for s in a)
        if op == "!":
            may_t, may_f = self.truth(a)
            return self.bool_of(may_f, may_t)
        return self.top

    def truth(self, a):
        may_true = bool(a & {NEG, POS})
        may_false = ZERO in a
        return (may_true, may_false)

    def cmp_range(self, op, c: int):
        """Signs of ``{x : x op c}``."""
        if op == "==":
            return self.abstract(c)
        if op in ("<", "<="):
            hi = c - 1 if op == "<" else c
            out = {NEG}
            if hi >= 0:
                out.add(ZERO)
            if hi >= 1:
                out.add(POS)
            return frozenset(out)
        if op in (">", ">="):
            lo = c + 1 if op == ">" else c
            out = {POS}
            if lo <= 0:
                out.add(ZERO)
            if lo <= -1:
                out.add(NEG)
            return frozenset(out)
        if op == "!=":
            if c == 0:
                return frozenset((NEG, POS))
            return self.top
        return self.top
