"""Abstract values: numeric component × pointer targets × function set.

An abstract value soundly describes a set of concrete values
(:mod:`repro.semantics.values`):

- the numeric component (an element of the chosen :class:`NumDomain`)
  covers the integers;
- ``ptrs`` is a set of points-to targets — ``("site", s)`` for objects
  of allocation site *s* (the §6 allocation-site heap abstraction) and
  ``("gobj",)`` for pointers into the globals area;
- ``funcs`` covers first-class function values.

Represented as a plain tuple ``(num, ptrs, funcs)`` so abstract stores
hash and compare fast.
"""

from __future__ import annotations

from typing import Iterable

from repro.absdomain.lattice import NumDomain
from repro.semantics.values import FuncRef, Pointer, Value

AbsValue = tuple  # (num_element, frozenset[target], frozenset[str])


class AbsValueDomain:
    """Operations on :data:`AbsValue` for a chosen numeric domain."""

    def __init__(self, num: NumDomain):
        self.num = num
        self.bottom: AbsValue = (num.bottom, frozenset(), frozenset())

    # -- constructors -----------------------------------------------------

    def const(self, n: int) -> AbsValue:
        return (self.num.const(n), frozenset(), frozenset())

    def func_val(self, name: str) -> AbsValue:
        return (self.num.bottom, frozenset(), frozenset((name,)))

    def ptr_val(self, targets: Iterable[tuple]) -> AbsValue:
        return (self.num.bottom, frozenset(targets), frozenset())

    def abstract(self, v: Value) -> AbsValue:
        """α of a single concrete value."""
        if isinstance(v, Pointer):
            from repro.semantics.values import GLOBALS_OBJ

            if v.obj == GLOBALS_OBJ:
                return self.ptr_val((("gobj",),))
            return self.ptr_val((("site", v.obj[0]),))
        if isinstance(v, FuncRef):
            return self.func_val(v.name)
        return self.const(v)

    # -- lattice -----------------------------------------------------------

    def join(self, a: AbsValue, b: AbsValue) -> AbsValue:
        return (self.num.join(a[0], b[0]), a[1] | b[1], a[2] | b[2])

    def widen(self, old: AbsValue, new: AbsValue) -> AbsValue:
        return (self.num.widen(old[0], new[0]), old[1] | new[1], old[2] | new[2])

    def leq(self, a: AbsValue, b: AbsValue) -> bool:
        return self.num.leq(a[0], b[0]) and a[1] <= b[1] and a[2] <= b[2]

    def is_bottom(self, a: AbsValue) -> bool:
        return a == self.bottom

    # -- Galois ------------------------------------------------------------

    def contains(self, a: AbsValue, v: Value) -> bool:
        """Is the concrete value covered (γ membership)?"""
        if isinstance(v, Pointer):
            from repro.semantics.values import GLOBALS_OBJ

            t = ("gobj",) if v.obj == GLOBALS_OBJ else ("site", v.obj[0])
            return t in a[1]
        if isinstance(v, FuncRef):
            return v.name in a[2]
        return self.num.contains(a[0], v)

    # -- transfer ------------------------------------------------------------

    def binop(self, op: str, a: AbsValue, b: AbsValue) -> AbsValue:
        num = self.num.binop(op, a[0], b[0])
        ptrs: frozenset = frozenset()
        if op in ("+", "-"):
            # pointer arithmetic: targets pass through
            ptrs = a[1] | (b[1] if op == "+" else frozenset())
        if op in ("==", "!="):
            # comparisons involving pointers/functions: unknown boolean
            if a[1] or b[1] or a[2] or b[2]:
                num = self.num.join(num, self.num.abstract_all((0, 1)))
        if op in ("&&", "||"):
            ta, fa = self.truth(a)
            tb, fb = self.truth(b)
            if op == "&&":
                num = self.num.bool_of(ta and tb, fa or fb)
            else:
                num = self.num.bool_of(ta or tb, fa and fb)
            return (num, frozenset(), frozenset())
        return (num, ptrs, frozenset())

    def unop(self, op: str, a: AbsValue) -> AbsValue:
        if op == "!":
            t, f = self.truth(a)
            return (self.num.bool_of(f, t), frozenset(), frozenset())
        return (self.num.unop(op, a[0]), frozenset(), frozenset())

    def truth(self, a: AbsValue) -> tuple[bool, bool]:
        nt, nf = self.num.truth(a[0])
        may_true = nt or bool(a[1]) or bool(a[2])
        return (may_true, nf)
