"""The configuration graph produced by exploration.

Nodes are configurations (deduplicated structurally); edges carry the
sequence of atomic actions that produced them — length 1 normally, >1
under virtual coarsening.  Client analyses are graph algorithms over
this structure (DESIGN.md S6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.semantics.config import Config
from repro.semantics.step import ActionInfo

# Terminal statuses
TERMINATED = "terminated"
DEADLOCK = "deadlock"
FAULT = "fault"


def _dot_escape(text: str) -> str:
    """Escape a string for use inside a double-quoted DOT attribute."""
    return text.replace("\\", "\\\\").replace('"', '\\"')


@dataclass(frozen=True)
class Edge:
    """A transition: ``src -> dst`` via one atomic action (or a fused
    block of actions of one process, under coarsening)."""

    src: int
    dst: int
    actions: tuple[ActionInfo, ...]

    @property
    def pid(self):
        return self.actions[0].pid

    @property
    def reads(self) -> tuple:
        out: list = []
        for a in self.actions:
            out.extend(a.reads)
        return tuple(out)

    @property
    def writes(self) -> tuple:
        out: list = []
        for a in self.actions:
            out.extend(a.writes)
        return tuple(out)

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(a.label for a in self.actions)


@dataclass
class ConfigGraph:
    """The explored state space."""

    configs: list[Config] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    out_edges: dict[int, list[int]] = field(default_factory=dict)
    in_edges: dict[int, list[int]] = field(default_factory=dict)
    terminal: dict[int, str] = field(default_factory=dict)
    initial: int = 0
    _ids: dict[Config, int] = field(default_factory=dict)
    #: optional :class:`repro.metrics.MetricsRegistry`; when set,
    #: ``add_config`` reports intern hits/misses (the dedup hit-rate is
    #: a direct measure of how diamond-shaped the state space is)
    metrics: object | None = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # pickling (checkpoint/resume)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Snapshots exclude the attached metrics registry (the resumed
        run brings its own) and the intern table (rebuilt from
        ``configs`` — halves the snapshot size)."""
        state = self.__dict__.copy()
        state["metrics"] = None
        del state["_ids"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._ids = {c: i for i, c in enumerate(self.configs)}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_config(self, config: Config) -> tuple[int, bool]:
        """Intern *config*; returns ``(id, is_new)``."""
        cid = self._ids.get(config)
        if cid is not None:
            if self.metrics is not None:
                self.metrics.inc("explore.intern.hits")
            return cid, False
        cid = len(self.configs)
        self.configs.append(config)
        self._ids[config] = cid
        self.out_edges[cid] = []
        self.in_edges[cid] = []
        if self.metrics is not None:
            self.metrics.inc("explore.intern.misses")
        return cid, True

    def add_edge(self, src: int, dst: int, actions: tuple[ActionInfo, ...]) -> Edge:
        edge = Edge(src=src, dst=dst, actions=actions)
        eid = len(self.edges)
        self.edges.append(edge)
        self.out_edges[src].append(eid)
        self.in_edges[dst].append(eid)
        return edge

    def mark_terminal(self, cid: int, status: str) -> None:
        self.terminal[cid] = status

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def num_configs(self) -> int:
        return len(self.configs)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def successors(self, cid: int) -> list[tuple[Edge, int]]:
        return [(self.edges[e], self.edges[e].dst) for e in self.out_edges[cid]]

    def config_id(self, config: Config) -> int:
        return self._ids[config]

    def terminals(self, status: str | None = None) -> list[int]:
        """Config ids of terminal configurations, optionally filtered."""
        return [
            cid
            for cid, st in sorted(self.terminal.items())
            if status is None or st == status
        ]

    def result_stores(self) -> set[tuple]:
        """Observable outcomes of all terminal configurations — what
        stubborn-set reduction and coarsening must preserve."""
        return {self.configs[cid].result_store() for cid in self.terminal}

    def result_summary(self) -> dict[str, int]:
        out = {TERMINATED: 0, DEADLOCK: 0, FAULT: 0}
        for st in self.terminal.values():
            out[st] += 1
        return out

    def iter_edges(self):
        return iter(self.edges)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_dot(self, *, max_nodes: int = 500) -> str:
        """Render the graph in Graphviz DOT (for papers/debugging).

        Terminal configurations are colored by status; edges are
        labeled ``pid: labels``.  Graphs beyond *max_nodes* raise —
        nobody can read those anyway.
        """
        if self.num_configs > max_nodes:
            raise ValueError(
                f"graph has {self.num_configs} nodes (> {max_nodes}); "
                "reduce the program or raise max_nodes"
            )
        colors = {TERMINATED: "palegreen", DEADLOCK: "orange", FAULT: "tomato"}
        lines = ["digraph configs {", "  rankdir=TB;", "  node [shape=circle];"]
        for cid in range(self.num_configs):
            attrs = [f'label="{cid}"']
            status = self.terminal.get(cid)
            if status is not None:
                attrs.append("style=filled")
                attrs.append(f'fillcolor="{colors[status]}"')
            if cid == self.initial:
                attrs.append("shape=doublecircle")
            lines.append(f"  n{cid} [{', '.join(attrs)}];")
        for edge in self.edges:
            label = _dot_escape(",".join(edge.labels))
            pid = ".".join(map(str, edge.pid))
            lines.append(
                f'  n{edge.src} -> n{edge.dst} [label="{pid}: {label}"];'
            )
        lines.append("}")
        return "\n".join(lines)
