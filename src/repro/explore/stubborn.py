"""Stubborn-set selection — the paper's Algorithm 1 (§2.3).

At every expansion step we know, for each live process ``i``:

- if enabled: the exact dynamic read/write location sets
  ``(r_i, w_i)`` of its next atomic action (or coarsened block);
- if disabled: a *necessary enabling set* — locations that must be
  written (or children that must terminate) before it can move.

A set ``S`` of processes is **stubborn** when it is closed under:

1. *conflict*: for an enabled ``p ∈ S``, every other process whose
   possible **future** accesses (static over-approximation, see
   :class:`~repro.analyses.accesses.AccessAnalysis`) may conflict with
   ``p``'s next action is in ``S`` — a conflict being a write/any or
   any/write overlap.  Using the *future* of outside processes (not just
   their next action) is what makes the reduction sound: no sequence of
   outside transitions can ever interfere with, enable, or disable the
   chosen actions;
2. *enabling*: for a disabled ``p ∈ S``, every process that could write
   ``p``'s NES locations is in ``S``; for a blocked join, the children
   that must still terminate are in ``S``.

Expanding only the enabled members of a stubborn set preserves every
*result configuration* (terminated, deadlocked, and faulting states) —
the guarantee the paper inherits from [Ove81, Val88-90].

Following the paper, "there may exist several stubborn sets at an
expanding step ... we prefer a stubborn set that contains the fewest
number of enabled transitions": we close over each enabled seed and keep
the cheapest closure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyses.accesses import AccessAnalysis, matches
from repro.explore.expansion import Expansion
from repro.lang.program import Program
from repro.semantics.config import Pid


@dataclass
class StubbornStats:
    """Aggregate statistics of the selector (reported by benchmarks)."""

    steps: int = 0
    enabled_total: int = 0
    chosen_total: int = 0
    singleton_steps: int = 0

    def record(self, enabled: int, chosen: int) -> None:
        self.steps += 1
        self.enabled_total += enabled
        self.chosen_total += chosen
        if chosen == 1:
            self.singleton_steps += 1

    @property
    def mean_reduction(self) -> float:
        if self.enabled_total == 0:
            return 1.0
        return self.chosen_total / self.enabled_total


@dataclass
class StubbornSelector:
    """Chooses which enabled expansions to explore at each step."""

    program: Program
    access: AccessAnalysis
    stats: StubbornStats = field(default_factory=StubbornStats)
    #: optional :class:`repro.metrics.MetricsRegistry` (set by the
    #: exploration driver when telemetry is attached)
    metrics: object | None = field(default=None, repr=False, compare=False)

    def _record(self, enabled: int, chosen: int) -> None:
        self.stats.record(enabled, chosen)
        m = self.metrics
        if m is not None:
            m.observe("stubborn.enabled", enabled)
            m.observe("stubborn.chosen", chosen)
            if chosen == 1:
                m.inc("stubborn.singleton_steps")

    def select(self, expansions: list[Expansion]) -> list[Expansion]:
        """Return the enabled expansions of a minimal stubborn set."""
        by_pid: dict[Pid, Expansion] = {e.pid: e for e in expansions}
        enabled = [e for e in expansions if e.enabled]
        if len(enabled) <= 1:
            self._record(len(enabled), len(enabled))
            return enabled

        futures = {
            e.pid: self.access.future_of_proc(e.proc) for e in expansions
        }

        best: list[Expansion] | None = None
        best_key: tuple[int, int, Pid] | None = None
        for seed in enabled:
            closure = self._close({seed.pid}, by_pid, futures)
            chosen = [e for e in (by_pid[p] for p in sorted(closure)) if e.enabled]
            key = (len(chosen), len(closure), seed.pid)
            if best_key is None or key < best_key:
                best, best_key = chosen, key
            if len(chosen) == 1:
                break  # cannot do better than a singleton
        assert best is not None
        self._record(len(enabled), len(best))
        return best

    # ------------------------------------------------------------------

    def _close(
        self,
        seed: set[Pid],
        by_pid: dict[Pid, Expansion],
        futures: dict,
    ) -> set[Pid]:
        closure = set(seed)
        work = list(seed)
        iterations = 0
        while work:
            iterations += 1
            pid = work.pop()
            exp = by_pid[pid]
            if exp.enabled:
                for other, fut in futures.items():
                    if other in closure:
                        continue
                    if self._conflicts(exp, fut):
                        closure.add(other)
                        work.append(other)
            else:
                for child in exp.blocked_children:
                    if child in by_pid and child not in closure:
                        closure.add(child)
                        work.append(child)
                for other, fut in futures.items():
                    if other in closure:
                        continue
                    if any(matches(fut.writes, loc) for loc in exp.nes):
                        closure.add(other)
                        work.append(other)
        if self.metrics is not None:
            self.metrics.observe("stubborn.closure_iterations", iterations)
        return closure

    @staticmethod
    def _conflicts(exp: Expansion, fut) -> bool:
        """May the other process's future interfere with this action?"""
        for w in exp.writes:
            if matches(fut.reads, w) or matches(fut.writes, w):
                return True
        for r in exp.reads:
            if matches(fut.writes, r):
                return True
        return False
