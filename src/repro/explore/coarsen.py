"""Virtual coarsening — the paper's Observation 5 (after [Pnu86]).

    *Atomic actions of a thread can be combined if they contain at most
    one critical reference.*

A **critical reference** (Definition 4) is a read of a location that a
concurrent thread may write, or a write of a location that a concurrent
thread may read or write.  Purely thread-local runs of actions commute
with everything other processes can do, so fusing them into one atomic
block preserves all result configurations while shrinking the explored
space — often dramatically (benchmark E4).

Sharedness is classified statically by
:class:`~repro.analyses.accesses.AccessAnalysis` (sibling-branch future
intersections); process-management actions (spawn/join/thread-end and
their pseudo-locations) always count as critical so fork/join ordering
is preserved.

The block builder stops:

- after the block has consumed its one critical reference and the next
  action would add another;
- before a disabled instruction (blocked assume/acquire/join);
- when the process terminates, faults, or the configuration repeats
  (a thread-local cycle — the block would spin forever);
- at a configurable length cap (a safety valve; shorter blocks are
  always sound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyses.accesses import AccessAnalysis
from repro.lang.program import Program
from repro.semantics.config import Config, Pid, loc_value
from repro.semantics.step import (
    ActionInfo,
    StepOptions,
    enabledness,
    execute,
)


@dataclass(frozen=True)
class Block:
    """A fused run of atomic actions by one process."""

    succ: Config
    actions: tuple[ActionInfo, ...]
    reads: tuple
    writes: tuple
    #: total critical references consumed (telemetry; replayed by the
    #: expansion memo cache so cache hits trace like cache misses)
    crit: int = 0


def action_is_critical(access: AccessAnalysis, action: ActionInfo) -> int:
    """Number of critical references in one atomic action."""
    crit = 0
    for r in action.reads:
        if r[0] == "p" or access.crit_read(r):
            crit += 1
    for w in action.writes:
        if w[0] == "p" or access.crit_write(w):
            crit += 1
    return crit


def build_block(
    program: Program,
    config: Config,
    pid: Pid,
    access: AccessAnalysis,
    opts: StepOptions,
    *,
    max_len: int = 256,
    metrics=None,
    tracer=None,
    footprint: list | None = None,
) -> Block:
    """Execute the maximal coarsened block of process *pid* from
    *config*.  The first action is executed unconditionally (the caller
    verified enabledness); extensions obey the ≤1-critical-ref budget.

    With a tracer attached, each built block is one ``coarsen.fuse``
    span recording the process and the fused length.

    With *footprint* (a list of ``(loc, value)`` pairs) supplied, every
    shared location the block's *shape* depends on is recorded with its
    value at the block's base configuration, first touch only: reads and
    write pre-values of every action — including the discarded candidate
    that stopped the block and every enabledness probe — so an equal
    process seeing equal footprint values anywhere replays the exact
    same block (the expansion memo cache's soundness condition).
    Locations already written by the block are skipped: their values are
    determined by the block itself, not the base."""
    span = None if tracer is None else tracer.begin_span("coarsen.fuse", pid=pid)
    proc = config.proc(pid)
    touched: set | None = None
    if footprint is not None:
        # the caller's enabledness probe of the first action is already
        # in the footprint; don't re-record those locations
        touched = {loc for loc, _ in footprint}

    def touch(action: ActionInfo, base: Config) -> None:
        """First-touch record of one action's reads and write
        pre-values, as seen at its *base* (the pre-action state).  An
        untouched location holds its block-base value there."""
        for loc in action.reads:
            if loc not in touched:
                touched.add(loc)
                footprint.append((loc, loc_value(base, loc)))
        for loc in action.writes:
            # "p" pseudo-locations are determined by the acting process
            # itself (spawn/join/thread-end); no base value to pin
            if loc[0] != "p" and loc not in touched:
                touched.add(loc)
                footprint.append((loc, loc_value(base, loc)))

    succ, action = execute(program, config, proc, opts)
    if touched is not None:
        touch(action, config)
    actions = [action]
    reads = list(action.reads)
    writes = list(action.writes)
    crit = action_is_critical(access, action)
    seen = {config, succ}

    while len(actions) < max_len and succ.fault is None:
        # does the process still exist and can it continue?
        nxt = None
        for p in succ.procs:
            if p.pid == pid:
                nxt = p
                break
        if nxt is None or nxt.status == "done":
            break
        if touched is None:
            enabled, _, _ = enabledness(program, succ, nxt)
        else:
            probe: list = []
            enabled, _, _ = enabledness(program, succ, nxt, footprint=probe)
            for loc, value in probe:
                if loc not in touched:
                    touched.add(loc)
                    footprint.append((loc, value))
        if not enabled:
            break
        cand_succ, cand_action = execute(program, succ, nxt, opts)
        if touched is not None:
            # recorded whether the candidate is kept or discarded: a
            # discarded candidate's reads/writes decided the stop
            touch(cand_action, succ)
        cand_crit = action_is_critical(access, cand_action)
        if crit + cand_crit > 1:
            break
        if cand_succ in seen and cand_succ.fault is None:
            break  # thread-local cycle; stop rather than spin
        succ = cand_succ
        actions.append(cand_action)
        reads.extend(cand_action.reads)
        writes.extend(cand_action.writes)
        crit += cand_crit
        seen.add(succ)
        if succ.fault is not None:
            break

    if metrics is not None:
        metrics.observe("coarsen.block_len", len(actions))
    if span is not None:
        tracer.end_span(span, len=len(actions), critical=crit)
    return Block(
        succ=succ,
        actions=tuple(actions),
        reads=tuple(reads),
        writes=tuple(writes),
        crit=crit,
    )
