"""Observer hooks: analyses subscribe to exploration events.

The paper's client analyses (§5) are *derived from the explored state
space*; observers let them consume transitions while the space is built,
without a second pass and without growing configuration identity.
"""

from __future__ import annotations

from repro.explore.graph import ConfigGraph
from repro.semantics.config import Config
from repro.semantics.step import ActionInfo


class Observer:
    """Base observer; all callbacks default to no-ops.

    Callbacks
    ---------
    ``on_config``: a configuration was interned (``fresh`` tells whether
    it is new); ``status`` is its terminal status or None.

    ``on_edge``: a transition ``src -> dst`` with its action block was
    recorded.

    ``on_done``: exploration finished; the complete graph is available.
    """

    def on_config(
        self, graph: ConfigGraph, cid: int, config: Config, fresh: bool, status: str | None
    ) -> None:
        pass

    def on_edge(
        self,
        graph: ConfigGraph,
        src: int,
        dst: int,
        actions: tuple[ActionInfo, ...],
    ) -> None:
        pass

    def on_done(self, graph: ConfigGraph) -> None:
        pass


class TransitionLogObserver(Observer):
    """Collects every edge's labels — handy in tests and demos.

    Not to be confused with the structured tracing subsystem
    (:class:`repro.trace.TraceRecorder`, which records spans and events
    with sequence ids): this observer just keeps a flat list of
    ``(src, dst, labels)`` transition triples.
    """

    def __init__(self) -> None:
        self.edges: list[tuple[int, int, tuple[str, ...]]] = []

    def on_edge(self, graph, src, dst, actions) -> None:
        self.edges.append((src, dst, tuple(a.label for a in actions)))


#: Backwards-compatible alias — the class predates :mod:`repro.trace`
#: and was renamed to free the "trace" word for the span/event
#: subsystem.  New code should say :class:`TransitionLogObserver`.
TraceObserver = TransitionLogObserver
