"""Sleep sets (Godefroid) — an *extension* composable with stubborn sets.

The paper relies on stubborn sets alone; sleep sets are the
contemporaneous companion technique (Godefroid 1991, Godefroid & Wolper
1993) that removes a complementary kind of redundancy: after exploring
transition *t* at state *s*, its siblings need not re-explore *t* after
paths consisting only of transitions independent of *t*.

Mechanics: depth-first search where each state is entered with a *sleep
set* — transitions that are enabled but provably covered by an earlier
sibling branch.  At a state:

1. take the (stubborn/persistent or full) expansion set, minus sleeping
   transitions;
2. explore the remainder in order; after exploring *t*, add it to the
   sleep set of the *later* siblings; when descending through *t*, keep
   only sleep entries independent of *t*.

A state revisited with a sleep set ⊇ one it was already explored with is
pruned.  Deadlocks and terminal configurations are preserved (Godefroid
& Wolper); the benchmark suite checks result-configuration equality
against full exploration on the whole corpus.

Transition identity for sleeping purposes is ``(pid, status, func, pc)``
— while the owning process has not moved, its next transition (and its
dynamic read/write sets, which only depend on locations the sleeping
transition reads) is unchanged along independent paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.explore.expansion import Expansion
from repro.semantics.config import Process


@dataclass(frozen=True)
class SleepEntry:
    """A sleeping transition with the data needed for independence."""

    key: tuple
    reads: tuple
    writes: tuple


def transition_key(proc: Process) -> tuple:
    """Identity of a process's next transition at its current point."""
    top = proc.frames[-1] if proc.frames else None
    return (
        proc.pid,
        proc.status,
        top.func if top else "",
        top.pc if top else -1,
    )


def entry_of(exp: Expansion) -> SleepEntry:
    return SleepEntry(
        key=transition_key(exp.proc), reads=exp.reads, writes=exp.writes
    )


def independent(a: SleepEntry, b: Expansion) -> bool:
    """May the sleeping transition *a* and the executed expansion *b*
    be commuted?  Requires different processes and disjointness of
    write/any access pairs (including the process pseudo-locations, so
    fork/join interactions are never treated as independent)."""
    if a.key[0] == b.proc.pid:
        return False
    aw = set(a.writes)
    ar = set(a.reads)
    bw = set(b.writes)
    br = set(b.reads)
    if aw & (bw | br):
        return False
    if bw & ar:
        return False
    return True
