"""Parallel exploration backend (``ExploreOptions.backend="parallel"``).

Architecture: persistent workers + work stealing
------------------------------------------------
The state space is hash-partitioned across ``jobs`` worker processes by
:func:`repro.semantics.config.shard_of` (a ``PYTHONHASHSEED``-independent
structural digest).  Each worker *owns* one shard: its visited set is
authoritative for its slice of the configuration space, and every
candidate configuration is routed to its owner, which deduplicates it,
records the incoming edge, and — if fresh and non-terminal — turns it
into an expansion *task*.

Unlike the original level-synchronous design (scatter a frontier round,
barrier, gather), workers are **persistent** and there is no barrier:

* each worker drains its inbox (an unbounded ``multiprocessing.Queue``),
  executes one ready task, and flushes batched candidate messages to the
  owners of the successors it produced;
* an idle worker *steals*: it picks the peer advertising the deepest
  ready queue (a lock-free shared depth array) and asks for half of it;
  stolen tasks are executed by the thief but their successors still
  route to the owners, and their trace records still carry the owner's
  shard tag — scheduling moves work, never content;
* interned components (:class:`~repro.semantics.config.Process`,
  :class:`~repro.semantics.config.HeapObj`) cross the process boundary
  once, through per-producer ``multiprocessing.shared_memory`` segments
  (:mod:`repro.semantics.transport`); every later reference is a
  3-tuple handle;
* termination is distributed-quiescence detection: a shared
  ``outstanding`` counter tracks unconsumed work units (candidate
  messages, ready/stolen tasks, terminal-mark messages); the master
  polls it lock-free and finishes the run when it reaches zero.

Determinism
-----------
Scheduling (who executes a task, steal timing, message interleaving) is
nondeterministic, so the merge is **canonical**: configurations are
globally ordered by ``(stable_digest, repr)``, edges by ``(src, pid,
dst)`` (unique per edge — an owner expands each configuration exactly
once and a selection contains at most one expansion per process), and
terminal marks by configuration id.  Two runs with the same program and
options therefore produce byte-identical graphs and traces, *including
across different ``jobs`` values* — a stronger guarantee than the old
backend's, whose config ids depended on round/shard discovery order.
Scheduling-dependent quantities (``handoffs``, ``steals``, per-worker
task counts, queue-depth samples) are reported but deliberately kept
out of every cross-run equality contract.

Composition
-----------
Everything composes — the two historical rejections are lifted:

* ``sleep=True``: sleep-set pruning is order-dependent, so the DFS of
  :func:`repro.explore.explorer._explore_sleep` stays master-sequenced
  and workers act as sharded *expansion servers* (each owning a shard's
  memo cache); the graph, checkpoints, and pruning decisions are
  bit-identical to the serial sleep driver's.
* checkpoint/resume: the master pauses the pool (workers park ready
  tasks; quiescence is ``outstanding == suspended``), collects shard
  dumps, and writes the same ``driver="bfs"`` snapshot the serial
  driver writes — snapshots are cross-backend in both directions.

Failure handling: the master polls worker liveness and counter
progress; a dead or wedged pool (``opts.parallel_watchdog_s`` without
progress) is torn down and the whole run retried — determinism makes
the retry transparent — with ``stats.worker_restarts`` counting the
attempts and :class:`~repro.util.errors.ReproError` raised after
``_MAX_ATTEMPTS``.  The chaos points ``worker`` / ``worker-hang``
(:mod:`repro.resilience.chaos`) exercise exactly these paths.
"""

from __future__ import annotations

import gc
import logging
import multiprocessing
import multiprocessing.connection
import os
import pickle
import queue as _queue
import time
import traceback
from collections import deque

from repro.analyses.accesses import AccessAnalysis, access_analysis
from repro.explore.algorithm1 import AlgorithmOneSelector
from repro.explore.graph import DEADLOCK, TERMINATED, ConfigGraph
from repro.explore.memo import ExpandCache
from repro.explore.stubborn import StubbornSelector, StubbornStats
from repro.lang.program import Program
from repro.resilience import chaos
from repro.resilience.checkpoint import (
    program_fingerprint,
    read_snapshot,
    write_snapshot,
)
from repro.semantics.config import (
    Config,
    digest_stats,
    initial_config,
    shard_of,
    stable_digest,
)
from repro.semantics.transport import ComponentStore
from repro.util.errors import ReproError

LOG = logging.getLogger("repro.explore.parallel")

#: Seconds to wait for a worker to exit after the final dump request.
_JOIN_TIMEOUT_S = 10.0
#: Candidate-batch flush threshold: estimated buffered payload bytes at
#: which a destination's batch ships even though the sender is busy.
_CAND_BYTES = 32 * 1024
#: Staleness bound on the size policy: a destination's buffer never
#: waits more than this many locally executed tasks, so a busy sender
#: cannot starve a receiver of its frontier indefinitely.
_CAND_STALE_TASKS = 64
#: Sender-side per-destination seen-digest cache capacity (each entry
#: pins one Config; eviction is insertion-ordered).
_SEEN_CAP = 4096
#: Minimum unshipped items worth a graph fragment on an idle/steal
#: boundary.  Fragments ship only at those natural rotation points —
#: a busy worker never interrupts expansion to stream, so the master's
#: folding stays off the workers' critical path.
_FRAG_MIN = 16
#: Worker inbox poll timeout when idle (seconds).
_IDLE_WAIT_S = 0.002
#: Master readiness-wait timeout (seconds).  The master blocks on the
#: results pipe plus the worker sentinels and is woken *immediately* by
#: a worker's quiescence note, a message, or a death — the timeout only
#: bounds how stale the budget/watchdog/progress checks can get.
_WAIT_S = 0.05
#: Short readiness-wait used while a master-side threshold is armed
#: (checkpoint trigger, a budget close to its cap): those fire on the
#: master's clock, so it must keep looking at the counters.
_TRIGGER_WAIT_S = 0.002
#: Configs-budget proximity (in configurations) at which the master
#: switches to the short wait so truncation lands promptly.
_BUDGET_GUARD = 4096
#: Whole-run retries before giving up on a dying/wedged pool.
_MAX_ATTEMPTS = 3

# Shared run modes (master writes, workers read).
_RUN, _DRAIN, _PAUSE = 0, 1, 2


class _PoolFailure(BaseException):
    """A worker died or the pool wedged: retry the whole run.

    Deliberately *not* an ``Exception``: it must sail through the
    engine's generic degradation guards (``_expand_guarded``, observer
    guards) up to the retry loop in :func:`explore_parallel`.
    """


def _make_selector(program, access, policy):
    if policy == "stubborn":
        return AlgorithmOneSelector(program, access)
    if policy == "stubborn-proc":
        return StubbornSelector(program, access)
    return None


def _make_access(program, opts) -> AccessAnalysis:
    if opts.coarse_derefs:
        return AccessAnalysis(program, coarse_derefs=True)
    return access_analysis(program)


class _Shared:
    """The lock-free-readable counters coordinating master and workers.

    Writers take ``lock``; readers go bare (aligned 8-byte loads — the
    master's poll loop must keep working even if a chaos-killed worker
    died anywhere, so no reader ever blocks on a lock a dead process
    might have held...  writers are workers, and a worker is killed only
    *between* tasks, outside the lock — see ``_maybe_chaos_exit``).
    """

    def __init__(self, ctx, nshards: int, outstanding: int) -> None:
        self.lock = ctx.Lock()
        self.outstanding = ctx.RawValue("q", outstanding)
        self.configs = ctx.RawValue("q", 0)
        self.expansions = ctx.RawValue("q", 0)
        self.suspended = ctx.RawValue("q", 0)
        self.mode = ctx.RawValue("i", _RUN)
        self.engine_fault = ctx.RawValue("i", 0)
        self.qdepth = ctx.RawArray("q", nshards)
        #: per-worker completed steal count, written by the thief alone
        #: (live telemetry for the master's progress frames; the exact
        #: total still comes from the summed worker stats at the end)
        self.steals = ctx.RawArray("q", nshards)
        #: per-worker interconnect bytes / suppressed candidates, written
        #: by the sender alone — live telemetry like ``steals``
        self.msg_bytes = ctx.RawArray("q", nshards)
        self.suppressed = ctx.RawArray("q", nshards)

    def apply(self, d_out=0, d_configs=0, d_expansions=0, d_susp=0):
        """Apply one worker's counter deltas atomically.

        Returns ``(outstanding, suspended)`` as observed under the lock
        after the update (None for a no-op flush) so the caller can
        detect the quiescence transition it just caused.
        """
        if not (d_out or d_configs or d_expansions or d_susp):
            return None
        with self.lock:
            self.outstanding.value += d_out
            self.configs.value += d_configs
            self.expansions.value += d_expansions
            self.suspended.value += d_susp
            return (self.outstanding.value, self.suspended.value)


def _maybe_chaos_exit() -> None:
    """The ``worker`` / ``worker-hang`` failure points, fired at the
    top of task execution — never while holding the counter lock."""
    try:
        chaos.kick("worker")
    except chaos.ChaosFault:
        os._exit(11)
    try:
        chaos.kick("worker-hang")
    except chaos.ChaosFault:
        time.sleep(3600.0)


# --------------------------------------------------------------------------
# worker side (BFS mode)
# --------------------------------------------------------------------------


def _seen_key(config) -> int:
    """The suppression-cache key for one candidate configuration.

    A separate function (rather than calling ``stable_digest`` inline)
    so tests can monkeypatch it to force collisions: the cache verifies
    configuration equality before suppressing and poisons colliding
    keys, so even a constant key function must never lose a config.
    """
    return stable_digest(config)


class _Worker:
    """One shard owner: dedup + edge recording for owned candidates,
    task execution (own or stolen), candidate routing, stealing."""

    def __init__(
        self, wid, nshards, program, opts, inboxes, results, shared,
        store, want_metrics, want_trace, trace_wall,
    ) -> None:
        from repro.explore.explorer import ExploreStats

        self.wid = wid
        self.nshards = nshards
        self.program = program
        self.opts = opts
        self.inboxes = inboxes
        self.inbox = inboxes[wid]
        self.results = results
        self.shared = shared
        self.store = store
        store.bind(wid)
        self.access = _make_access(program, opts)
        self.selector = _make_selector(program, self.access, opts.policy)
        self.cache = ExpandCache() if getattr(opts, "memo", True) else None
        self.digest_base = digest_stats()
        self.stats = ExploreStats()
        self.wreg = None
        if want_metrics:
            from repro.metrics.registry import MetricsRegistry

            self.wreg = MetricsRegistry()
            if self.selector is not None:
                self.selector.metrics = self.wreg
        self.tracer = None
        self.sink = None
        if want_trace:
            from repro.trace.sinks import ListSink
            from repro.trace.tracer import Tracer

            self.sink = ListSink()
            self.tracer = Tracer(self.sink, shard=wid, record_wall=trace_wall)
        self.visited: dict[Config, int] = {}
        self.configs: list[Config] = []
        self.edges: list[tuple] = []      # (src_shard, src_lid, actions, dst_lid)
        self.terminals: list[tuple] = []  # (lid, status)
        self.ready: deque = deque()       # (lid, config) — own tasks
        self.stolen: deque = deque()      # (owner, lid, config)
        self.parked: list = []            # (owner, lid, config) while paused
        self.out_buf: dict[int, list] = {}  # dst shard -> candidate entries
        self.buf_bytes: dict[int, int] = {}  # dst shard -> estimated bytes
        self.buf_since: dict[int, int] = {}  # dst -> executed@first buffered
        # sender-side suppression state, per destination: digest ->
        # config already shipped there (insertion-ordered for eviction),
        # plus the digests poisoned by an observed collision
        self.seen: dict[int, dict] = {}
        self.poisoned: dict[int, set] = {}
        # receiver-side ref resolution: (sender, digest) -> local id,
        # updated by every full candidate from that sender (FIFO queues
        # guarantee the full payload precedes any ref that cites it)
        self.ref_map: dict[tuple[int, int], int] = {}
        self.trace_batches: dict[tuple, list] = {}  # (owner, lid) -> records
        self.dedup_hits = 0
        self.handoffs = 0
        self.steals = 0
        self.executed = 0
        self.msg_bytes = 0
        self.cand_msgs = 0
        self.cand_suppressed = 0
        # graph content already streamed to the master as fragments
        self.shipped_configs = 0
        self.shipped_edges = 0
        self.shipped_terminals = 0
        self.awaiting_steal_since: float | None = None
        # per-iteration counter deltas, applied in one lock acquisition
        self.d_out = 0
        self.d_configs = 0
        self.d_expansions = 0
        self.d_susp = 0

    # -- counter deltas -------------------------------------------------

    def _flush_deltas(self) -> None:
        after = self.shared.apply(
            self.d_out, self.d_configs, self.d_expansions, self.d_susp
        )
        self.d_out = self.d_configs = self.d_expansions = self.d_susp = 0
        if after is not None and after[0] == after[1]:
            # this flush reached quiescence (run end: outstanding == 0,
            # or pause: everything suspended) — wake the blocked master
            # now instead of letting its readiness-wait time out
            self.results.put(("quiet",))

    # -- candidate intake (the owner-side half of the protocol) ---------

    def _take_candidate(self, config, src_shard, src_lid, actions) -> int:
        """Consume one counted candidate unit addressed to this shard;
        returns the configuration's local id."""
        lid = self.visited.get(config)
        if lid is not None:
            self.dedup_hits += 1
            if src_shard is not None:
                self.edges.append((src_shard, src_lid, actions, lid))
            self.d_out -= 1
            return lid
        lid = len(self.configs)
        self.visited[config] = lid
        self.configs.append(config)
        self.d_configs += 1
        if src_shard is not None:
            self.edges.append((src_shard, src_lid, actions, lid))
        mode = self.shared.mode.value
        if mode == _DRAIN:
            # truncated run: register + resolve the edge, expand nothing
            # (mirrors the serial driver's cleared-queue configurations)
            self.d_out -= 1
            return lid
        from repro.explore.explorer import _terminal_status_fast

        status = _terminal_status_fast(config)
        if status is not None:
            self.terminals.append((lid, status))
            self.stats.expansions += 1
            self.d_expansions += 1
            if self.wreg is not None:
                self.wreg.inc("explore.expansions")
            self.d_out -= 1
            return lid
        if mode == _PAUSE:
            self.parked.append((self.wid, lid, config))
            self.d_susp += 1
        else:
            self.ready.append((lid, config))
        return lid

    # -- messages -------------------------------------------------------

    def _handle(self, msg) -> bool:
        """Process one inbox message; True when the worker should exit."""
        if isinstance(msg, (bytes, bytearray)):
            msg = pickle.loads(msg)
        kind = msg[0]
        if kind == "cand":
            sender = msg[1]
            for entry in msg[2]:
                if entry[0]:
                    # digest ref: the sender proved it already shipped
                    # this exact configuration here, so this candidate
                    # is by construction the owner-side dedup path
                    _, dig, src_shard, src_lid, actions = entry
                    lid = self.ref_map[(sender, dig)]
                    self.dedup_hits += 1
                    self.edges.append((src_shard, src_lid, actions, lid))
                    self.d_out -= 1
                else:
                    _, payload, src_shard, src_lid, actions = entry
                    lid = self._take_candidate(
                        self.store.decode_config(payload),
                        src_shard, src_lid, actions,
                    )
                    dig = payload[4]  # the digest rides in the payload
                    if dig is not None:
                        self.ref_map[(sender, dig)] = lid
        elif kind == "mark":
            _, lid, status = msg
            self.terminals.append((lid, status))
            self.d_out -= 1
        elif kind == "steal":
            thief = msg[1]
            give = len(self.ready) // 2
            if give and self.shared.mode.value == _RUN:
                # a thief is an idle peer: ship it any buffered
                # candidates along with the stolen tasks
                self._flush_bufs()
                tasks = [self.ready.popleft() for _ in range(give)]
                self._send(
                    thief,
                    (
                        "stolen",
                        self.wid,
                        [
                            (lid, self.store.encode_config(cfg))
                            for lid, cfg in tasks
                        ],
                    ),
                )
                # a steal is a natural rotation boundary: the master is
                # idle-adjacent anyway, so stream the graph delta now
                if len(self.configs) - self.shipped_configs >= _FRAG_MIN:
                    self._ship_frag()
            else:
                self.inboxes[thief].put(("nowork",))
        elif kind == "stolen":
            _, owner, tasks = msg
            self.awaiting_steal_since = None
            self.steals += 1
            self.shared.steals[self.wid] = self.steals
            if self.wreg is not None:
                # the parallel.steals *counter* is master-emitted from the
                # summed stats; workers only record the batch-size shape
                self.wreg.observe("parallel.steal_batch", len(tasks))
            for lid, payload in tasks:
                self.stolen.append(
                    (owner, lid, self.store.decode_config(payload))
                )
        elif kind == "nowork":
            self.awaiting_steal_since = None
        elif kind == "preload":
            _, payloads, queued_lids = msg
            for payload in payloads:
                config = self.store.decode_config(payload)
                self.visited[config] = len(self.configs)
                self.configs.append(config)
            for lid in queued_lids:
                self.ready.append((lid, self.configs[lid]))
        elif kind == "resume":
            self._unpark()
        elif kind == "dump":
            self._dump(final=msg[1])
            return msg[1]
        return False

    def _unpark(self) -> None:
        n = len(self.parked)
        if not n:
            return
        for owner, lid, config in self.parked:
            if owner == self.wid:
                self.ready.append((lid, config))
            else:
                self.stolen.append((owner, lid, config))
        self.parked.clear()
        self.d_susp -= n

    def _park_all(self) -> None:
        while self.ready:
            lid, config = self.ready.popleft()
            self.parked.append((self.wid, lid, config))
            self.d_susp += 1
        while self.stolen:
            self.parked.append(self.stolen.popleft())
            self.d_susp += 1

    def _drop_tasks(self) -> None:
        """DRAIN mode: already-queued tasks are never expanded (their
        configurations stay registered, exactly like the serial
        driver's cleared queue)."""
        n = len(self.ready) + len(self.stolen) + len(self.parked)
        if not n:
            return
        self.d_susp -= len(self.parked)
        self.ready.clear()
        self.stolen.clear()
        self.parked.clear()
        self.d_out -= n

    # -- task execution -------------------------------------------------

    def _execute(self, owner, lid, config) -> None:
        from repro.explore.explorer import _expand_guarded, _select_guarded

        _maybe_chaos_exit()
        if self.tracer is not None:
            self.tracer.shard = owner  # stolen work keeps the owner tag
        self.stats.expansions += 1
        self.d_expansions += 1
        self.executed += 1
        if self.wreg is not None:
            self.wreg.inc("explore.expansions")
        marks: list[tuple] = []
        expansions = _expand_guarded(
            self.program, config, lid, self.access, self.opts, self.stats,
            self.wreg, self.tracer, cache=self.cache,
        )
        if expansions is None:
            self.shared.engine_fault.value = 1
        else:
            enabled = [e for e in expansions if e.enabled]
            if not enabled:
                if owner == self.wid:
                    self.terminals.append((lid, DEADLOCK))
                else:
                    marks.append((owner, lid, DEADLOCK))
                    self.d_out += 1
            else:
                chosen = _select_guarded(
                    self.selector, expansions, enabled, self.stats,
                    self.wreg, self.tracer,
                )
                for exp in chosen:
                    succ = exp.succ
                    assert succ is not None
                    self.stats.actions_executed += len(exp.actions)
                    # edges carry action *handles*: each ActionInfo
                    # crosses the interconnect once, ever (memoized
                    # expansions replay identical objects, so the
                    # ledger hit rate tracks the memo hit rate)
                    acts = tuple(
                        self.store.publish(a) for a in exp.actions
                    )
                    dshard = shard_of(succ, self.nshards)
                    if dshard == self.wid:
                        self.d_out += 1
                        self._take_candidate(succ, owner, lid, acts)
                    else:
                        self.handoffs += 1
                        self.d_out += 1
                        self._route(dshard, succ, owner, lid, acts)
        self.d_out -= 1  # the task unit itself
        if self.sink is not None:
            self.trace_batches[(owner, lid)] = self.sink.drain()
        # counters first, sends second: a unit must be visible in
        # ``outstanding`` before its message can be consumed
        self._flush_deltas()
        for mowner, mlid, status in marks:
            self.inboxes[mowner].put(("mark", mlid, status))
        self._flush_bufs(only_full=True)

    def _route(self, dshard, succ, owner, lid, actions) -> None:
        """Queue one cross-shard candidate: a digest ref when this
        sender has already shipped the identical configuration to that
        destination, the full store-encoded payload otherwise."""
        dig = _seen_key(succ)
        seen = self.seen.setdefault(dshard, {})
        buf = self.out_buf.setdefault(dshard, [])
        if dshard not in self.buf_since:
            self.buf_since[dshard] = self.executed
        hit = seen.get(dig)
        if hit is not None:
            # interning makes equal configs identical objects in this
            # process, so identity is the fast path; the equality
            # fallback guards the un-interned edge and keeps a digest
            # collision from ever suppressing a genuinely-new config
            if (hit is succ or hit == succ) and dig not in self.poisoned.get(
                dshard, ()
            ):
                buf.append((1, dig, owner, lid, actions))
                self.cand_suppressed += 1
                self.shared.suppressed[self.wid] = self.cand_suppressed
                self.buf_bytes[dshard] = self.buf_bytes.get(dshard, 0) + 32
                return
            if hit is not succ and hit != succ:
                # two distinct configurations share a cache key: this
                # digest can never again be trusted as a ref for this
                # destination — full payloads only from here on
                self.poisoned.setdefault(dshard, set()).add(dig)
                seen.pop(dig, None)
        else:
            if len(seen) >= _SEEN_CAP:
                seen.pop(next(iter(seen)))
            seen[dig] = succ
        tail0 = self.store.published_bytes()
        payload = self.store.encode_config(succ)
        est = 64 + (self.store.published_bytes() - tail0)
        buf.append((0, payload, owner, lid, actions))
        self.buf_bytes[dshard] = self.buf_bytes.get(dshard, 0) + est

    def _send(self, dshard, msg) -> None:
        """Pickle once (protocol 5), account the bytes, ship the blob."""
        blob = pickle.dumps(msg, protocol=5)
        self.msg_bytes += len(blob)
        self.shared.msg_bytes[self.wid] = self.msg_bytes
        self.inboxes[dshard].put(blob)

    def _flush_bufs(self, only_full: bool = False) -> None:
        for dshard, buf in list(self.out_buf.items()):
            if not buf:
                continue
            if only_full and self.buf_bytes.get(dshard, 0) < _CAND_BYTES and (
                self.executed - self.buf_since.get(dshard, self.executed)
                < _CAND_STALE_TASKS
            ):
                continue
            self._send(dshard, ("cand", self.wid, buf))
            self.cand_msgs += 1
            self.out_buf[dshard] = []
            self.buf_bytes[dshard] = 0
            self.buf_since.pop(dshard, None)

    def _ship_frag(self) -> None:
        """Stream the unshipped graph delta to the master, which folds
        it into the canonical merge while the run is still draining."""
        nc, ne, nt = len(self.configs), len(self.edges), len(self.terminals)
        if (nc, ne, nt) == (
            self.shipped_configs, self.shipped_edges, self.shipped_terminals
        ):
            return
        frag = (
            "frag",
            self.wid,
            self.shipped_configs,
            [
                # the merge recomputes digests; don't ship them
                self.store.encode_config(c, digest=False)
                for c in self.configs[self.shipped_configs:]
            ],
            self.shipped_edges,
            self.edges[self.shipped_edges:],
            self.shipped_terminals,
            self.terminals[self.shipped_terminals:],
        )
        blob = pickle.dumps(frag, protocol=5)
        self.msg_bytes += len(blob)
        self.shared.msg_bytes[self.wid] = self.msg_bytes
        self.results.put(blob)
        self.shipped_configs = nc
        self.shipped_edges = ne
        self.shipped_terminals = nt

    # -- dumps ----------------------------------------------------------

    def _dump(self, final: bool) -> None:
        from repro.explore.explorer import (
            _current_rss_bytes,
            _emit_incremental_metrics,
        )

        payload = {
            "wid": self.wid,
            # graph content ships as a delta over the fragments already
            # streamed — the master's accumulator holds the rest
            "base_configs": self.shipped_configs,
            "configs": [
                self.store.encode_config(c, digest=False)
                for c in self.configs[self.shipped_configs:]
            ],
            "base_edges": self.shipped_edges,
            "edges": self.edges[self.shipped_edges:],
            "base_terminals": self.shipped_terminals,
            "terminals": self.terminals[self.shipped_terminals:],
            "parked": [(o, lid) for o, lid, _ in self.parked],
            "stats": {
                "expansions": self.stats.expansions,
                "actions_executed": self.stats.actions_executed,
                "selector_faults": self.stats.selector_faults,
                "engine_faults": self.stats.engine_faults,
                "dedup_hits": self.dedup_hits,
                "handoffs": self.handoffs,
                "steals": self.steals,
                "executed": self.executed,
                "msg_bytes": self.msg_bytes,
                "cand_msgs": self.cand_msgs,
                "cand_suppressed": self.cand_suppressed,
                "peak_rss_bytes": _current_rss_bytes(),
            },
            "stubborn": (
                self.selector.stats if self.selector is not None else None
            ),
            "metrics": None,
            "trace": None,
        }
        self.shipped_configs = len(self.configs)
        self.shipped_edges = len(self.edges)
        self.shipped_terminals = len(self.terminals)
        if final:
            if self.wreg is not None:
                _emit_incremental_metrics(self.wreg, self.cache, self.digest_base)
                payload["metrics"] = self.wreg.snapshot()
            if self.sink is not None:
                payload["trace"] = self.trace_batches
        # the dump blob's own size is accounted master-side on receipt
        # (it contains this msg_bytes counter, so it cannot count itself)
        self.results.put(pickle.dumps(("dump", self.wid, payload), protocol=5))

    # -- main loop ------------------------------------------------------

    def run(self) -> None:
        while True:
            # 1. drain the inbox without blocking
            exit_now = False
            while True:
                try:
                    msg = self.inbox.get_nowait()
                except _queue.Empty:
                    break
                if self._handle(msg):
                    exit_now = True
                    break
            if exit_now:
                self._flush_deltas()
                return
            mode = self.shared.mode.value
            if mode == _PAUSE:
                self._park_all()
            elif self.parked:
                if mode == _DRAIN:
                    self._drop_tasks()
                else:
                    self._unpark()
            if mode == _DRAIN:
                self._drop_tasks()
            # 2. execute one task
            task = None
            if mode == _RUN:
                if self.ready:
                    lid, config = self.ready.popleft()
                    task = (self.wid, lid, config)
                elif self.stolen:
                    task = self.stolen.popleft()
            self.shared.qdepth[self.wid] = len(self.ready)
            if task is not None:
                self._execute(*task)
                self.shared.qdepth[self.wid] = len(self.ready)
                continue
            # 3. idle: flush everything, maybe steal, then block briefly
            self._flush_deltas()
            self._flush_bufs()
            if (
                len(self.configs) - self.shipped_configs >= _FRAG_MIN
                or len(self.edges) - self.shipped_edges >= _FRAG_MIN
            ):
                self._ship_frag()
            if (
                mode == _RUN
                and self.shared.outstanding.value > 0
                and self.nshards > 1
            ):
                now = time.monotonic()
                if (
                    self.awaiting_steal_since is not None
                    and now - self.awaiting_steal_since > 0.2
                ):
                    self.awaiting_steal_since = None  # victim likely died
                if self.awaiting_steal_since is None:
                    victim = -1
                    depth = 0
                    for peer in range(self.nshards):
                        if peer != self.wid and self.shared.qdepth[peer] > depth:
                            victim, depth = peer, self.shared.qdepth[peer]
                    if victim >= 0:
                        self.inboxes[victim].put(("steal", self.wid))
                        self.awaiting_steal_since = now
            try:
                msg = self.inbox.get(timeout=_IDLE_WAIT_S)
            except _queue.Empty:
                continue
            if self._handle(msg):
                self._flush_deltas()
                return


def _worker_main(
    wid, nshards, program, opts, inboxes, results, shared, store,
    want_metrics, want_trace, trace_wall,
):
    """Worker process entry point (BFS mode)."""
    # the cyclic collector only costs here: exploration state is
    # refcount-reclaimed (frozen dataclasses, tuples), and a gen-2 pass
    # in a forked child copy-on-write-faults the whole inherited heap
    gc.disable()
    try:
        _Worker(
            wid, nshards, program, opts, inboxes, results, shared, store,
            want_metrics, want_trace, trace_wall,
        ).run()
    except Exception:
        try:
            results.put(("crash", wid, traceback.format_exc()))
        except Exception:
            pass
    finally:
        store.close()


# --------------------------------------------------------------------------
# master side
# --------------------------------------------------------------------------


def explore_parallel(
    program: Program, opts, observers=(), checkpointer=None, resume_from=None
):
    """Work-stealing multiprocess exploration; same result contract as
    the serial driver (invoked through
    :func:`repro.explore.explorer.explore` with ``backend="parallel"``).

    A dead or wedged worker pool aborts the attempt and the whole run is
    retried — exploration is deterministic, so the retry converges on
    the identical graph; ``stats.worker_restarts`` reports how many
    attempts it took.
    """
    attempts = 0
    while True:
        try:
            if opts.sleep:
                return _sleep_attempt(
                    program, opts, observers, checkpointer, resume_from,
                    attempts,
                )
            return _bfs_attempt(
                program, opts, observers, checkpointer, resume_from, attempts
            )
        except _PoolFailure as exc:
            attempts += 1
            if attempts >= _MAX_ATTEMPTS:
                raise ReproError(
                    f"parallel exploration failed after {_MAX_ATTEMPTS} "
                    f"attempts: {exc}"
                ) from None
            LOG.warning(
                "parallel worker pool failed (%s); restarting the run "
                "(attempt %d/%d)", exc, attempts + 1, _MAX_ATTEMPTS,
            )


class _Pool:
    """Worker processes plus their queues/shared state, with hard
    cleanup and dump collection."""

    def __init__(
        self, program, opts, nshards, outstanding0, preloaded_configs,
        want_metrics, want_trace, trace_wall, worker_main=_worker_main,
    ) -> None:
        methods = multiprocessing.get_all_start_methods()
        self.fork = "fork" in methods
        ctx = multiprocessing.get_context("fork" if self.fork else "spawn")
        self.nshards = nshards
        self.shared = _Shared(ctx, nshards, outstanding0)
        self.shared.configs.value = preloaded_configs
        self.inboxes = [ctx.Queue() for _ in range(nshards)]
        self.results = ctx.Queue()
        # shm transport only under fork (segments are inherited, never
        # re-attached by name — the resource tracker sees each once)
        self.store = ComponentStore(nshards + 1, use_shm=self.fork)
        self.store.bind(nshards)  # the master is producer `nshards`
        self.rx_dump_bytes = 0  # dump blobs received (sender can't count)
        self.procs = []
        # move the parent heap to the permanent generation before
        # forking: a child gc pass would otherwise touch every inherited
        # object header and copy-on-write-fault the whole heap
        if self.fork:
            gc.freeze()
        try:
            for wid in range(nshards):
                proc = ctx.Process(
                    target=worker_main,
                    args=(
                        wid, nshards, program, opts, self.inboxes,
                        self.results, self.shared, self.store, want_metrics,
                        want_trace, trace_wall,
                    ),
                    daemon=True,
                    name=f"repro-shard-{wid}",
                )
                proc.start()
                self.procs.append(proc)
        finally:
            if self.fork:
                gc.unfreeze()

    def check_alive(self) -> None:
        for wid, proc in enumerate(self.procs):
            if not proc.is_alive():
                raise _PoolFailure(
                    f"worker {wid} died (exit code {proc.exitcode})"
                )

    def wait_events(self, timeout_s: float) -> None:
        """Block until the results pipe has data, a worker dies, or the
        timeout elapses — the readiness wait replacing the old 1ms
        polling sleep.  A dead worker's sentinel stays ready, so the
        caller's next ``check_alive`` fires immediately."""
        waiters = [p.sentinel for p in self.procs]
        reader = getattr(self.results, "_reader", None)
        if reader is not None:
            waiters.append(reader)
        try:
            multiprocessing.connection.wait(waiters, timeout=timeout_s)
        except OSError:  # pragma: no cover - raced a closing sentinel
            time.sleep(min(timeout_s, 0.005))

    def drain_results(self, on_msg=None) -> None:
        """Consume every pending results-queue message without blocking.

        ``("quiet",)`` wake-up notes are absorbed; crashes raise; any
        other message goes to *on_msg* (which returns True when it
        handled the kind) — with no handler taking it, the message is a
        protocol violation and raises."""
        while True:
            try:
                msg = self.results.get_nowait()
            except _queue.Empty:
                return
            if isinstance(msg, (bytes, bytearray)):
                nbytes = len(msg)
                msg = pickle.loads(msg)
                if msg[0] == "dump":
                    # dump payloads carry the sender's own byte counter,
                    # so their blob size is accounted here instead
                    self.rx_dump_bytes += nbytes
            kind = msg[0]
            if kind == "quiet":
                continue
            if kind == "crash":
                raise ReproError(
                    f"parallel exploration worker {msg[1]} crashed:\n{msg[2]}"
                )
            if on_msg is not None and on_msg(msg):
                continue
            raise ReproError(f"unexpected worker message {kind!r}")

    def send_all(self, msg) -> None:
        for inbox in self.inboxes:
            inbox.put(msg)

    def collect_dumps(
        self, final: bool, timeout_s: float, on_msg=None, after_request=None
    ) -> list[dict]:
        """Request and gather one dump per worker, in wid order.

        *after_request* runs once, right after the dump broadcast —
        the overlap window where the workers are busy serializing and
        master-side work (fragment folding) is free."""
        self.send_all(("dump", final))
        if after_request is not None:
            after_request()
        dumps: dict[int, dict] = {}

        def take(msg):
            if msg[0] == "dump":
                dumps[msg[1]] = msg[2]
                return True
            return on_msg is not None and on_msg(msg)

        deadline = time.monotonic() + timeout_s
        dead_deadline = None
        while len(dumps) < self.nshards:
            self.drain_results(take)
            if len(dumps) >= self.nshards:
                break
            now = time.monotonic()
            if now > deadline:
                raise _PoolFailure("timed out waiting for shard dumps")
            missing_dead = [
                wid
                for wid, proc in enumerate(self.procs)
                if wid not in dumps and not proc.is_alive()
            ]
            if missing_dead:
                # a worker exits right after its final dump, so a dead
                # process is not proof of failure while its last message
                # may still be in flight — grace-period it, then fail
                if dead_deadline is None:
                    dead_deadline = now + 1.0
                elif now > dead_deadline:
                    raise _PoolFailure(
                        f"worker {missing_dead[0]} died before dumping"
                    )
                time.sleep(0.02)  # its sentinel makes wait_events moot
            else:
                dead_deadline = None
                self.wait_events(0.05)
        return [dumps[wid] for wid in range(self.nshards)]

    def shutdown(self) -> None:
        deadline = time.monotonic() + _JOIN_TIMEOUT_S
        for proc in self.procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (*self.inboxes, self.results):
            q.close()
            q.cancel_join_thread()
        self.store.unlink()


class _FragAccumulator:
    """The master-side half of the streaming merge: per-worker graph
    fragments stashed raw as they arrive during the run, then folded in
    the window between the dump request and the last dump's arrival —
    i.e. while workers are busy pickling their tails, which is the only
    window on a saturated machine where master-side decode work truly
    overlaps instead of stealing worker cycles.  Its parts are the
    single source of truth for :func:`_merge_graph`; workers only ever
    ship deltas.  ``overlap_s`` counts fragment folds, ``tail_s`` the
    post-join dump folds."""

    def __init__(self, nshards: int, store) -> None:
        self.parts = [
            {"wid": wid, "configs": [], "edges": [], "terminals": []}
            for wid in range(nshards)
        ]
        self.store = store
        self.pending: list[tuple] = []
        self.overlap_s = 0.0
        self.tail_s = 0.0
        self.frags = 0

    def fold(
        self, wid, base_c, configs, base_e, edges, base_t, terms,
        *, tail: bool = False,
    ) -> None:
        part = self.parts[wid]
        if (
            base_c != len(part["configs"])
            or base_e != len(part["edges"])
            or base_t != len(part["terminals"])
        ):
            # per-producer queue order makes this unreachable short of a
            # protocol bug; fail the attempt rather than corrupt a merge
            raise _PoolFailure(f"worker {wid} fragment stream out of order")
        t0 = time.perf_counter()
        decode = self.store.decode_config
        resolve = self.store.resolve
        part["configs"].extend(decode(p) for p in configs)
        part["edges"].extend(
            (s, sl, tuple(resolve(h) for h in acts), dl)
            for s, sl, acts, dl in edges
        )
        part["terminals"].extend(terms)
        elapsed = time.perf_counter() - t0
        if tail:
            self.tail_s += elapsed
        else:
            self.overlap_s += elapsed
            self.frags += 1

    def on_msg(self, msg) -> bool:
        """Results-queue handler: stashes ``frag`` messages for the
        overlap window (folding them on arrival would contend with the
        workers that are still expanding)."""
        if msg[0] == "frag":
            self.pending.append(msg)
            return True
        return False

    def flush_pending(self) -> None:
        """Fold every stashed fragment, in arrival order (per-producer
        queue order keeps each worker's stream contiguous)."""
        pending, self.pending = self.pending, []
        for msg in pending:
            self.fold(*msg[1:])

    def fold_dump(self, dump: dict, *, tail: bool = True) -> None:
        self.fold(
            dump["wid"],
            dump["base_configs"], dump["configs"],
            dump["base_edges"], dump["edges"],
            dump["base_terminals"], dump["terminals"],
            tail=tail,
        )


def _canonical_order(configs: list[Config]) -> list[Config]:
    """Global deterministic ordering: by stable digest, ``repr`` as the
    collision tie-break (cheap: computed only for colliding digests)."""
    groups: dict[int, list[Config]] = {}
    for config in configs:
        groups.setdefault(stable_digest(config), []).append(config)
    out: list[Config] = []
    for digest in sorted(groups):
        group = groups[digest]
        if len(group) > 1:
            group.sort(key=repr)
        out.extend(group)
    return out


def _merge_graph(parts, snap_edges, snap_terminals, init_cfg, metrics):
    """The canonical merge: accumulated per-worker parts (+ any
    resumed-snapshot content) into one graph with
    scheduling-independent ids and orderings.

    Returns ``(graph, edge_items, term_items, frag)`` where the item
    lists carry ``is_new`` flags (False for snapshot-inherited content,
    which observers of a resumed run must not be re-notified about) and
    ``frag`` maps each configuration to its owning ``(shard, lid)``.
    """
    frag: dict[tuple[int, int], Config] = {}
    all_configs: list[Config] = []
    for d in parts:
        for lid, config in enumerate(d["configs"]):
            frag[(d["wid"], lid)] = config
            all_configs.append(config)
    graph = ConfigGraph()
    graph.metrics = metrics
    for config in _canonical_order(all_configs):
        _, fresh = graph.add_config(config)
        # shard ownership is a partition: equal configs share a digest,
        # hence a shard, hence were deduplicated there
        assert fresh, "cross-shard duplicate — digest partition broken"
    graph.initial = graph.config_id(init_cfg)

    edge_items = [
        (graph.config_id(src), actions, graph.config_id(dst), False)
        for src, dst, actions in snap_edges
    ]
    for d in parts:
        for src_shard, src_lid, actions, dst_lid in d["edges"]:
            edge_items.append(
                (
                    graph.config_id(frag[(src_shard, src_lid)]),
                    actions,
                    graph.config_id(d["configs"][dst_lid]),
                    True,
                )
            )
    # (src, pid) is unique per edge — each configuration is expanded by
    # exactly one owner, contributing at most one edge per process — so
    # this key is a total order and the sort is scheduling-independent
    edge_items.sort(key=lambda e: (e[0], e[1][0].pid, e[2]))
    for src, actions, dst, _ in edge_items:
        graph.add_edge(src, dst, actions)

    term_items = [
        (graph.config_id(config), status, False)
        for config, status in snap_terminals
    ]
    for d in parts:
        for lid, status in d["terminals"]:
            term_items.append(
                (graph.config_id(frag[(d["wid"], lid)]), status, True)
            )
    term_items.sort(key=lambda t: t[0])
    for cid, status, _ in term_items:
        graph.mark_terminal(cid, status)
    return graph, edge_items, term_items, frag


def _sum_dump_stats(stats, dumps, parts, base=None) -> int:
    """Fold per-worker counters into *stats*; returns total dedup hits.

    Cumulative counters start from *base* (the resumed snapshot's stats)
    when given; absolute quantities (terminal counts, graph sizes) are
    recomputed by the caller from the merged graph instead.  Shard sizes
    come from *parts* (the accumulated per-worker graph content) — the
    dumps themselves only carry deltas.
    """
    if base is not None:
        stats.expansions = base.expansions
        stats.actions_executed = base.actions_executed
        stats.selector_faults = base.selector_faults
        stats.engine_faults = base.engine_faults
        stats.handoffs = base.handoffs
        stats.steals = base.steals
        stats.peak_rss_bytes = base.peak_rss_bytes
        stats.degraded_observers = base.degraded_observers
        stats.msg_bytes = getattr(base, "msg_bytes", 0)
        stats.cand_msgs = getattr(base, "cand_msgs", 0)
        stats.cand_suppressed = getattr(base, "cand_suppressed", 0)
    dedup = 0
    for d in dumps:
        ws = d["stats"]
        stats.expansions += ws["expansions"]
        stats.actions_executed += ws["actions_executed"]
        stats.selector_faults += ws["selector_faults"]
        stats.engine_faults += ws["engine_faults"]
        stats.handoffs += ws["handoffs"]
        stats.steals += ws["steals"]
        stats.msg_bytes += ws["msg_bytes"]
        stats.cand_msgs += ws["cand_msgs"]
        stats.cand_suppressed += ws["cand_suppressed"]
        dedup += ws["dedup_hits"]
        if ws["peak_rss_bytes"] > stats.peak_rss_bytes:
            stats.peak_rss_bytes = ws["peak_rss_bytes"]
    stats.shard_sizes = tuple(len(p["configs"]) for p in parts)
    stats.worker_expansions = tuple(d["stats"]["executed"] for d in dumps)
    return dedup


def _emit_trace_batch(tracer, records) -> None:
    """Re-emit one worker task's records, renumbered into the master's
    sequence space (contiguous-range remap keeps intra-batch structure;
    batch emission order is canonical, so the result is byte-stable)."""
    if not records:
        return
    seqs = [r["seq"] for r in records]
    seqs += [r["end_seq"] for r in records if "end_seq" in r]
    lo, hi = min(seqs), max(seqs)
    base = tracer._seq  # the master allocates the renumbered range
    for r in records:
        r = dict(r)
        r["seq"] = base + r["seq"] - lo
        if "end_seq" in r:
            r["end_seq"] = base + r["end_seq"] - lo
        tracer.emit(r)
    tracer._seq = base + (hi - lo) + 1


def _read_bfs_snapshot(path, fingerprint, opts):
    """Load a ``driver="bfs"`` snapshot into merge-ready form."""
    payload = read_snapshot(
        path, driver="bfs", fingerprint=fingerprint,
        options_key=opts.resume_key(),
    )
    old = payload["graph"]
    queued = set(payload["queue"])
    return {
        "stats": payload["stats"],
        "stubborn": payload.get("stubborn"),
        "configs": list(old.configs),
        "queued_gids": list(payload["queue"]),
        "queued": queued,
        "initial": old.configs[old.initial],
        "edges": [
            (old.configs[e.src], old.configs[e.dst], e.actions)
            for e in old.edges
        ],
        "terminals": [
            (old.configs[cid], status)
            for cid, status in sorted(old.terminal.items())
        ],
    }


def _bfs_attempt(
    program, opts, observers, checkpointer, resume_from, restarts
):
    from repro.explore.explorer import (
        ExploreStats,
        _ObserverGuard,
        _attached_progress,
        _attached_registry,
        _attached_tracer,
        _current_rss_bytes,
        _finalize,
        _truncate,
    )

    t0 = time.perf_counter()
    deadline = None if opts.time_limit_s is None else t0 + opts.time_limit_s
    nshards = opts.jobs
    metrics = _attached_registry(observers)
    tracer = _attached_tracer(observers)
    emitter = _attached_progress(observers)
    digest_base = digest_stats()
    access = _make_access(program, opts)
    fingerprint = program_fingerprint(program)

    snap = None
    if resume_from is not None:
        snap = _read_bfs_snapshot(resume_from, fingerprint, opts)
        init = snap["initial"]
        outstanding0 = len(snap["queued_gids"])
    else:
        init = initial_config(
            program, track_procstrings=opts.step.track_procstrings
        )
        outstanding0 = 1

    stats = ExploreStats(
        backend="parallel", jobs=nshards, worker_restarts=restarts
    )
    if snap is not None:
        stats.resumed = True
    guard = _ObserverGuard(observers, stats, metrics, tracer)

    spawn_span = (
        tracer.begin_span("parallel.spawn", jobs=nshards)
        if tracer is not None
        else None
    )
    pool = _Pool(
        program, opts, nshards,
        outstanding0, len(snap["configs"]) if snap else 0,
        want_metrics=metrics is not None,
        want_trace=tracer is not None,
        trace_wall=tracer.record_wall if tracer is not None else True,
    )
    if spawn_span is not None:
        tracer.end_span(spawn_span)
    acc = _FragAccumulator(nshards, pool.store)
    try:
        # ---- seed ----------------------------------------------------
        if snap is not None:
            preload: list[list] = [[] for _ in range(nshards)]
            queue_lids: list[list[int]] = [[] for _ in range(nshards)]
            for gid, config in enumerate(snap["configs"]):
                s = shard_of(config, nshards)
                if gid in snap["queued"]:
                    queue_lids[s].append(len(preload[s]))
                preload[s].append(pool.store.encode_config(config))
            for s in range(nshards):
                pool.inboxes[s].put(("preload", preload[s], queue_lids[s]))
        else:
            pool.inboxes[shard_of(init, nshards)].put(
                ("cand", nshards,
                 [(0, pool.store.encode_config(init), None, None, ())])
            )

        run_span = (
            tracer.begin_span("parallel.run", jobs=nshards)
            if tracer is not None
            else None
        )
        cp = checkpointer
        next_cp = cp.every if cp is not None else None
        shared = pool.shared
        last_progress = None
        last_progress_t = time.monotonic()

        # ---- drive ---------------------------------------------------
        while True:
            pool.drain_results(acc.on_msg)
            if shared.outstanding.value == 0:
                break
            now = time.monotonic()
            if not stats.truncated:
                if deadline is not None and time.perf_counter() > deadline:
                    _truncate(stats, "time", tracer)
                elif shared.engine_fault.value:
                    _truncate(stats, "internal-error", tracer)
                elif shared.configs.value > opts.max_configs:
                    _truncate(stats, "configs", tracer)
                elif opts.max_rss_bytes is not None:
                    rss = _current_rss_bytes()
                    if rss > stats.peak_rss_bytes:
                        stats.peak_rss_bytes = rss
                    if rss > opts.max_rss_bytes:
                        _truncate(stats, "memory", tracer)
                if stats.truncated:
                    shared.mode.value = _DRAIN
            if metrics is not None:
                metrics.observe(
                    "parallel.queue_depth",
                    sum(shared.qdepth[s] for s in range(nshards)),
                )
            if emitter is not None and emitter.due():
                # shard depths and steal counts are scheduling-dependent
                # (like ExploreStats.steals) — live telemetry, never part
                # of the byte-stable final documents
                depths = [shared.qdepth[s] for s in range(nshards)]
                emitter.emit(
                    "parallel",
                    configs=shared.configs.value,
                    expansions=shared.expansions.value,
                    outstanding=shared.outstanding.value,
                    frontier=sum(depths),
                    shard_depths=depths,
                    shard_steals=[shared.steals[s] for s in range(nshards)],
                    msg_bytes=sum(
                        shared.msg_bytes[s] for s in range(nshards)
                    ),
                    suppressed=sum(
                        shared.suppressed[s] for s in range(nshards)
                    ),
                )
            if (
                next_cp is not None
                and not stats.truncated
                and shared.expansions.value >= next_cp
            ):
                stopped = _quiescent_checkpoint(
                    pool, acc, cp, stats, opts, fingerprint, snap, init,
                    tracer,
                )
                while next_cp <= shared.expansions.value:
                    next_cp += cp.every
                if stopped:
                    _truncate(stats, "interrupted", tracer)
                    shared.mode.value = _DRAIN
                    pool.send_all(("resume",))  # unpark into the drain
                last_progress_t = time.monotonic()
                continue
            progress = (
                shared.outstanding.value,
                shared.configs.value,
                shared.expansions.value,
                shared.suspended.value,
            )
            if progress != last_progress:
                last_progress = progress
                last_progress_t = now
            elif now - last_progress_t > opts.parallel_watchdog_s:
                raise _PoolFailure(
                    f"no progress for {opts.parallel_watchdog_s:.0f}s with "
                    f"{progress[0]} work units outstanding (wedged worker?)"
                )
            wait_s = _WAIT_S
            if not stats.truncated:
                if next_cp is not None:
                    wait_s = _TRIGGER_WAIT_S
                if opts.max_rss_bytes is not None:
                    wait_s = _TRIGGER_WAIT_S
                if shared.configs.value > opts.max_configs - _BUDGET_GUARD:
                    wait_s = _TRIGGER_WAIT_S
                if deadline is not None:
                    wait_s = min(
                        wait_s,
                        max(0.0005, deadline - time.perf_counter()),
                    )
            pool.wait_events(wait_s)
            pool.check_alive()

        dumps = pool.collect_dumps(
            final=True, timeout_s=_JOIN_TIMEOUT_S, on_msg=acc.on_msg,
            after_request=acc.flush_pending,
        )
        if run_span is not None:
            tracer.end_span(run_span)

        # ---- canonical merge ----------------------------------------
        merge_span = (
            tracer.begin_span("parallel.merge") if tracer is not None else None
        )
        acc.flush_pending()  # fragments that raced the dump request
        for d in dumps:
            acc.fold_dump(d)
        graph, edge_items, term_items, frag = _merge_graph(
            acc.parts,
            snap["edges"] if snap else [],
            snap["terminals"] if snap else [],
            init,
            metrics,
        )
        dedup = _sum_dump_stats(
            stats, dumps, acc.parts, snap["stats"] if snap else None
        )
        stats.msg_bytes += pool.rx_dump_bytes
        stats.merge_overlap_s = acc.overlap_s
        stats.merge_tail_s = acc.tail_s
        preloaded = (
            {graph.config_id(c) for c in snap["configs"]} if snap else set()
        )
        owner_of = {graph.config_id(c): key for key, c in frag.items()}
        trace_batches: dict[tuple, list] = {}
        for d in dumps:
            if d["trace"]:
                trace_batches.update(d["trace"])
        for cid in range(graph.num_configs):
            if cid not in preloaded:
                guard.on_config(graph, cid, graph.configs[cid], True, None)
            if tracer is not None:
                batch = trace_batches.get(owner_of.get(cid))
                if batch:
                    _emit_trace_batch(tracer, batch)
        for src, actions, dst, is_new in edge_items:
            if is_new:
                guard.on_edge(graph, src, dst, actions)
        for cid, status, is_new in term_items:
            if status == TERMINATED:
                stats.num_terminated += 1
            elif status == DEADLOCK:
                stats.num_deadlocks += 1
            else:
                stats.num_faults += 1
            if is_new:
                guard.on_config(graph, cid, graph.configs[cid], False, status)

        merged_stubborn = _merge_stubborn(
            [snap["stubborn"] if snap else None]
            + [d["stubborn"] for d in dumps]
        )
        if metrics is not None:
            for d in dumps:
                if d["metrics"]:
                    metrics.merge(d["metrics"])
            if dedup:
                metrics.inc("explore.intern.hits", dedup)
            balance = stats.shard_balance
            if balance is not None:
                metrics.set_gauge("parallel.shard_balance", balance)
            metrics.inc("parallel.handoffs", stats.handoffs)
            metrics.inc("parallel.steals", stats.steals)
            metrics.inc("parallel.msg_bytes", stats.msg_bytes)
            metrics.inc("parallel.cand_msgs", stats.cand_msgs)
            metrics.inc("parallel.cand_suppressed", stats.cand_suppressed)
            metrics.timer("parallel.merge_overlap_s").add(acc.overlap_s)
            metrics.timer("parallel.merge_tail_s").add(acc.tail_s)
        if merge_span is not None:
            tracer.end_span(
                merge_span, configs=graph.num_configs, edges=graph.num_edges
            )
        result = _finalize(
            program, graph, stats, opts, access, None, guard, metrics, t0,
            checkpointer, tracer, digest_base=digest_base, progress=emitter,
        )
        stats.stubborn = merged_stubborn
        return result
    finally:
        pool.shutdown()


def _quiescent_checkpoint(
    pool, acc, cp, stats, opts, fingerprint, snap, init, tracer
) -> bool:
    """Pause the pool at a quiescent point, snapshot, resume (unless
    ``stop_after`` says to stop).  Returns True when the engine should
    stop (the resume-equivalence "pull the plug here" knob)."""
    from repro.explore.explorer import ExploreStats

    shared = pool.shared
    shared.mode.value = _PAUSE
    deadline = time.monotonic() + max(opts.parallel_watchdog_s, 5.0)
    while True:
        pool.drain_results(acc.on_msg)
        # ``outstanding`` only decreases and ``suspended`` only grows
        # during a pause, and suspended <= outstanding always — so
        # reading outstanding *first* makes equality prove quiescence
        out = shared.outstanding.value
        if out == shared.suspended.value:
            break
        pool.check_alive()
        if time.monotonic() > deadline:
            raise _PoolFailure("pool failed to quiesce for a checkpoint")
        pool.wait_events(_WAIT_S)
    dumps = pool.collect_dumps(
        final=False, timeout_s=_JOIN_TIMEOUT_S, on_msg=acc.on_msg,
        after_request=acc.flush_pending,
    )
    acc.flush_pending()
    for d in dumps:
        acc.fold_dump(d, tail=False)

    graph, _, term_items, frag = _merge_graph(
        acc.parts,
        snap["edges"] if snap else [],
        snap["terminals"] if snap else [],
        init,
        None,
    )
    cp_stats = ExploreStats(backend="parallel", jobs=opts.jobs)
    _sum_dump_stats(cp_stats, dumps, acc.parts, snap["stats"] if snap else None)
    cp_stats.msg_bytes += pool.rx_dump_bytes
    for _, status, _n in term_items:
        if status == TERMINATED:
            cp_stats.num_terminated += 1
        elif status == DEADLOCK:
            cp_stats.num_deadlocks += 1
        else:
            cp_stats.num_faults += 1
    cp_stats.resumed = stats.resumed
    cp_stats.worker_restarts = stats.worker_restarts
    # d["parked"] entries are (owner, lid): resolve against the owner
    queued = sorted(
        graph.config_id(frag[(owner, lid)])
        for d in dumps
        for owner, lid in d["parked"]
    )
    payload = {
        "driver": "bfs",
        "fingerprint": fingerprint,
        "options_key": opts.resume_key(),
        "graph": graph,
        "stats": cp_stats,
        "stubborn": _merge_stubborn(
            [snap["stubborn"] if snap else None]
            + [d["stubborn"] for d in dumps]
        ),
        "queue": queued,
        "processed": set(range(graph.num_configs)) - set(queued),
    }
    span = (
        tracer.begin_span("checkpoint.write", index=cp.written)
        if tracer is not None
        else None
    )
    try:
        write_snapshot(cp.path, payload)
        cp.written += 1
        if span is not None:
            tracer.end_span(span, ok=True)
    except Exception as exc:  # I/O must never kill the run
        cp.faults += 1
        if span is not None:
            tracer.end_span(span, ok=False)
        LOG.warning(
            "checkpoint write to %r failed (%s); continuing without it",
            cp.path, exc,
        )
    if cp.stop_after is not None and cp.written >= cp.stop_after:
        return True
    shared.mode.value = _RUN
    pool.send_all(("resume",))
    return False


def _merge_stubborn(parts: list) -> StubbornStats | None:
    """Sum per-worker selector statistics (None when the policy is
    ``full``)."""
    merged: StubbornStats | None = None
    for part in parts:
        if part is None:
            continue
        if merged is None:
            merged = StubbornStats()
        merged.steps += part.steps
        merged.enabled_total += part.enabled_total
        merged.chosen_total += part.chosen_total
        merged.singleton_steps += part.singleton_steps
    return merged


# --------------------------------------------------------------------------
# sleep mode: master-sequenced DFS, sharded expansion servers
# --------------------------------------------------------------------------


def _sleep_worker_main(
    wid, nshards, program, opts, inboxes, results, shared, store,
    want_metrics, want_trace, trace_wall,
):
    """Worker process entry point (sleep mode).

    Sleep-set pruning is order-dependent, so the DFS itself runs on the
    master (:func:`repro.explore.explorer._explore_sleep`); each worker
    only *expands* the configurations of its shard, keeping that shard's
    memo cache and digest tables warm across requests.
    """
    from repro.explore.explorer import _expand

    gc.disable()  # same rationale as the BFS worker entry point
    try:
        store.bind(wid)
        access = _make_access(program, opts)
        cache = ExpandCache() if getattr(opts, "memo", True) else None
        digest_base = digest_stats()
        wreg = None
        if want_metrics:
            from repro.metrics.registry import MetricsRegistry

            wreg = MetricsRegistry()
        tracer = sink = None
        if want_trace:
            from repro.trace.sinks import ListSink
            from repro.trace.tracer import Tracer

            sink = ListSink()
            tracer = Tracer(sink, shard=wid, record_wall=trace_wall)
        served = 0
        while True:
            msg = inboxes[wid].get()
            if msg[0] == "expand":
                _maybe_chaos_exit()
                config = store.decode_config(msg[1])
                served += 1
                try:
                    chaos.kick("eval")
                    expansions = _expand(
                        program, config, access, opts, wreg, tracer, cache
                    )
                    reply = (
                        "exp", True,
                        pickle.dumps(
                            expansions, protocol=pickle.HIGHEST_PROTOCOL
                        ),
                    )
                except Exception as exc:
                    reply = ("exp", False, repr(exc))
                results.put(
                    reply + (sink.drain() if sink is not None else None,)
                )
            elif msg[0] == "dump":
                if wreg is not None:
                    from repro.explore.explorer import _emit_incremental_metrics

                    _emit_incremental_metrics(wreg, cache, digest_base)
                results.put(
                    (
                        "dump",
                        wid,
                        {
                            "wid": wid,
                            "served": served,
                            "metrics": (
                                wreg.snapshot() if wreg is not None else None
                            ),
                        },
                    )
                )
                if msg[1]:
                    return
    except Exception:
        try:
            results.put(("crash", wid, traceback.format_exc()))
        except Exception:
            pass
    finally:
        store.close()


def _sleep_attempt(
    program, opts, observers, checkpointer, resume_from, restarts
):
    from repro.explore.explorer import (
        _attached_registry,
        _attached_tracer,
        _explore_sleep,
    )

    nshards = opts.jobs
    metrics = _attached_registry(observers)
    tracer = _attached_tracer(observers)
    access = _make_access(program, opts)
    selector = _make_selector(program, access, opts.policy)
    if selector is not None and metrics is not None:
        selector.metrics = metrics

    spawn_span = (
        tracer.begin_span("parallel.spawn", jobs=nshards)
        if tracer is not None
        else None
    )
    pool = _Pool(
        program, opts, nshards, 0, 0,
        want_metrics=metrics is not None,
        want_trace=tracer is not None,
        trace_wall=tracer.record_wall if tracer is not None else True,
        worker_main=_sleep_worker_main,
    )
    if spawn_span is not None:
        tracer.end_span(spawn_span)

    def expand_fn(config, cid):
        """Farm one expansion to the config's shard owner (synchronous:
        the DFS needs the result to take its next pruning decision)."""
        pool.inboxes[shard_of(config, nshards)].put(
            ("expand", pool.store.encode_config(config))
        )
        deadline = time.monotonic() + opts.parallel_watchdog_s
        while True:
            try:
                msg = pool.results.get(timeout=0.05)
                break
            except _queue.Empty:
                pool.check_alive()  # raises _PoolFailure past the guards
                if time.monotonic() > deadline:
                    raise _PoolFailure(
                        "expansion worker unresponsive (wedged?)"
                    )
        if msg[0] == "crash":
            raise ReproError(
                f"parallel exploration worker {msg[1]} crashed:\n{msg[2]}"
            )
        _, ok, data, records = msg
        if tracer is not None and records:
            _emit_trace_batch(tracer, records)
        if not ok:
            # surfaces through _expand_guarded exactly like a serial
            # expansion crash: internal-error truncation, not a retry
            raise RuntimeError(f"worker-side expansion failed: {data}")
        return pickle.loads(data)

    try:
        result = _explore_sleep(
            program, opts, access, selector, observers, metrics,
            checkpointer, resume_from,
            expand_fn=expand_fn, backend="parallel", jobs=nshards,
        )
        result.stats.worker_restarts = restarts
        dumps = pool.collect_dumps(final=True, timeout_s=_JOIN_TIMEOUT_S)
        result.stats.worker_expansions = tuple(d["served"] for d in dumps)
        if metrics is not None:
            for d in dumps:
                if d["metrics"]:
                    metrics.merge(d["metrics"])
        return result
    finally:
        pool.shutdown()
