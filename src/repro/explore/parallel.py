"""Parallel sharded exploration backend (``ExploreOptions.backend="parallel"``).

Architecture
------------
The state space is hash-partitioned across ``jobs`` worker processes by
:func:`repro.semantics.config.shard_of` (a ``PYTHONHASHSEED``-independent
structural digest).  Each worker *owns* one shard: it holds the visited
set for its slice of the configuration space, expands only
configurations it owns, and runs its own copy of the expansion policy
(full / stubborn / stubborn-proc, with or without coarsening).

Exploration is **level-synchronous BFS**: every round the master
scatters each shard's batch of candidate configurations, workers
deduplicate against their visited sets, expand the fresh ones, and
return (a) the shard-local id of every candidate, (b) terminal
classifications, (c) edges ``(src_lid, actions, dst_shard, dst_index)``
referencing their outgoing per-shard successor batches, and (d) those
successor batches themselves.  The master routes successor batches to
their owning shards for the next round — a *handoff* when the owner
differs from the producer — and resolves each round's edges against the
next round's shard-local ids.  No configuration is ever shipped twice
for the same edge: the master reconstructs each shard's fresh-config
fragment from the batches it already sent, mirroring the worker's id
assignment.

At the end the per-shard fragments are merged into one
:class:`~repro.explore.graph.ConfigGraph` in deterministic (shard,
local-id) order, and per-worker stats are summed.  For a complete
(untruncated) run the merged graph has *exactly* the node count, edge
count, and result-configuration set of the serial BFS reference — the
property the cross-backend differential suite in
``tests/explore/test_parallel_differential.py`` enforces program by
program.  Config ids may differ from the serial driver's (discovery
order is by round and shard, not by a single FIFO), which is why the
equivalence contract is counts + result sets, not id-identical graphs.

Determinism: replies are gathered in shard order, per-worker output
order is its deterministic processing order, and dict iteration is
insertion-ordered everywhere — two runs with the same ``jobs`` produce
identical merged graphs, and different ``jobs`` values produce identical
counts and result sets.

Composition rules
-----------------
- policies ``full`` / ``stubborn`` / ``stubborn-proc`` and ``coarsen``:
  compose (each worker runs its own selector — selection is a pure
  function of one configuration's expansions);
- budgets (``max_configs``, ``time_limit_s``, ``max_rss_bytes``):
  compose, enforced by the master at round granularity, with one final
  non-expanding *drain* round so every produced edge resolves;
- ``sleep=True`` and checkpoint/resume: **rejected** with
  :class:`~repro.util.errors.ReproError` (depth-first cross-state
  sharing and single-file snapshots do not shard) — see
  :func:`repro.explore.explorer.explore`.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
import traceback

from repro.analyses.accesses import AccessAnalysis, access_analysis
from repro.explore.algorithm1 import AlgorithmOneSelector
from repro.explore.graph import DEADLOCK, TERMINATED, ConfigGraph
from repro.explore.stubborn import StubbornSelector, StubbornStats
from repro.lang.program import Program
from repro.explore.memo import ExpandCache
from repro.semantics.config import (
    Config,
    digest_stats,
    initial_config,
    shard_of,
)
from repro.util.errors import ReproError

LOG = logging.getLogger("repro.explore.parallel")

#: Seconds to wait for a worker to exit after "finish" before killing it.
_JOIN_TIMEOUT_S = 10.0


def _make_selector(program, access, policy):
    if policy == "stubborn":
        return AlgorithmOneSelector(program, access)
    if policy == "stubborn-proc":
        return StubbornSelector(program, access)
    return None


# --------------------------------------------------------------------------
# worker side
# --------------------------------------------------------------------------


def _worker_main(
    conn,
    program: Program,
    opts,
    shard_id: int,
    nshards: int,
    want_metrics: bool = False,
    want_trace: bool = False,
    trace_wall: bool = True,
):
    """One shard-owner process: dedup, expand, classify, partition.

    Protocol (master -> worker): ``("round", batch, expand)`` then a
    final ``("finish",)``.  Every reply is ``("ok", payload)``; an
    unexpected exception replies ``("crash", traceback)`` once and
    exits.

    Deep instrumentation: with ``want_metrics`` the worker keeps its own
    :class:`~repro.metrics.MetricsRegistry` (shipped back in the finish
    summary, merged into the master registry); with ``want_trace`` it
    records spans/events into its own shard-tagged tracer and ships each
    round's records with the round reply — the master re-emits them in
    shard order, so worker-side detail lands in the same trace file.
    """
    # Late import: the guarded expansion/selection helpers live in the
    # serial driver and carry the chaos-injection points with them, so a
    # worker degrades exactly like the serial engine does.
    from repro.explore.explorer import (
        ExploreStats,
        _current_rss_bytes,
        _emit_incremental_metrics,
        _expand_guarded,
        _select_guarded,
        _terminal_status_fast,
    )

    try:
        if opts.coarse_derefs:
            access = AccessAnalysis(program, coarse_derefs=True)
        else:
            access = access_analysis(program)
        selector = _make_selector(program, access, opts.policy)
        # Per-shard expansion memo: shard ownership means this worker
        # sees every expansion of its slice, so locality is as good as
        # the serial cache's.  The digest baseline is captured *here*
        # because fork inherits the parent's process-global counters.
        wcache = ExpandCache() if getattr(opts, "memo", True) else None
        digest_base = digest_stats()
        wreg = None
        if want_metrics:
            from repro.metrics.registry import MetricsRegistry

            wreg = MetricsRegistry()
            if selector is not None:
                selector.metrics = wreg
        wtracer = None
        wsink = None
        if want_trace:
            from repro.trace.sinks import ListSink
            from repro.trace.tracer import Tracer

            wsink = ListSink()
            wtracer = Tracer(wsink, shard=shard_id, record_wall=trace_wall)
        visited: dict[Config, int] = {}
        configs: list[Config] = []
        stats = ExploreStats()
        dedup_hits = 0

        while True:
            msg = conn.recv()
            if msg[0] == "finish":
                if wreg is not None:
                    _emit_incremental_metrics(wreg, wcache, digest_base)
                conn.send(
                    (
                        "ok",
                        {
                            "expansions": stats.expansions,
                            "actions_executed": stats.actions_executed,
                            "selector_faults": stats.selector_faults,
                            "engine_faults": stats.engine_faults,
                            "dedup_hits": dedup_hits,
                            "peak_rss_bytes": _current_rss_bytes(),
                            "stubborn": (
                                selector.stats if selector is not None else None
                            ),
                            "metrics": (
                                wreg.snapshot() if wreg is not None else None
                            ),
                        },
                    )
                )
                return
            _, batch, expand = msg
            batch_lids: list[int] = []
            terminals: list[tuple[int, str]] = []
            edges: list[tuple[int, tuple, int, int]] = []
            out: dict[int, list[Config]] = {}
            out_index: dict[int, dict[Config, int]] = {}
            fault = False

            for config in batch:
                lid = visited.get(config)
                if lid is not None:
                    dedup_hits += 1
                    batch_lids.append(lid)
                    continue
                lid = len(configs)
                visited[config] = lid
                configs.append(config)
                batch_lids.append(lid)
                if not expand:
                    continue
                stats.expansions += 1
                if wreg is not None:
                    wreg.inc("explore.expansions")
                status = _terminal_status_fast(config)
                if status is not None:
                    terminals.append((lid, status))
                    continue
                expansions = _expand_guarded(
                    program, config, lid, access, opts, stats, wreg, wtracer,
                    cache=wcache,
                )
                if expansions is None:
                    fault = True
                    continue
                enabled = [e for e in expansions if e.enabled]
                if not enabled:
                    terminals.append((lid, DEADLOCK))
                    continue
                chosen = _select_guarded(
                    selector, expansions, enabled, stats, wreg, wtracer
                )
                for exp in chosen:
                    succ = exp.succ
                    assert succ is not None
                    dshard = shard_of(succ, nshards)
                    bucket = out.setdefault(dshard, [])
                    idx_map = out_index.setdefault(dshard, {})
                    idx = idx_map.get(succ)
                    if idx is None:
                        idx = len(bucket)
                        idx_map[succ] = idx
                        bucket.append(succ)
                    edges.append((lid, exp.actions, dshard, idx))
                    stats.actions_executed += len(exp.actions)

            trace_batch = wsink.drain() if wsink is not None else None
            conn.send(
                ("ok", (batch_lids, terminals, edges, out, fault, trace_batch))
            )
    except Exception:
        try:
            conn.send(("crash", traceback.format_exc()))
        except Exception:
            pass


# --------------------------------------------------------------------------
# master side
# --------------------------------------------------------------------------


class _WorkerPool:
    """The worker processes plus their pipes, with hard cleanup."""

    def __init__(
        self,
        program: Program,
        opts,
        nshards: int,
        want_metrics: bool = False,
        want_trace: bool = False,
        trace_wall: bool = True,
    ) -> None:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self.conns = []
        self.procs = []
        for shard in range(nshards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    child, program, opts, shard, nshards,
                    want_metrics, want_trace, trace_wall,
                ),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def scatter(self, batches: list[list[Config]], expand: bool) -> None:
        for conn, batch in zip(self.conns, batches):
            conn.send(("round", batch, expand))

    def gather(self) -> list:
        """Round replies in shard order; raises on a worker crash."""
        replies = []
        for shard, conn in enumerate(self.conns):
            try:
                kind, payload = conn.recv()
            except (EOFError, OSError) as exc:
                raise ReproError(
                    f"parallel exploration worker {shard} died "
                    f"unexpectedly ({exc!r})"
                ) from exc
            if kind == "crash":
                raise ReproError(
                    f"parallel exploration worker {shard} crashed:\n{payload}"
                )
            replies.append(payload)
        return replies

    def finish(self) -> list[dict]:
        for conn in self.conns:
            conn.send(("finish",))
        return self.gather()

    def shutdown(self) -> None:
        for conn in self.conns:
            try:
                conn.close()
            except OSError:
                pass
        deadline = time.monotonic() + _JOIN_TIMEOUT_S
        for proc in self.procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)


def explore_parallel(program: Program, opts, observers=()):
    """Sharded multiprocess BFS; same result contract as the serial
    driver (invoked through :func:`repro.explore.explorer.explore` with
    ``backend="parallel"`` — do not call directly with sleep sets or
    checkpointing, they are rejected upstream)."""
    from repro.explore.explorer import (
        ExploreResult,
        ExploreStats,
        _ObserverGuard,
        _attached_registry,
        _attached_tracer,
        _current_rss_bytes,
        _finalize,
        _truncate,
    )

    t0 = time.perf_counter()
    deadline = None if opts.time_limit_s is None else t0 + opts.time_limit_s
    nshards = opts.jobs
    metrics = _attached_registry(observers)
    tracer = _attached_tracer(observers)
    # master-side digest work (shard routing of the initial config, any
    # digests taken during the merge) — workers count their own
    digest_base = digest_stats()

    if opts.coarse_derefs:
        access = AccessAnalysis(program, coarse_derefs=True)
    else:
        access = access_analysis(program)

    stats = ExploreStats(backend="parallel", jobs=nshards)
    guard = _ObserverGuard(observers, stats, metrics, tracer)

    init = initial_config(program, track_procstrings=opts.step.track_procstrings)
    init_shard = shard_of(init, nshards)

    # Per-shard bookkeeping mirrored from the workers:
    #   next_lid[s]   — the worker's next fresh local id
    #   fragments[s]  — local id -> Config (reconstructed from sent batches)
    next_lid = [0] * nshards
    fragments: list[list[Config]] = [[] for _ in range(nshards)]
    # Edges whose destination is a candidate of the *next* round:
    # (src_shard, src_lid, actions, dst_shard, dst_batch_pos).
    unresolved: list[tuple[int, int, tuple, int, int]] = []
    # Fully resolved edges in production order:
    # (src_shard, src_lid, actions, dst_shard, dst_lid).
    edges_final: list[tuple[int, int, tuple, int, int]] = []
    # (shard, lid, status) in classification order.
    terminal_marks: list[tuple[int, int, str]] = []

    pending: list[list[Config]] = [[] for _ in range(nshards)]
    pending[init_shard].append(init)

    pool = _WorkerPool(
        program,
        opts,
        nshards,
        want_metrics=metrics is not None,
        want_trace=tracer is not None,
        trace_wall=tracer.record_wall if tracer is not None else True,
    )
    worker_summaries: list[dict] = []
    try:
        engine_fault = False
        while any(pending):
            expand = True
            if deadline is not None and time.perf_counter() > deadline:
                _truncate(stats, "time", tracer)
            elif engine_fault:
                _truncate(stats, "internal-error", tracer)
            elif sum(next_lid) > opts.max_configs:
                _truncate(stats, "configs", tracer)
            elif opts.max_rss_bytes is not None:
                rss = _current_rss_bytes()
                if rss > stats.peak_rss_bytes:
                    stats.peak_rss_bytes = rss
                if rss > opts.max_rss_bytes:
                    _truncate(stats, "memory", tracer)
            if stats.truncated:
                # Drain round: assign ids to the already-produced
                # successors so every edge resolves, but expand nothing.
                expand = False

            batch_sizes = [len(b) for b in pending]
            stats.rounds += 1
            if metrics is not None:
                metrics.inc("parallel.rounds")
                metrics.observe("parallel.queue_depth", sum(batch_sizes))

            round_span = scatter_span = None
            if tracer is not None:
                round_span = tracer.begin_span(
                    "explore.round",
                    index=stats.rounds - 1,
                    queued=sum(batch_sizes),
                    expand=expand,
                )
                scatter_span = tracer.begin_span(
                    "parallel.scatter", configs=sum(batch_sizes)
                )
            pool.scatter(pending, expand)
            if tracer is not None:
                tracer.end_span(scatter_span)
                gather_span = tracer.begin_span("parallel.gather")
            replies = pool.gather()
            if tracer is not None:
                tracer.end_span(gather_span)
                # Worker-recorded spans/events for this round, re-emitted
                # in shard order: trace order is (round, shard, seq) —
                # deterministic, and each record keeps its shard tag.
                for reply in replies:
                    for record in reply[5] or ():
                        tracer.emit(record)
                tracer.end_span(round_span)

            # Reconstruct each shard's fresh-config fragment from the
            # batch we just sent it (same first-seen order the worker
            # used for id assignment).
            lids_by_shard = []
            for s, (batch_lids, terminals, edges, out, fault, _tb) in enumerate(
                replies
            ):
                lids_by_shard.append(batch_lids)
                for pos, lid in enumerate(batch_lids):
                    if lid == next_lid[s]:
                        fragments[s].append(pending[s][pos])
                        next_lid[s] += 1
                for lid, status in terminals:
                    terminal_marks.append((s, lid, status))
                engine_fault = engine_fault or fault

            # Resolve the previous round's edges against this round's
            # shard-local ids.
            for src_shard, src_lid, actions, dst_shard, dst_pos in unresolved:
                dst_lid = lids_by_shard[dst_shard][dst_pos]
                edges_final.append(
                    (src_shard, src_lid, actions, dst_shard, dst_lid)
                )
            unresolved = []

            # Route this round's successor batches and re-key this
            # round's edges to positions in the next round's batches.
            next_pending: list[list[Config]] = [[] for _ in range(nshards)]
            for s, (batch_lids, terminals, edges, out, fault, _tb) in enumerate(
                replies
            ):
                offsets = {}
                for dshard, bucket in out.items():
                    offsets[dshard] = len(next_pending[dshard])
                    next_pending[dshard].extend(bucket)
                    if dshard != s:
                        stats.handoffs += len(bucket)
                for src_lid, actions, dshard, idx in edges:
                    unresolved.append(
                        (s, src_lid, actions, dshard, offsets[dshard] + idx)
                    )
            pending = next_pending

        worker_summaries = pool.finish()
    finally:
        pool.shutdown()

    # ------------------------------------------------------------------
    # deterministic merge
    # ------------------------------------------------------------------

    stats.shard_sizes = tuple(next_lid)
    for summary in worker_summaries:
        stats.expansions += summary["expansions"]
        stats.actions_executed += summary["actions_executed"]
        stats.selector_faults += summary["selector_faults"]
        stats.engine_faults += summary["engine_faults"]
        if summary["peak_rss_bytes"] > stats.peak_rss_bytes:
            stats.peak_rss_bytes = summary["peak_rss_bytes"]

    graph = ConfigGraph()
    graph.metrics = metrics
    gid: dict[tuple[int, int], int] = {}
    for s in range(nshards):
        for lid, config in enumerate(fragments[s]):
            g, fresh = graph.add_config(config)
            # Shard ownership is a partition: equal configs share a
            # digest, hence a shard, hence were deduplicated there.
            assert fresh, "cross-shard duplicate — digest partition broken"
            gid[(s, lid)] = g
    if fragments[init_shard]:
        graph.initial = gid[(init_shard, 0)]
    for s in range(nshards):
        for lid, config in enumerate(fragments[s]):
            guard.on_config(graph, gid[(s, lid)], config, True, None)

    for src_shard, src_lid, actions, dst_shard, dst_lid in edges_final:
        src = gid[(src_shard, src_lid)]
        dst = gid[(dst_shard, dst_lid)]
        graph.add_edge(src, dst, actions)
        guard.on_edge(graph, src, dst, actions)

    for s, lid, status in terminal_marks:
        cid = gid[(s, lid)]
        graph.mark_terminal(cid, status)
        if status == TERMINATED:
            stats.num_terminated += 1
        elif status == DEADLOCK:
            stats.num_deadlocks += 1
        else:
            stats.num_faults += 1
        guard.on_config(graph, cid, graph.configs[cid], False, status)

    merged_stubborn = _merge_stubborn(
        [s["stubborn"] for s in worker_summaries]
    )
    if metrics is not None:
        # Worker registries carry the deep series recorded where the
        # work happened (explore.expansions, stubborn.*, coarsen.*);
        # merging them replaces the old master-side re-derivation, which
        # silently dropped everything a worker observed.
        for summary in worker_summaries:
            snap = summary.get("metrics")
            if snap:
                metrics.merge(snap)
        total_hits = sum(s["dedup_hits"] for s in worker_summaries)
        if total_hits:
            metrics.inc("explore.intern.hits", total_hits)
        balance = stats.shard_balance
        if balance is not None:
            metrics.set_gauge("parallel.shard_balance", balance)
        metrics.inc("parallel.handoffs", stats.handoffs)
    result: ExploreResult = _finalize(
        program, graph, stats, opts, access, None, guard, metrics, t0, None,
        tracer, digest_base=digest_base,
    )
    stats.stubborn = merged_stubborn
    return result


def _merge_stubborn(parts: list) -> StubbornStats | None:
    """Sum per-worker selector statistics (None when the policy is
    ``full``)."""
    merged: StubbornStats | None = None
    for part in parts:
        if part is None:
            continue
        if merged is None:
            merged = StubbornStats()
        merged.steps += part.steps
        merged.enabled_total += part.enabled_total
        merged.chosen_total += part.chosen_total
        merged.singleton_steps += part.singleton_steps
    return merged
