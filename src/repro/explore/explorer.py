"""The exploration driver: build the configuration graph of a program.

Policies
--------
``full``
    Classic exhaustive interleaving: every enabled process is expanded
    at every configuration (the baseline the paper starts from).
``stubborn``
    Expand only a minimal stubborn set (Algorithm 1): eliminates
    redundant interleavings while preserving all result configurations.

Orthogonally, ``coarsen=True`` fuses thread-local runs into atomic
blocks (virtual coarsening, Observation 5).

Exploration is breadth-first and fully deterministic.

Resilience
----------
The engine degrades instead of crashing (see
:mod:`repro.resilience`):

- every budget (``max_configs``, ``time_limit_s``, ``max_rss_bytes``)
  truncates gracefully, recording *why* in
  ``stats.truncation_reason``;
- observer callbacks are dispatched through a guard: a raising observer
  is logged, disabled for the rest of the run, and counted in
  ``stats.degraded_observers`` — it never kills exploration;
- a crashing stubborn selector falls back to expanding the full enabled
  set at that configuration (a sound over-approximation) and counts in
  ``stats.selector_faults``;
- an exception while computing a configuration's expansions drops that
  configuration's successors, truncates with reason ``internal-error``,
  and counts in ``stats.engine_faults``;
- a :class:`~repro.resilience.checkpoint.Checkpointer` snapshots the
  frontier/graph/stats periodically, and ``resume_from=`` continues a
  snapshot deterministically (same graph and stats as an uninterrupted
  run).
"""

from __future__ import annotations

import logging
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field

try:
    import resource as _resource
except ImportError:  # non-Unix platforms: RSS telemetry reads 0
    _resource = None

from repro.analyses.accesses import AccessAnalysis, access_analysis
from repro.explore.algorithm1 import AlgorithmOneSelector
from repro.explore.coarsen import build_block
from repro.explore.expansion import Expansion
from repro.explore.graph import DEADLOCK, FAULT, TERMINATED, ConfigGraph
from repro.explore.memo import ExpandCache, expand_memoized
from repro.explore.observers import Observer
from repro.explore.stubborn import StubbornSelector, StubbornStats
from repro.lang.program import Program
from repro.resilience import chaos
from repro.resilience.checkpoint import (
    Checkpointer,
    program_fingerprint,
    read_snapshot,
)
from repro.semantics.config import Config, digest_stats, initial_config
from repro.semantics.step import StepOptions, next_infos

LOG = logging.getLogger("repro.explore")

#: ``getrusage().ru_maxrss`` is kilobytes on Linux, bytes on macOS.
_RU_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024

#: Expansions between RSS samples (a /proc read is cheap but not free).
_RSS_SAMPLE_EVERY = 64


@dataclass(frozen=True)
class ExploreOptions:
    """Exploration configuration."""

    policy: str = "full"  # "full" | "stubborn" | "stubborn-proc"
    coarsen: bool = False
    sleep: bool = False
    #: "serial" (single-process BFS/DFS) or "parallel" (multiprocessing
    #: frontier sharding, see :mod:`repro.explore.parallel`)
    backend: str = "serial"
    #: worker-process count for ``backend="parallel"``
    jobs: int = 1
    step: StepOptions = StepOptions()
    max_configs: int = 1_000_000
    max_block_len: int = 256
    #: wall-clock budget; exploration truncates gracefully (sets
    #: ``stats.truncated``, like ``max_configs``) when it runs out
    time_limit_s: float | None = None
    #: peak-memory budget: truncate gracefully when the process's
    #: resident set exceeds this many bytes (sampled every
    #: ``_RSS_SAMPLE_EVERY`` expansions)
    max_rss_bytes: int | None = None
    #: ablation: compute static access sets without points-to (every
    #: dereference conflicts with every site)
    coarse_derefs: bool = False
    #: footprint memoization of per-process expansions (see
    #: :mod:`repro.explore.memo`); a pure optimization — graphs and
    #: result digests are bit-identical with it off — so it is not part
    #: of ``describe()``/``resume_key()``
    memo: bool = True
    #: parallel backend: seconds without any worker progress before the
    #: master declares the pool dead/wedged and retries the run (an
    #: operational knob like the budgets — not part of ``resume_key()``)
    parallel_watchdog_s: float = 30.0

    def describe(self) -> str:
        c = "+coarsen" if self.coarsen else ""
        s = "+sleep" if self.sleep else ""
        j = f"@j{self.jobs}" if self.backend == "parallel" else ""
        return f"{self.policy}{c}{s}{j}"

    def resume_key(self) -> tuple:
        """The option fields a resumed run must match (budgets excluded
        on purpose: resuming with a *larger* budget is the point)."""
        return (
            self.policy,
            self.coarsen,
            self.sleep,
            self.coarse_derefs,
            self.max_block_len,
            self.step,
        )


@dataclass
class ExploreStats:
    """Counters reported by the engine."""

    num_configs: int = 0
    num_edges: int = 0
    num_terminated: int = 0
    num_deadlocks: int = 0
    num_faults: int = 0
    expansions: int = 0
    actions_executed: int = 0
    truncated: bool = False
    #: why the search was cut short: "configs" | "time" | "memory" |
    #: "interrupted" | "internal-error" (None for a complete run)
    truncation_reason: str | None = None
    #: peak resident set observed during the run (bytes; 0 if the
    #: platform exposes no RSS)
    peak_rss_bytes: int = 0
    #: observers disabled after raising from a callback
    degraded_observers: int = 0
    #: stubborn selections that crashed and fell back to full expansion
    selector_faults: int = 0
    #: expansion computations that crashed (their successors are lost)
    engine_faults: int = 0
    #: snapshot writes that failed (run continued without them)
    checkpoint_faults: int = 0
    #: snapshots successfully written
    checkpoints_written: int = 0
    #: this run continued from a checkpoint
    resumed: bool = False
    #: degradation-ladder trail, e.g. ("full->stubborn: configs",);
    #: filled by :func:`repro.resilience.explore_resilient`
    escalations: tuple[str, ...] = ()
    #: which driver produced this result ("serial" | "parallel")
    backend: str = "serial"
    #: worker-process count (1 for the serial backend)
    jobs: int = 1
    #: successor candidates routed to a *different* worker's shard
    #: (parallel backend only — the cross-worker communication volume;
    #: scheduling-dependent, unlike the graph itself)
    handoffs: int = 0
    #: work-stealing transfers between workers (parallel backend only;
    #: scheduling-dependent)
    steals: int = 0
    #: whole-run retries after a worker died or wedged (parallel only)
    worker_restarts: int = 0
    #: tasks executed per worker, stealing included (parallel backend;
    #: scheduling-dependent, sums to ``expansions`` minus terminals)
    worker_expansions: tuple[int, ...] = ()
    #: per-shard visited-set sizes at the end of the run
    shard_sizes: tuple[int, ...] = ()
    #: interconnect bytes shipped over the worker queues (candidate
    #: batches, steal transfers, graph fragments, and dumps; parallel
    #: backend only — scheduling-dependent, like ``steals``)
    msg_bytes: int = 0
    #: candidate batch messages sent between workers (parallel only)
    cand_msgs: int = 0
    #: candidates suppressed at the source by the per-destination
    #: seen-digest cache instead of being shipped (parallel only)
    cand_suppressed: int = 0
    #: canonical-merge seconds overlapped with workers still draining
    merge_overlap_s: float = 0.0
    #: canonical-merge seconds after the last worker joined
    merge_tail_s: float = 0.0
    stubborn: StubbornStats | None = None

    @property
    def shard_balance(self) -> float | None:
        """Largest shard over the mean shard size (1.0 = perfectly
        balanced hash partition); None for serial runs."""
        if not self.shard_sizes or sum(self.shard_sizes) == 0:
            return None
        mean = sum(self.shard_sizes) / len(self.shard_sizes)
        return max(self.shard_sizes) / mean


@dataclass
class ExploreResult:
    """Everything exploration produced."""

    program: Program
    graph: ConfigGraph
    stats: ExploreStats
    options: ExploreOptions
    access: AccessAnalysis

    def final_stores(self) -> set[tuple]:
        """Observable result-configuration payloads (the reduction
        invariant: identical across policies)."""
        return self.graph.result_stores()

    def terminal_globals(self) -> set[tuple]:
        """Globals tuples of terminated (non-fault) configurations."""
        return {
            self.graph.configs[cid].globals
            for cid in self.graph.terminals(TERMINATED)
        }

    def global_values(self, *names: str) -> set[tuple]:
        """Final values of the given globals across terminated runs."""
        idx = [self.program.global_index(n) for n in names]
        return {
            tuple(g[i] for i in idx) for g in self.terminal_globals()
        }

    def deadlock_configs(self) -> list[Config]:
        return [self.graph.configs[cid] for cid in self.graph.terminals(DEADLOCK)]

    def fault_messages(self) -> set[str]:
        return {
            self.graph.configs[cid].fault or ""
            for cid in self.graph.terminals(FAULT)
        }


def explore(
    program: Program,
    policy: str = "full",
    *,
    coarsen: bool = False,
    sleep: bool = False,
    options: ExploreOptions | None = None,
    observers: tuple[Observer, ...] = (),
    checkpointer: Checkpointer | None = None,
    resume_from: str | None = None,
    expand_cache: ExpandCache | None = None,
) -> ExploreResult:
    """Explore *program*'s state space and return the graph + stats.

    ``policy``/``coarsen``/``sleep`` are convenience shortcuts; pass
    ``options`` for full control (it overrides the shortcuts).

    ``checkpointer`` snapshots the search periodically; ``resume_from``
    continues from a snapshot path (the program and the non-budget
    options must match the snapshot, else
    :class:`~repro.resilience.checkpoint.CheckpointError`).

    ``expand_cache`` seeds the serial drivers' footprint-memo cache
    with a caller-owned (possibly pre-warmed) instance — the analysis
    service's warm-start hook.  The caller keeps the reference, so it
    can export the filled cache afterwards.  Ignored when
    ``opts.memo`` is off; the parallel backend keeps its own per-shard
    caches and ignores it too.
    """
    opts = (
        options
        if options is not None
        else ExploreOptions(policy=policy, coarsen=coarsen, sleep=sleep)
    )
    if opts.policy not in ("full", "stubborn", "stubborn-proc"):
        raise ValueError(f"unknown policy {opts.policy!r}")
    if opts.backend not in ("serial", "parallel"):
        raise ValueError(f"unknown backend {opts.backend!r}")

    if opts.backend == "parallel":
        if opts.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {opts.jobs}")
        from repro.explore.parallel import explore_parallel

        return explore_parallel(
            program,
            opts,
            observers=observers,
            checkpointer=checkpointer,
            resume_from=resume_from,
        )

    if opts.coarse_derefs:
        access = AccessAnalysis(program, coarse_derefs=True)
    else:
        access = access_analysis(program)
    selector = None
    if opts.policy == "stubborn":
        selector = AlgorithmOneSelector(program, access)
    elif opts.policy == "stubborn-proc":
        selector = StubbornSelector(program, access)

    metrics = _attached_registry(observers)
    if selector is not None and metrics is not None:
        selector.metrics = metrics
    tracer = _attached_tracer(observers)
    progress = _attached_progress(observers)

    if opts.sleep:
        return _explore_sleep(
            program, opts, access, selector, observers, metrics,
            checkpointer, resume_from, expand_cache=expand_cache,
        )

    rounds = None
    if tracer is not None:
        from repro.trace.tracer import SpanChunker

        rounds = SpanChunker(tracer, "explore.round")
    if checkpointer is not None:
        checkpointer.tracer = tracer

    t0 = time.perf_counter()
    deadline = None if opts.time_limit_s is None else t0 + opts.time_limit_s
    fingerprint = program_fingerprint(program)
    if not opts.memo:
        cache = None
    else:
        cache = expand_cache if expand_cache is not None else ExpandCache()
    digest_base = digest_stats()

    if resume_from is not None:
        payload = read_snapshot(
            resume_from,
            driver="bfs",
            fingerprint=fingerprint,
            options_key=opts.resume_key(),
        )
        graph = payload["graph"]
        stats = payload["stats"]
        queue: deque[int] = deque(payload["queue"])
        processed: set[int] = payload["processed"]
        stats.resumed = True
        # snapshots are cross-backend (a parallel run may have written
        # this one): the backend tag describes *this* run, not the donor
        stats.backend, stats.jobs = "serial", 1
        graph.metrics = metrics
        if selector is not None and payload.get("stubborn") is not None:
            selector.stats = payload["stubborn"]
    else:
        graph = ConfigGraph()
        graph.metrics = metrics
        stats = ExploreStats()
        init = initial_config(
            program, track_procstrings=opts.step.track_procstrings
        )
        init_id, _ = graph.add_config(init)
        graph.initial = init_id
        queue = deque([init_id])
        processed = set()
    guard = _ObserverGuard(observers, stats, metrics, tracer)
    if resume_from is None:
        # observers see every configuration, the initial one included
        # (the parallel merge notifies it too — keep the counts equal)
        guard.on_config(
            graph, graph.initial, graph.configs[graph.initial], True, None
        )

    def payload_now() -> dict:
        return {
            "driver": "bfs",
            "fingerprint": fingerprint,
            "options_key": opts.resume_key(),
            "graph": graph,
            "stats": stats,
            "stubborn": selector.stats if selector is not None else None,
            "queue": list(queue),
            "processed": processed,
        }

    while queue:
        if deadline is not None and time.perf_counter() > deadline:
            _truncate(stats, "time", tracer)
            queue.clear()
            break
        if checkpointer is not None and checkpointer.tick(payload_now):
            _truncate(stats, "interrupted", tracer)
            break
        cid = queue.popleft()
        if cid in processed:
            continue
        processed.add(cid)
        config = graph.configs[cid]
        stats.expansions += 1
        if rounds is not None:
            rounds.tick()
        if not _within_memory_budget(stats, opts):
            _truncate(stats, "memory", tracer)
            queue.clear()
            break
        if metrics is not None:
            metrics.inc("explore.expansions")
            metrics.observe("explore.frontier_depth", len(queue))
        if progress is not None and progress.due():
            progress.emit(
                "explore",
                configs=graph.num_configs,
                edges=graph.num_edges,
                frontier=len(queue),
                expansions=stats.expansions,
                cache_hits=cache.hits if cache is not None else 0,
                cache_misses=cache.misses if cache is not None else 0,
            )

        status = _terminal_status_fast(config)
        if status is not None:
            _mark_terminal(graph, cid, config, status, stats, guard)
            continue

        expansions = _expand_guarded(
            program, config, cid, access, opts, stats, metrics, tracer,
            cache=cache,
        )
        if expansions is None:
            continue
        enabled = [e for e in expansions if e.enabled]
        if not enabled:
            _mark_terminal(graph, cid, config, DEADLOCK, stats, guard)
            continue

        chosen = _select_guarded(
            selector, expansions, enabled, stats, metrics, tracer
        )

        for exp in chosen:
            succ = exp.succ
            assert succ is not None
            dst, fresh = graph.add_config(succ)
            graph.add_edge(cid, dst, exp.actions)
            stats.actions_executed += len(exp.actions)
            guard.on_edge(graph, cid, dst, exp.actions)
            if fresh:
                guard.on_config(graph, dst, succ, True, None)
                if graph.num_configs > opts.max_configs:
                    _truncate(stats, "configs", tracer)
                    queue.clear()
                    break
                queue.append(dst)

        if stats.truncated:
            break

    if rounds is not None:
        rounds.close()
    return _finalize(
        program, graph, stats, opts, access, selector, guard, metrics, t0,
        checkpointer, tracer, cache=cache, digest_base=digest_base,
        progress=progress,
    )


# --------------------------------------------------------------------------


def _attached_registry(observers):
    """The metrics registry of the first observer exposing one, or None.

    Duck-typed (any observer with a non-None ``registry`` attribute
    counts) so this module need not import :mod:`repro.metrics`; when it
    returns None the engine skips every telemetry update.
    """
    for ob in observers:
        reg = getattr(ob, "registry", None)
        if reg is not None:
            return reg
    return None


def _attached_tracer(observers):
    """The tracer of the first observer exposing one, or None.

    Same duck-typed contract as :func:`_attached_registry` (attach a
    :class:`repro.trace.TraceRecorder`); None means every span/event
    site in the engine is a single ``is not None`` test.
    """
    for ob in observers:
        tracer = getattr(ob, "tracer", None)
        if tracer is not None:
            return tracer
    return None


def _attached_progress(observers):
    """The progress emitter of the first observer exposing one, or None.

    Same duck-typed contract as :func:`_attached_registry` (attach a
    :class:`repro.progress.ProgressEmitter`); None means every snapshot
    site in the drivers is a single ``is not None`` test.
    """
    for ob in observers:
        progress = getattr(ob, "progress", None)
        if progress is not None:
            return progress
    return None


class _ObserverGuard:
    """Fault isolation for observer dispatch.

    An observer that raises is logged, counted in
    ``stats.degraded_observers``, and dropped for the rest of the run;
    its co-observers keep receiving every event.  The ``observer`` chaos
    point fires inside the per-observer try so injected faults take the
    same path as real ones.
    """

    __slots__ = ("live", "stats", "metrics", "tracer")

    def __init__(
        self, observers, stats: ExploreStats, metrics, tracer=None
    ) -> None:
        self.live: list = list(observers)
        self.stats = stats
        self.metrics = metrics
        self.tracer = tracer

    def _dispatch(self, method: str, *args) -> None:
        if not self.live:
            return
        dead: list = []
        for ob in self.live:
            try:
                chaos.kick("observer")
                getattr(ob, method)(*args)
            except Exception as exc:
                dead.append(ob)
                self.stats.degraded_observers += 1
                if self.metrics is not None:
                    self.metrics.inc("explore.observer_faults")
                if self.tracer is not None:
                    self.tracer.event(
                        "explore.observer_evicted",
                        observer=type(ob).__name__,
                        method=method,
                    )
                LOG.warning(
                    "observer %s raised in %s (%s); disabling it for the "
                    "rest of the run",
                    type(ob).__name__, method, exc,
                )
        if dead:
            self.live = [ob for ob in self.live if ob not in dead]

    def on_config(self, graph, cid, config, fresh, status) -> None:
        self._dispatch("on_config", graph, cid, config, fresh, status)

    def on_edge(self, graph, src, dst, actions) -> None:
        self._dispatch("on_edge", graph, src, dst, actions)

    def on_done(self, graph) -> None:
        self._dispatch("on_done", graph)


def _truncate(stats: ExploreStats, reason: str, tracer=None) -> None:
    """Cut the search short; the first reason wins (later budget trips
    on an already-truncated run add no information)."""
    stats.truncated = True
    if stats.truncation_reason is None:
        stats.truncation_reason = reason
        if tracer is not None:
            tracer.event("explore.truncated", reason=reason)


def _current_rss_bytes() -> int:
    """Resident set size now: /proc on Linux, peak RSS elsewhere."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    if _resource is not None:
        ru = _resource.getrusage(_resource.RUSAGE_SELF)
        return ru.ru_maxrss * _RU_MAXRSS_SCALE
    return 0


def _within_memory_budget(stats: ExploreStats, opts: ExploreOptions) -> bool:
    """Sample RSS periodically; False when the budget is blown."""
    if stats.expansions % _RSS_SAMPLE_EVERY != 1:
        return True
    rss = _current_rss_bytes()
    if rss > stats.peak_rss_bytes:
        stats.peak_rss_bytes = rss
    return opts.max_rss_bytes is None or rss <= opts.max_rss_bytes


def _expand_guarded(
    program, config, cid, access, opts, stats, metrics, tracer=None,
    cache=None, expand_fn=None,
) -> list[Expansion] | None:
    """Expansion with engine-bug isolation: an exception here loses this
    configuration's successors, so the run is marked truncated
    (``internal-error``) — but it never raises.

    *expand_fn* substitutes the expansion computation (the parallel
    sleep driver farms it to worker processes); the chaos ``eval`` point
    then fires on the worker side, inside the substituted function."""
    try:
        if expand_fn is not None:
            return expand_fn(config, cid)
        chaos.kick("eval")
        return _expand(program, config, access, opts, metrics, tracer, cache)
    except Exception as exc:
        stats.engine_faults += 1
        _truncate(stats, "internal-error", tracer)
        if metrics is not None:
            metrics.inc("explore.engine_faults")
        # warn once, demote repeats: a bug hit at every configuration
        # would otherwise flood the log (the count is in the stats)
        level = logging.WARNING if stats.engine_faults == 1 else logging.DEBUG
        LOG.log(
            level,
            "expansion of configuration %d failed (%s); its successors "
            "are dropped and the run is marked truncated", cid, exc,
        )
        return None


def _select_guarded(
    selector, expansions, enabled, stats, metrics, tracer=None
) -> list[Expansion]:
    """Stubborn selection with fallback: on a selector crash, expand the
    full enabled set at this configuration (always sound — a superset of
    any stubborn set's enabled members).

    With a tracer attached, each selection is one ``stubborn.closure``
    span carrying the enabled-set and chosen-set sizes — the per-config
    reduction decision, visible on the timeline."""
    if selector is None:
        return enabled
    if tracer is not None:
        handle = tracer.begin_span("stubborn.closure", enabled=len(enabled))
        chosen = _select_fallback(selector, expansions, enabled, stats, metrics)
        tracer.end_span(handle, chosen=len(chosen))
        return chosen
    return _select_fallback(selector, expansions, enabled, stats, metrics)


def _select_fallback(
    selector, expansions, enabled, stats, metrics
) -> list[Expansion]:
    try:
        chaos.kick("selector")
        return selector.select(expansions)
    except Exception as exc:
        stats.selector_faults += 1
        if metrics is not None:
            metrics.inc("explore.selector_faults")
        # a selector broken at every configuration would flood the log:
        # warn once, then demote repeats (the count is in the stats)
        level = logging.WARNING if stats.selector_faults == 1 else logging.DEBUG
        LOG.log(
            level,
            "stubborn selector failed (%s); expanding the full enabled "
            "set at this configuration", exc,
        )
        return enabled


def _terminal_status_fast(config: Config) -> str | None:
    if config.fault is not None:
        return FAULT
    if all(p.status == "done" for p in config.procs):
        return TERMINATED
    return None


def _mark_terminal(graph, cid, config, status, stats, guard) -> None:
    """Classify a terminal configuration — shared by both drivers.

    Idempotent: the sleep-set driver can revisit a configuration under a
    different sleep set; only the first visit counts and notifies.
    """
    if cid in graph.terminal:
        return
    graph.mark_terminal(cid, status)
    if status == TERMINATED:
        stats.num_terminated += 1
    elif status == DEADLOCK:
        stats.num_deadlocks += 1
    else:
        stats.num_faults += 1
    guard.on_config(graph, cid, config, False, status)


def _finalize(
    program, graph, stats, opts, access, selector, guard, metrics, t0,
    checkpointer=None, tracer=None, cache=None, digest_base=None,
    progress=None,
) -> ExploreResult:
    """Stat finalization + ``on_done`` fan-out — shared by both drivers
    (including truncated runs, so observers always see completion)."""
    stats.num_configs = graph.num_configs
    stats.num_edges = graph.num_edges
    stats.stubborn = selector.stats if selector is not None else None
    if checkpointer is not None:
        stats.checkpoints_written = checkpointer.written
        stats.checkpoint_faults += checkpointer.faults
    rss = _current_rss_bytes()
    if rss > stats.peak_rss_bytes:
        stats.peak_rss_bytes = rss
    if metrics is not None:
        elapsed = time.perf_counter() - t0
        metrics.timer("explore.wall_s").add(elapsed)
        metrics.set_gauge(
            "explore.expansions_per_s",
            stats.expansions / elapsed if elapsed > 0 else 0.0,
        )
        metrics.set_gauge("explore.peak_rss_bytes", stats.peak_rss_bytes)
        _emit_incremental_metrics(metrics, cache, digest_base)
    if tracer is not None:
        # args deliberately backend-neutral: the cross-backend trace
        # comparison asserts this event's args are equal serial vs jobs=N
        tracer.event(
            "explore.done",
            configs=stats.num_configs,
            edges=stats.num_edges,
            terminated=stats.num_terminated,
            deadlocks=stats.num_deadlocks,
            faults=stats.num_faults,
            truncated=stats.truncated,
            reason=stats.truncation_reason,
        )
        if metrics is not None:
            # surface ring-buffer truncation: a trace missing spans must
            # be distinguishable from a complete one
            dropped = sum(
                getattr(s, "dropped", 0) for s in getattr(tracer, "sinks", ())
            )
            if dropped:
                metrics.set_gauge("trace.dropped_spans", dropped)
    if progress is not None:
        progress.emit(
            "done",
            configs=stats.num_configs,
            edges=stats.num_edges,
            terminated=stats.num_terminated,
            deadlocks=stats.num_deadlocks,
            faults=stats.num_faults,
            expansions=stats.expansions,
            truncated=stats.truncated,
            reason=stats.truncation_reason,
        )
    guard.on_done(graph)
    return ExploreResult(
        program=program, graph=graph, stats=stats, options=opts, access=access
    )


def _emit_incremental_metrics(metrics, cache, digest_base) -> None:
    """Fold incremental-engine telemetry into the registry.

    *cache* carries the serial driver's expansion-memo counters (the
    parallel backend merges per-worker counters into the registry before
    :func:`_finalize`, so it passes None here); *digest_base* is the
    process-global :func:`~repro.semantics.config.digest_stats` snapshot
    taken at run start, so only this run's digest work is counted.  The
    derived rate gauges are computed from whatever ended up in the
    registry, identically for both backends.
    """
    if cache is not None:
        for name, val in cache.counters().items():
            if val:
                metrics.inc(name, val)
    if digest_base is not None:
        now = digest_stats()
        for stat, name in (
            ("component_reused", "digest.incremental"),
            ("component_new", "digest.component_new"),
            ("config_composed", "digest.config_composed"),
            ("config_cached", "digest.config_cached"),
        ):
            delta = now[stat] - digest_base[stat]
            if delta:
                metrics.inc(name, delta)
    hits = metrics.value("expand.cache_hits") if "expand.cache_hits" in metrics else 0
    misses = (
        metrics.value("expand.cache_misses")
        if "expand.cache_misses" in metrics
        else 0
    )
    if hits + misses:
        metrics.set_gauge("expand.cache_hit_rate", hits / (hits + misses))
    reused = (
        metrics.value("digest.incremental") if "digest.incremental" in metrics else 0
    )
    fresh = (
        metrics.value("digest.component_new")
        if "digest.component_new" in metrics
        else 0
    )
    if reused + fresh:
        metrics.set_gauge("digest.incremental_rate", reused / (reused + fresh))


def _explore_sleep(
    program: Program,
    opts: ExploreOptions,
    access: AccessAnalysis,
    selector,
    observers: tuple[Observer, ...],
    metrics=None,
    checkpointer: Checkpointer | None = None,
    resume_from: str | None = None,
    *,
    expand_fn=None,
    backend: str = "serial",
    jobs: int = 1,
    expand_cache: ExpandCache | None = None,
) -> ExploreResult:
    """Depth-first exploration with sleep sets (see
    :mod:`repro.explore.sleepsets`), composable with any policy.

    The parallel backend reuses this exact driver: sleep-set pruning is
    order-dependent, so the DFS stays master-sequenced and only the
    expensive part — computing expansions — is farmed out through
    *expand_fn* (same contract as :func:`_expand`, exceptions included:
    a worker-side fault re-raises here and takes the ordinary
    ``internal-error`` path).  Master sequencing is also what makes
    checkpoint/resume and the graph bit-identical across backends.
    """
    from repro.explore.sleepsets import entry_of, independent, transition_key

    tracer = _attached_tracer(observers)
    progress = _attached_progress(observers)
    rounds = None
    if tracer is not None:
        from repro.trace.tracer import SpanChunker

        rounds = SpanChunker(tracer, "explore.round")
    if checkpointer is not None:
        checkpointer.tracer = tracer

    t0 = time.perf_counter()
    deadline = None if opts.time_limit_s is None else t0 + opts.time_limit_s
    fingerprint = program_fingerprint(program)
    if not opts.memo:
        cache = None
    else:
        cache = expand_cache if expand_cache is not None else ExpandCache()
    digest_base = digest_stats()

    if resume_from is not None:
        payload = read_snapshot(
            resume_from,
            driver="sleep",
            fingerprint=fingerprint,
            options_key=opts.resume_key(),
        )
        graph = payload["graph"]
        stats = payload["stats"]
        explored: dict[int, list[frozenset]] = payload["explored"]
        seen_edges: set[tuple] = payload["seen_edges"]
        stack: list[tuple[int, frozenset]] = payload["stack"]
        stats.resumed = True
        graph.metrics = metrics
        if selector is not None and payload.get("stubborn") is not None:
            selector.stats = payload["stubborn"]
    else:
        graph = ConfigGraph()
        graph.metrics = metrics
        stats = ExploreStats()
        init = initial_config(
            program, track_procstrings=opts.step.track_procstrings
        )
        init_id, _ = graph.add_config(init)
        graph.initial = init_id
        # per-config list of sleep sets it has been explored with
        explored = {}
        seen_edges = set()
        stack = [(init_id, frozenset())]
    stats.backend, stats.jobs = backend, jobs
    guard = _ObserverGuard(observers, stats, metrics, tracer)
    if resume_from is None:
        guard.on_config(
            graph, graph.initial, graph.configs[graph.initial], True, None
        )

    def payload_now() -> dict:
        return {
            "driver": "sleep",
            "fingerprint": fingerprint,
            "options_key": opts.resume_key(),
            "graph": graph,
            "stats": stats,
            "stubborn": selector.stats if selector is not None else None,
            "explored": explored,
            "seen_edges": seen_edges,
            "stack": list(stack),
        }

    while stack:
        if deadline is not None and time.perf_counter() > deadline:
            _truncate(stats, "time", tracer)
            stack.clear()
            break
        if checkpointer is not None and checkpointer.tick(payload_now):
            _truncate(stats, "interrupted", tracer)
            break
        cid, sleep = stack.pop()
        prev = explored.get(cid)
        if prev is not None and any(p <= sleep for p in prev):
            continue
        if prev is None:
            explored[cid] = [sleep]
        else:
            prev[:] = [p for p in prev if not sleep <= p]
            prev.append(sleep)
        config = graph.configs[cid]
        stats.expansions += 1
        if rounds is not None:
            rounds.tick()
        if not _within_memory_budget(stats, opts):
            _truncate(stats, "memory", tracer)
            stack.clear()
            break
        if metrics is not None:
            metrics.inc("explore.expansions")
            metrics.observe("explore.frontier_depth", len(stack))
        if progress is not None and progress.due():
            progress.emit(
                "explore",
                configs=graph.num_configs,
                edges=graph.num_edges,
                frontier=len(stack),
                expansions=stats.expansions,
                cache_hits=cache.hits if cache is not None else 0,
                cache_misses=cache.misses if cache is not None else 0,
            )

        status = _terminal_status_fast(config)
        if status is not None:
            _mark_terminal(graph, cid, config, status, stats, guard)
            continue

        expansions = _expand_guarded(
            program, config, cid, access, opts, stats, metrics, tracer,
            cache=cache, expand_fn=expand_fn,
        )
        if expansions is None:
            continue
        enabled = [e for e in expansions if e.enabled]
        if not enabled:
            _mark_terminal(graph, cid, config, DEADLOCK, stats, guard)
            continue

        chosen = _select_guarded(
            selector, expansions, enabled, stats, metrics, tracer
        )
        sleeping_keys = {z.key for z in sleep}
        active = [
            e for e in chosen if transition_key(e.proc) not in sleeping_keys
        ]

        done: list = []
        pending: list[tuple[int, frozenset]] = []
        for exp in active:
            succ = exp.succ
            assert succ is not None
            dst, fresh = graph.add_config(succ)
            ekey = (cid, dst, tuple(a.label for a in exp.actions))
            if ekey not in seen_edges:
                seen_edges.add(ekey)
                graph.add_edge(cid, dst, exp.actions)
                stats.actions_executed += len(exp.actions)
                guard.on_edge(graph, cid, dst, exp.actions)
                if fresh:
                    guard.on_config(graph, dst, succ, True, None)
            if graph.num_configs > opts.max_configs:
                _truncate(stats, "configs", tracer)
                stack.clear()
                pending.clear()
                break
            child_sleep = frozenset(
                z for z in (set(sleep) | set(done)) if independent(z, exp)
            )
            pending.append((dst, child_sleep))
            done.append(entry_of(exp))
        # push in reverse so the first sibling is explored first (its
        # sleep set is the smallest)
        stack.extend(reversed(pending))
        if stats.truncated:
            break

    if rounds is not None:
        rounds.close()
    return _finalize(
        program, graph, stats, opts, access, selector, guard, metrics, t0,
        checkpointer, tracer, cache=cache, digest_base=digest_base,
        progress=progress,
    )


def _expand(
    program: Program,
    config: Config,
    access: AccessAnalysis,
    opts: ExploreOptions,
    metrics=None,
    tracer=None,
    cache: ExpandCache | None = None,
) -> list[Expansion]:
    """Per-process expansions at *config* (coarsened or single-step).

    With *cache* attached, the footprint-memoized path
    (:func:`repro.explore.memo.expand_memoized`) produces the identical
    expansion list while skipping re-interpretation on cache hits."""
    if cache is not None:
        return expand_memoized(
            program, config, access, opts, cache, metrics, tracer
        )
    infos = next_infos(program, config, opts.step)
    out: list[Expansion] = []
    for ni in infos:
        if not ni.enabled:
            out.append(
                Expansion(
                    proc=ni.proc,
                    enabled=False,
                    nes=ni.nes,
                    blocked_children=ni.blocked_children,
                )
            )
            continue
        if opts.coarsen:
            block = build_block(
                program,
                config,
                ni.proc.pid,
                access,
                opts.step,
                max_len=opts.max_block_len,
                metrics=metrics,
                tracer=tracer,
            )
            out.append(
                Expansion(
                    proc=ni.proc,
                    enabled=True,
                    succ=block.succ,
                    actions=block.actions,
                    reads=block.reads,
                    writes=block.writes,
                )
            )
        else:
            assert ni.action is not None
            out.append(
                Expansion(
                    proc=ni.proc,
                    enabled=True,
                    succ=ni.succ,
                    actions=(ni.action,),
                    reads=ni.action.reads,
                    writes=ni.action.writes,
                )
            )
    return out
