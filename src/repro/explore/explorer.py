"""The exploration driver: build the configuration graph of a program.

Policies
--------
``full``
    Classic exhaustive interleaving: every enabled process is expanded
    at every configuration (the baseline the paper starts from).
``stubborn``
    Expand only a minimal stubborn set (Algorithm 1): eliminates
    redundant interleavings while preserving all result configurations.

Orthogonally, ``coarsen=True`` fuses thread-local runs into atomic
blocks (virtual coarsening, Observation 5).

Exploration is breadth-first and fully deterministic.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.analyses.accesses import AccessAnalysis, access_analysis
from repro.explore.algorithm1 import AlgorithmOneSelector
from repro.explore.coarsen import build_block
from repro.explore.expansion import Expansion
from repro.explore.graph import DEADLOCK, FAULT, TERMINATED, ConfigGraph
from repro.explore.observers import Observer
from repro.explore.stubborn import StubbornSelector, StubbornStats
from repro.lang.program import Program
from repro.semantics.config import Config, initial_config
from repro.semantics.step import StepOptions, next_infos


@dataclass(frozen=True)
class ExploreOptions:
    """Exploration configuration."""

    policy: str = "full"  # "full" | "stubborn" | "stubborn-proc"
    coarsen: bool = False
    sleep: bool = False
    step: StepOptions = StepOptions()
    max_configs: int = 1_000_000
    max_block_len: int = 256
    #: wall-clock budget; exploration truncates gracefully (sets
    #: ``stats.truncated``, like ``max_configs``) when it runs out
    time_limit_s: float | None = None
    #: ablation: compute static access sets without points-to (every
    #: dereference conflicts with every site)
    coarse_derefs: bool = False

    def describe(self) -> str:
        c = "+coarsen" if self.coarsen else ""
        s = "+sleep" if self.sleep else ""
        return f"{self.policy}{c}{s}"


@dataclass
class ExploreStats:
    """Counters reported by the engine."""

    num_configs: int = 0
    num_edges: int = 0
    num_terminated: int = 0
    num_deadlocks: int = 0
    num_faults: int = 0
    expansions: int = 0
    actions_executed: int = 0
    truncated: bool = False
    stubborn: StubbornStats | None = None


@dataclass
class ExploreResult:
    """Everything exploration produced."""

    program: Program
    graph: ConfigGraph
    stats: ExploreStats
    options: ExploreOptions
    access: AccessAnalysis

    def final_stores(self) -> set[tuple]:
        """Observable result-configuration payloads (the reduction
        invariant: identical across policies)."""
        return self.graph.result_stores()

    def terminal_globals(self) -> set[tuple]:
        """Globals tuples of terminated (non-fault) configurations."""
        return {
            self.graph.configs[cid].globals
            for cid in self.graph.terminals(TERMINATED)
        }

    def global_values(self, *names: str) -> set[tuple]:
        """Final values of the given globals across terminated runs."""
        idx = [self.program.global_index(n) for n in names]
        return {
            tuple(g[i] for i in idx) for g in self.terminal_globals()
        }

    def deadlock_configs(self) -> list[Config]:
        return [self.graph.configs[cid] for cid in self.graph.terminals(DEADLOCK)]

    def fault_messages(self) -> set[str]:
        return {
            self.graph.configs[cid].fault or ""
            for cid in self.graph.terminals(FAULT)
        }


def explore(
    program: Program,
    policy: str = "full",
    *,
    coarsen: bool = False,
    sleep: bool = False,
    options: ExploreOptions | None = None,
    observers: tuple[Observer, ...] = (),
) -> ExploreResult:
    """Explore *program*'s state space and return the graph + stats.

    ``policy``/``coarsen``/``sleep`` are convenience shortcuts; pass
    ``options`` for full control (it overrides the shortcuts).
    """
    opts = (
        options
        if options is not None
        else ExploreOptions(policy=policy, coarsen=coarsen, sleep=sleep)
    )
    if opts.policy not in ("full", "stubborn", "stubborn-proc"):
        raise ValueError(f"unknown policy {opts.policy!r}")

    if opts.coarse_derefs:
        access = AccessAnalysis(program, coarse_derefs=True)
    else:
        access = access_analysis(program)
    selector = None
    if opts.policy == "stubborn":
        selector = AlgorithmOneSelector(program, access)
    elif opts.policy == "stubborn-proc":
        selector = StubbornSelector(program, access)

    metrics = _attached_registry(observers)
    if selector is not None and metrics is not None:
        selector.metrics = metrics

    if opts.sleep:
        return _explore_sleep(program, opts, access, selector, observers, metrics)

    t0 = time.perf_counter()
    deadline = None if opts.time_limit_s is None else t0 + opts.time_limit_s
    graph = ConfigGraph()
    graph.metrics = metrics
    stats = ExploreStats()
    init = initial_config(program, track_procstrings=opts.step.track_procstrings)
    init_id, _ = graph.add_config(init)
    graph.initial = init_id

    queue: deque[int] = deque([init_id])
    processed: set[int] = set()

    while queue:
        if deadline is not None and time.perf_counter() > deadline:
            stats.truncated = True
            queue.clear()
            break
        cid = queue.popleft()
        if cid in processed:
            continue
        processed.add(cid)
        config = graph.configs[cid]
        stats.expansions += 1
        if metrics is not None:
            metrics.inc("explore.expansions")
            metrics.observe("explore.frontier_depth", len(queue))

        status = _terminal_status_fast(config)
        if status is not None:
            _mark_terminal(graph, cid, config, status, stats, observers)
            continue

        expansions = _expand(program, config, access, opts, metrics)
        enabled = [e for e in expansions if e.enabled]
        if not enabled:
            _mark_terminal(graph, cid, config, DEADLOCK, stats, observers)
            continue

        chosen = selector.select(expansions) if selector is not None else enabled

        for exp in chosen:
            succ = exp.succ
            assert succ is not None
            dst, fresh = graph.add_config(succ)
            graph.add_edge(cid, dst, exp.actions)
            stats.actions_executed += len(exp.actions)
            for ob in observers:
                ob.on_edge(graph, cid, dst, exp.actions)
            if fresh:
                for ob in observers:
                    ob.on_config(graph, dst, succ, True, None)
                if graph.num_configs > opts.max_configs:
                    stats.truncated = True
                    queue.clear()
                    break
                queue.append(dst)

        if stats.truncated:
            break

    return _finalize(
        program, graph, stats, opts, access, selector, observers, metrics, t0
    )


# --------------------------------------------------------------------------


def _attached_registry(observers):
    """The metrics registry of the first observer exposing one, or None.

    Duck-typed (any observer with a non-None ``registry`` attribute
    counts) so this module need not import :mod:`repro.metrics`; when it
    returns None the engine skips every telemetry update.
    """
    for ob in observers:
        reg = getattr(ob, "registry", None)
        if reg is not None:
            return reg
    return None


def _terminal_status_fast(config: Config) -> str | None:
    if config.fault is not None:
        return FAULT
    if all(p.status == "done" for p in config.procs):
        return TERMINATED
    return None


def _mark_terminal(graph, cid, config, status, stats, observers) -> None:
    """Classify a terminal configuration — shared by both drivers.

    Idempotent: the sleep-set driver can revisit a configuration under a
    different sleep set; only the first visit counts and notifies.
    """
    if cid in graph.terminal:
        return
    graph.mark_terminal(cid, status)
    if status == TERMINATED:
        stats.num_terminated += 1
    elif status == DEADLOCK:
        stats.num_deadlocks += 1
    else:
        stats.num_faults += 1
    for ob in observers:
        ob.on_config(graph, cid, config, False, status)


def _finalize(
    program, graph, stats, opts, access, selector, observers, metrics, t0
) -> ExploreResult:
    """Stat finalization + ``on_done`` fan-out — shared by both drivers
    (including truncated runs, so observers always see completion)."""
    stats.num_configs = graph.num_configs
    stats.num_edges = graph.num_edges
    stats.stubborn = selector.stats if selector is not None else None
    if metrics is not None:
        elapsed = time.perf_counter() - t0
        metrics.timer("explore.wall_s").add(elapsed)
        metrics.set_gauge(
            "explore.expansions_per_s",
            stats.expansions / elapsed if elapsed > 0 else 0.0,
        )
    for ob in observers:
        ob.on_done(graph)
    return ExploreResult(
        program=program, graph=graph, stats=stats, options=opts, access=access
    )


def _explore_sleep(
    program: Program,
    opts: ExploreOptions,
    access: AccessAnalysis,
    selector,
    observers: tuple[Observer, ...],
    metrics=None,
) -> ExploreResult:
    """Depth-first exploration with sleep sets (see
    :mod:`repro.explore.sleepsets`), composable with any policy."""
    from repro.explore.sleepsets import entry_of, independent, transition_key

    t0 = time.perf_counter()
    deadline = None if opts.time_limit_s is None else t0 + opts.time_limit_s
    graph = ConfigGraph()
    graph.metrics = metrics
    stats = ExploreStats()
    init = initial_config(program, track_procstrings=opts.step.track_procstrings)
    init_id, _ = graph.add_config(init)
    graph.initial = init_id

    # per-config list of sleep sets it has been explored with
    explored: dict[int, list[frozenset]] = {}
    seen_edges: set[tuple] = set()
    stack: list[tuple[int, frozenset]] = [(init_id, frozenset())]

    while stack:
        if deadline is not None and time.perf_counter() > deadline:
            stats.truncated = True
            stack.clear()
            break
        cid, sleep = stack.pop()
        prev = explored.get(cid)
        if prev is not None and any(p <= sleep for p in prev):
            continue
        if prev is None:
            explored[cid] = [sleep]
        else:
            prev[:] = [p for p in prev if not sleep <= p]
            prev.append(sleep)
        config = graph.configs[cid]
        stats.expansions += 1
        if metrics is not None:
            metrics.inc("explore.expansions")
            metrics.observe("explore.frontier_depth", len(stack))

        status = _terminal_status_fast(config)
        if status is not None:
            _mark_terminal(graph, cid, config, status, stats, observers)
            continue

        expansions = _expand(program, config, access, opts, metrics)
        enabled = [e for e in expansions if e.enabled]
        if not enabled:
            _mark_terminal(graph, cid, config, DEADLOCK, stats, observers)
            continue

        chosen = selector.select(expansions) if selector is not None else enabled
        sleeping_keys = {z.key for z in sleep}
        active = [
            e for e in chosen if transition_key(e.proc) not in sleeping_keys
        ]

        done: list = []
        pending: list[tuple[int, frozenset]] = []
        for exp in active:
            succ = exp.succ
            assert succ is not None
            dst, fresh = graph.add_config(succ)
            ekey = (cid, dst, tuple(a.label for a in exp.actions))
            if ekey not in seen_edges:
                seen_edges.add(ekey)
                graph.add_edge(cid, dst, exp.actions)
                stats.actions_executed += len(exp.actions)
                for ob in observers:
                    ob.on_edge(graph, cid, dst, exp.actions)
                if fresh:
                    for ob in observers:
                        ob.on_config(graph, dst, succ, True, None)
            if graph.num_configs > opts.max_configs:
                stats.truncated = True
                stack.clear()
                pending.clear()
                break
            child_sleep = frozenset(
                z for z in (set(sleep) | set(done)) if independent(z, exp)
            )
            pending.append((dst, child_sleep))
            done.append(entry_of(exp))
        # push in reverse so the first sibling is explored first (its
        # sleep set is the smallest)
        stack.extend(reversed(pending))
        if stats.truncated:
            break

    return _finalize(
        program, graph, stats, opts, access, selector, observers, metrics, t0
    )


def _expand(
    program: Program,
    config: Config,
    access: AccessAnalysis,
    opts: ExploreOptions,
    metrics=None,
) -> list[Expansion]:
    """Per-process expansions at *config* (coarsened or single-step)."""
    infos = next_infos(program, config, opts.step)
    out: list[Expansion] = []
    for ni in infos:
        if not ni.enabled:
            out.append(
                Expansion(
                    proc=ni.proc,
                    enabled=False,
                    nes=ni.nes,
                    blocked_children=ni.blocked_children,
                )
            )
            continue
        if opts.coarsen:
            block = build_block(
                program,
                config,
                ni.proc.pid,
                access,
                opts.step,
                max_len=opts.max_block_len,
                metrics=metrics,
            )
            out.append(
                Expansion(
                    proc=ni.proc,
                    enabled=True,
                    succ=block.succ,
                    actions=block.actions,
                    reads=block.reads,
                    writes=block.writes,
                )
            )
        else:
            assert ni.action is not None
            out.append(
                Expansion(
                    proc=ni.proc,
                    enabled=True,
                    succ=ni.succ,
                    actions=(ni.action,),
                    reads=ni.action.reads,
                    writes=ni.action.writes,
                )
            )
    return out
