"""The per-process expansion record shared by the exploration policies."""

from __future__ import annotations

from dataclasses import dataclass

from repro.semantics.config import Config, Loc, Pid, Process
from repro.semantics.step import ActionInfo


@dataclass(frozen=True)
class Expansion:
    """What one process would do next at a configuration.

    For an enabled process: the successor configuration and the executed
    action block (a single atomic action, or a coarsened run of them)
    with its combined dynamic read/write sets.

    For a disabled process: the necessary enabling set (``nes``) — the
    locations another process must write first — and, for a blocked
    join, the children that must terminate.
    """

    proc: Process
    enabled: bool
    succ: Config | None = None
    actions: tuple[ActionInfo, ...] = ()
    reads: tuple[Loc, ...] = ()
    writes: tuple[Loc, ...] = ()
    nes: tuple[Loc, ...] = ()
    blocked_children: tuple[Pid, ...] = ()

    @property
    def pid(self) -> Pid:
        return self.proc.pid
