"""State-space exploration: full interleaving, stubborn sets, coarsening.

Two backends share one result contract: the serial BFS/DFS drivers in
:mod:`repro.explore.explorer` and the multiprocessing frontier-sharding
driver in :mod:`repro.explore.parallel`
(``ExploreOptions(backend="parallel", jobs=N)``).

Resilient entry points (degradation ladder, checkpoint/resume, fault
isolation) live in :mod:`repro.resilience`."""

from repro.explore.coarsen import Block, action_is_critical, build_block
from repro.explore.expansion import Expansion
from repro.explore.explorer import (
    ExploreOptions,
    ExploreResult,
    ExploreStats,
    explore,
)
from repro.explore.memo import ExpandCache, expand_memoized
from repro.explore.parallel import explore_parallel
from repro.explore.graph import DEADLOCK, FAULT, TERMINATED, ConfigGraph, Edge
from repro.explore.observers import (
    Observer,
    TraceObserver,
    TransitionLogObserver,
)
from repro.explore.stubborn import StubbornSelector, StubbornStats

__all__ = [
    "Block",
    "ConfigGraph",
    "DEADLOCK",
    "Edge",
    "ExpandCache",
    "Expansion",
    "ExploreOptions",
    "ExploreResult",
    "ExploreStats",
    "FAULT",
    "Observer",
    "StubbornSelector",
    "StubbornStats",
    "TERMINATED",
    "TraceObserver",
    "TransitionLogObserver",
    "action_is_critical",
    "build_block",
    "expand_memoized",
    "explore",
    "explore_parallel",
]
