"""Algorithm 1 — transition-granularity stubborn sets (§2.3).

This is the paper's "improved version of Overman's algorithm": stubborn
sets computed over *individual instructions* (the static transitions of
each live process), in the style of Valmari's stubborn set theory
[Val88, Val89, Val90].

Elements are ``(pid, func, pc)`` triples ranging over each process's
*instruction universe* — everything statically reachable from its
current frames through the CFG, calls, and cobegin branches.  The
closure rules:

D2 (dependents of enabled transitions)
    For a process's *current, enabled* instruction, with its **dynamic**
    read/write sets: every instruction of every other live process whose
    **static** access sets may conflict joins the set.  (Same-process
    instructions never need to: control order already serializes them.)

D1 (necessary enabling sets of disabled elements)
    * current but guard-disabled (``assume``/``acquire``): the
      instructions (of other processes) that may write the guard's
      locations; for a blocked join, the thread-end instructions of the
      children that have not terminated;
    * a *future* element: its control predecessors within the process's
      universe — CFG predecessors, call sites for a function entry, and,
      for the continuation of an *active* frame, the return instructions
      of the function running above it.

A set closed under D1/D2 containing an enabled current instruction is
stubborn; only the enabled current instructions inside it are expanded.
The distinction between D2 (expensive, data conflicts) and D1 (cheap,
control chains) is what lets the reduction stay *local*: pulling a far
future instruction of another process costs only its control chain back
to that process's current point — this is how the dining-philosophers
space drops from exponential to polynomial (the paper's §2.2 claim,
benchmark E3).

Following the paper, we compute one closure per enabled seed and keep
the one with the fewest enabled transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyses.accesses import AccessAnalysis, matches
from repro.explore.expansion import Expansion
from repro.explore.stubborn import StubbornStats
from repro.lang.instructions import IThreadEnd
from repro.lang.program import Program
from repro.semantics.config import JOINING, Pid, Process

Element = tuple  # (pid, func, pc)


@dataclass
class AlgorithmOneSelector:
    """Element-granularity stubborn-set selection (the default policy)."""

    program: Program
    access: AccessAnalysis
    stats: StubbornStats = field(default_factory=StubbornStats)
    #: optional :class:`repro.metrics.MetricsRegistry` (set by the
    #: exploration driver when telemetry is attached)
    metrics: object | None = field(default=None, repr=False, compare=False)

    def _record(self, enabled: int, chosen: int) -> None:
        self.stats.record(enabled, chosen)
        m = self.metrics
        if m is not None:
            m.observe("stubborn.enabled", enabled)
            m.observe("stubborn.chosen", chosen)
            if chosen == 1:
                m.inc("stubborn.singleton_steps")

    def select(self, expansions: list[Expansion]) -> list[Expansion]:
        by_pid: dict[Pid, Expansion] = {e.pid: e for e in expansions}
        enabled = [e for e in expansions if e.enabled]
        if len(enabled) <= 1:
            self._record(len(enabled), len(enabled))
            return enabled

        universes: dict[Pid, frozenset] = {
            e.pid: self._universe(e.proc) for e in expansions
        }
        cur: dict[Pid, tuple[str, int]] = {
            e.pid: (e.proc.top.func, e.proc.top.pc) for e in expansions
        }

        best: list[Expansion] | None = None
        best_key: tuple | None = None
        for seed in enabled:
            chosen, size = self._closure(seed, by_pid, universes, cur)
            key = (len(chosen), size, seed.pid)
            if best_key is None or key < best_key:
                best, best_key = chosen, key
            if len(chosen) == 1:
                break
        assert best is not None
        self._record(len(enabled), len(best))
        return best

    # ------------------------------------------------------------------

    def _universe(self, proc: Process) -> frozenset:
        out: set = set()
        for fr in proc.frames[:-1]:
            out |= self.access.reachable_from(fr.func, fr.pc)
        top = proc.frames[-1]
        if proc.status == JOINING:
            # the parent never executes the branch bodies — its children
            # carry them as their own elements; counting them here would
            # fabricate control chains through the parent's join
            from repro.lang.instructions import ICobegin
            from repro.semantics.step import resolve_pc

            instr = self.program.funcs[top.func].instrs[top.pc]
            assert isinstance(instr, ICobegin)
            join_pc = resolve_pc(self.program, top.func, instr.join_target)
            out |= self.access.reachable_from(top.func, join_pc)
        else:
            out |= self.access.reachable_from(top.func, top.pc)
        return frozenset(out)

    def _closure(
        self,
        seed: Expansion,
        by_pid: dict[Pid, Expansion],
        universes: dict[Pid, frozenset],
        cur: dict[Pid, tuple[str, int]],
    ) -> tuple[list[Expansion], int]:
        access = self.access
        S: set[Element] = set()
        work: list[Element] = []

        def add(el: Element) -> None:
            if el not in S:
                S.add(el)
                work.append(el)

        spid = seed.pid
        add((spid, *cur[spid]))

        iterations = 0
        while work:
            iterations += 1
            pid, f, pc = work.pop()
            exp = by_pid[pid]
            is_cur = (f, pc) == cur[pid]
            if is_cur and exp.enabled:
                self._add_dependents(exp, by_pid, universes, add)
            elif is_cur:
                self._add_guard_enablers(exp, by_pid, universes, add)
            else:
                self._add_control_enablers(pid, f, pc, by_pid, universes, add)

        chosen = [
            by_pid[p]
            for p in sorted(by_pid)
            if by_pid[p].enabled and (p, *cur[p]) in S
        ]
        if self.metrics is not None:
            self.metrics.observe("stubborn.closure_iterations", iterations)
        return chosen, len(S)

    # -- D2 ------------------------------------------------------------

    def _add_dependents(self, exp, by_pid, universes, add) -> None:
        access = self.access
        writes = exp.writes
        reads = exp.reads
        for other, uni in universes.items():
            if other == exp.pid:
                continue
            for f2, pc2 in uni:
                g = access.gen_at(f2, pc2)
                hit = False
                for w in writes:
                    if matches(g.reads, w) or matches(g.writes, w):
                        hit = True
                        break
                if not hit:
                    for r in reads:
                        if matches(g.writes, r):
                            hit = True
                            break
                if hit:
                    add((other, f2, pc2))

    # -- D1: guard-disabled current ------------------------------------

    def _add_guard_enablers(self, exp, by_pid, universes, add) -> None:
        access = self.access
        if exp.proc.status == JOINING or exp.blocked_children:
            for child in exp.blocked_children:
                uni = universes.get(child, frozenset())
                for f2, pc2 in uni:
                    ins = self.program.funcs[f2].instrs[pc2]
                    if isinstance(ins, IThreadEnd):
                        add((child, f2, pc2))
            return
        locs = exp.nes
        for other, uni in universes.items():
            if other == exp.pid:
                continue
            for f2, pc2 in uni:
                g = access.gen_at(f2, pc2)
                if any(matches(g.writes, loc) for loc in locs):
                    add((other, f2, pc2))

    # -- D1: future elements (control chain) ----------------------------

    def _add_control_enablers(self, pid, f, pc, by_pid, universes, add) -> None:
        access = self.access
        uni = universes[pid]
        frames = by_pid[pid].proc.frames
        # continuation of an active frame: enabled by the frame above
        # returning
        for k in range(len(frames) - 1):
            if (frames[k].func, frames[k].pc) == (f, pc):
                above = frames[k + 1].func
                for rpc in access.returns_of(above):
                    add((pid, above, rpc))
        for pf, ppc in access.preds(f, pc):
            if (pf, ppc) in uni:
                add((pid, pf, ppc))
        if pc == 0:
            for cf, cpc in access.entry_callers(f):
                if (cf, cpc) in uni:
                    add((pid, cf, cpc))
