"""Footprint-memoized expansion: the incremental engine's hot-path cache.

Every expansion of a configuration pays ``enabledness`` + ``execute``
(or a whole coarsened block) for *every* live process, even though the
semantics is deterministic per process: what a process does next is a
function of **its own state** plus **the values of the shared locations
it consults**.  The :class:`ExpandCache` exploits exactly that — it
memoizes per-process expansion outcomes keyed on the (interned)
:class:`~repro.semantics.config.Process` plus the ordered *footprint*
``((loc, value), ...)`` of shared reads the outcome depended on:

- a **probe** at a new configuration compares the cached footprint
  values against the current state (O(footprint) dictionary lookups);
  every value equal ⇒ the deterministic interpreter would take the
  identical steps, so the cached outcome is valid;
- a **hit** *replays* the cached delta — replace the acting process,
  apply the recorded shared writes, add/remove spawned/joined
  processes, then one final garbage collection — instead of
  re-interpreting the block;
- a **miss** computes the expansion the ordinary way while recording
  its footprint, then fills the cache.

Soundness notes (why delta replay is exact):

- *Footprint completeness*: enabledness records every location it
  consults (``enabledness(..., footprint=)``), single steps record
  ``action.reads`` (evaluation reads every shared input it branches
  on), coarsened blocks record first-touch reads **and write
  pre-values** of every action including the discarded stop candidate
  (:func:`~repro.explore.coarsen.build_block`), so block shape — the
  ≤1-critical-ref budget, disabled-next stop, and the thread-local
  cycle check — is footprint-determined.
- *Write existence*: heap write destinations are bounds-checked at
  address resolution, so a hit additionally requires every cached heap
  write target to exist (``write_checks``); a mismatch means the real
  execution would fault differently — recompute.
- *Garbage collection*: reachability loss is permanent (values only
  flow between rooted locations), so per-step GC composed over a block
  equals one final GC of the replayed state — replay does the latter.
- *Not cached*: faulting outcomes (their messages can depend on
  heap-shape beyond the read footprint) and actions that allocate
  (``fresh_oid`` depends on the entire heap), plus blocks whose written
  objects were garbage-collected before the block ended (the written
  values are unrecoverable from the successor).  These recompute every
  time and count as ``uncacheable``.

The cache is bounded (LRU over process keys, capped entries per key)
with eviction counters; serial drivers share one instance per run, the
parallel backend creates one per shard worker.

Persistence
-----------
:meth:`ExpandCache.export_state` / :meth:`ExpandCache.load_state` turn
the memo table into a plain picklable structure and back — the hook the
analysis service (:mod:`repro.serve`) uses to persist warm caches
across runs.  The exported form is schema-versioned; loading a
mismatched schema is a no-op (the cache simply starts cold).  Loading
re-interns every process key, so a state exported by one OS process is
valid in another.  *Which* entries are safe to import for a possibly
edited program is the caller's problem — see
:mod:`repro.serve.keys` for the function-digest gating the service
applies.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.explore.coarsen import build_block
from repro.explore.expansion import Expansion
from repro.semantics.config import (
    Config,
    HeapObj,
    Process,
    collect_garbage,
    intern_process,
    loc_value,
    MISSING,
)
from repro.semantics.step import enabledness, execute

#: LRU bound on distinct process keys (each key holds a short entry
#: list); ~hundreds of bytes per entry, so the default caps the cache at
#: tens of MB even for adversarial state spaces.
DEFAULT_MAX_PROCS = 65_536

#: Entries kept per process key (distinct footprint valuations); beyond
#: this the oldest valuation for that process is dropped.
DEFAULT_MAX_ENTRIES_PER_PROC = 64


class _Entry:
    """One memoized per-process expansion outcome."""

    __slots__ = (
        "footprint", "enabled", "nes", "blocked_children",
        "actions", "reads", "writes",
        "new_proc", "added_procs", "removed_pids",
        "global_writes", "heap_writes", "write_checks",
        "gc", "block_len", "block_crit",
    )

    def __init__(self, footprint, enabled):
        self.footprint = footprint
        self.enabled = enabled
        self.nes = ()
        self.blocked_children = ()
        self.actions = ()
        self.reads = ()
        self.writes = ()
        self.new_proc = None
        self.added_procs = ()
        self.removed_pids = ()
        self.global_writes = ()
        self.heap_writes = ()
        self.write_checks = ()
        self.gc = False
        self.block_len = 0
        self.block_crit = 0


class ExpandCache:
    """Bounded per-run memo of per-process expansion outcomes."""

    __slots__ = (
        "max_procs", "max_entries_per_proc", "_entries",
        "hits", "misses", "invalidations", "evictions", "uncacheable",
        "size",
    )

    def __init__(
        self,
        max_procs: int = DEFAULT_MAX_PROCS,
        max_entries_per_proc: int = DEFAULT_MAX_ENTRIES_PER_PROC,
    ) -> None:
        self.max_procs = max_procs
        self.max_entries_per_proc = max_entries_per_proc
        self._entries: OrderedDict[Process, list[_Entry]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: probes that found entries for the process but every cached
        #: footprint mismatched the current shared values — a write
        #: landed in the footprint, the outcome must be recomputed
        self.invalidations = 0
        self.evictions = 0
        self.uncacheable = 0
        self.size = 0

    # ------------------------------------------------------------------
    # probe / replay
    # ------------------------------------------------------------------

    def probe(self, config: Config, proc: Process) -> _Entry | None:
        """The cached outcome valid for *proc* at *config*, or None."""
        entries = self._entries.get(proc)
        if entries is None:
            self.misses += 1
            return None
        for entry in entries:
            for loc, value in entry.footprint:
                if loc_value(config, loc) != value:
                    break
            else:
                for loc in entry.write_checks:
                    if loc_value(config, loc) is MISSING:
                        break
                else:
                    self.hits += 1
                    self._entries.move_to_end(proc)
                    return entry
        self.misses += 1
        self.invalidations += 1
        return None

    def replay(self, entry: _Entry, proc: Process, config: Config) -> Expansion:
        """Materialize the cached outcome at *config* (a footprint
        match): swap the acting process, apply the recorded deltas, then
        collect garbage exactly when the interpreter would have."""
        if not entry.enabled:
            return Expansion(
                proc=proc,
                enabled=False,
                nes=entry.nes,
                blocked_children=entry.blocked_children,
            )
        pid = proc.pid
        removed = entry.removed_pids
        procs = []
        for p in config.procs:
            if p.pid == pid:
                procs.append(entry.new_proc)
            elif p.pid in removed:
                continue
            else:
                procs.append(p)
        if entry.added_procs:
            procs.extend(entry.added_procs)
            procs.sort(key=lambda p: p.pid)
        globals_ = config.globals
        if entry.global_writes:
            cells = list(globals_)
            for index, value in entry.global_writes:
                cells[index] = value
            globals_ = tuple(cells)
        heap = config.heap
        if entry.heap_writes:
            writes_by_oid = dict(entry.heap_writes)
            new_heap = []
            for obj in heap:
                cell_writes = writes_by_oid.get(obj.oid)
                if cell_writes is None:
                    new_heap.append(obj)
                    continue
                cells = list(obj.cells)
                for off, value in cell_writes:
                    cells[off] = value
                new_heap.append(
                    HeapObj(
                        oid=obj.oid,
                        cells=tuple(cells),
                        birth_pid=obj.birth_pid,
                        birth_ps=obj.birth_ps,
                    )
                )
            heap = tuple(new_heap)
        succ = Config(procs=tuple(procs), globals=globals_, heap=heap)
        if entry.gc:
            succ = collect_garbage(succ)
        return Expansion(
            proc=proc,
            enabled=True,
            succ=succ,
            actions=entry.actions,
            reads=entry.reads,
            writes=entry.writes,
        )

    # ------------------------------------------------------------------
    # fill
    # ------------------------------------------------------------------

    def fill_disabled(self, proc: Process, footprint: list, exp: Expansion) -> None:
        entry = _Entry(tuple(footprint), enabled=False)
        entry.nes = exp.nes
        entry.blocked_children = exp.blocked_children
        self._insert(proc, entry)

    def fill(
        self,
        config: Config,
        proc: Process,
        footprint: list,
        exp: Expansion,
        gc: bool,
        block_len: int = 0,
        block_crit: int = 0,
    ) -> None:
        """Memoize an enabled expansion by diffing parent vs successor.
        Skips (and counts) the uncacheable shapes — see module doc."""
        succ = exp.succ
        if succ.fault is not None:
            self.uncacheable += 1
            return
        for action in exp.actions:
            if action.allocs:
                self.uncacheable += 1
                return
        entry = _Entry(tuple(footprint), enabled=True)
        entry.actions = exp.actions
        entry.reads = exp.reads
        entry.writes = exp.writes
        entry.gc = gc
        entry.block_len = block_len
        entry.block_crit = block_crit

        parent_pids = {p.pid for p in config.procs}
        succ_index = {p.pid: p for p in succ.procs}
        entry.new_proc = succ_index[proc.pid]
        removed = frozenset(parent_pids - succ_index.keys())
        entry.removed_pids = removed
        entry.added_procs = tuple(
            p for p in succ.procs if p.pid not in parent_pids
        )

        global_writes = {}
        heap_writes: dict = {}
        checks = []
        for action in exp.actions:
            for loc in action.writes:
                tag = loc[0]
                if tag == "g":
                    global_writes[loc[1]] = None
                elif tag == "h":
                    heap_writes.setdefault(loc[1], {})[loc[2]] = None
                    checks.append(loc)
                # "p" writes are carried by the proc replacement/add/remove
        for index in global_writes:
            global_writes[index] = succ.globals[index]
        resolved = []
        for oid, cell_writes in heap_writes.items():
            obj = succ.heap_obj(oid)
            if obj is None:
                # written object collected before the block ended: the
                # final values are unrecoverable — don't cache
                self.uncacheable += 1
                return
            resolved.append(
                (oid, tuple((off, obj.cells[off]) for off in cell_writes))
            )
        entry.global_writes = tuple(global_writes.items())
        entry.heap_writes = tuple(resolved)
        entry.write_checks = tuple(dict.fromkeys(checks))
        self._insert(proc, entry)

    def _insert(self, proc: Process, entry: _Entry) -> None:
        entries = self._entries.get(proc)
        if entries is None:
            if len(self._entries) >= self.max_procs:
                _, dropped = self._entries.popitem(last=False)
                self.evictions += len(dropped)
                self.size -= len(dropped)
            entries = self._entries[proc] = []
        else:
            self._entries.move_to_end(proc)
        if len(entries) >= self.max_entries_per_proc:
            entries.pop(0)
            self.evictions += 1
            self.size -= 1
        entries.append(entry)
        self.size += 1

    # ------------------------------------------------------------------
    # persistence (export/import for the analysis service's warm store)
    # ------------------------------------------------------------------

    #: Version of the exported-state layout; bump on any change to the
    #: per-entry tuple below.
    EXPORT_SCHEMA = "repro.expandcache/1"

    #: _Entry slots carried by the export, in tuple order.
    _EXPORT_FIELDS = (
        "footprint", "enabled", "nes", "blocked_children",
        "actions", "reads", "writes",
        "new_proc", "added_procs", "removed_pids",
        "global_writes", "heap_writes", "write_checks",
        "gc", "block_len", "block_crit",
    )

    def export_state(self) -> dict:
        """The memo table as a plain picklable document.

        Counters are *not* exported — they describe one run, not the
        table.  Insertion (LRU) order is preserved.
        """
        return {
            "schema": self.EXPORT_SCHEMA,
            "entries": [
                (
                    proc,
                    [
                        tuple(getattr(e, f) for f in self._EXPORT_FIELDS)
                        for e in entries
                    ],
                )
                for proc, entries in self._entries.items()
            ],
        }

    def load_state(
        self, state: dict, *, keep: "callable | None" = None
    ) -> int:
        """Refill the table from :meth:`export_state` output; returns
        the number of entries imported.

        *keep* optionally filters per process key: ``keep(proc)`` False
        skips that process's entries (the service's function-digest
        gate).  A state with an unknown schema imports nothing — a cold
        start, never an error.  Imported entries respect the cache's
        bounds (oldest keys evicted as usual).
        """
        if not isinstance(state, dict) or state.get("schema") != self.EXPORT_SCHEMA:
            return 0
        imported = 0
        for proc, rows in state.get("entries", ()):
            proc = intern_process(proc)
            if keep is not None and not keep(proc):
                continue
            for row in rows:
                if len(row) != len(self._EXPORT_FIELDS):
                    continue  # damaged row: skip, never raise
                entry = _Entry(row[0], row[1])
                for name, value in zip(self._EXPORT_FIELDS[2:], row[2:]):
                    setattr(entry, name, value)
                self._insert(proc, entry)
                imported += 1
        return imported

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """The metric series this cache contributes, by final name."""
        return {
            "expand.cache_hits": self.hits,
            "expand.cache_misses": self.misses,
            "expand.invalidations": self.invalidations,
            "expand.cache_evictions": self.evictions,
            "expand.cache_uncacheable": self.uncacheable,
        }


def expand_memoized(
    program,
    config: Config,
    access,
    opts,
    cache: ExpandCache,
    metrics=None,
    tracer=None,
) -> list[Expansion]:
    """Per-process expansions at *config* through *cache* — the memoized
    twin of :func:`repro.explore.explorer._expand`, producing identical
    :class:`Expansion` lists (the cache-on/off differential suite's
    contract).

    Telemetry stays *logical*: a coarsened cache hit re-emits the
    ``coarsen.block_len`` observation and the ``coarsen.fuse`` span its
    block would have produced, so metrics and traces count fused blocks
    per expansion, identically across cache states and backends.
    """
    if config.fault is not None:
        return []
    step_opts = opts.step
    coarsen = opts.coarsen
    out: list[Expansion] = []
    for proc in config.live_procs():
        entry = cache.probe(config, proc)
        if entry is not None:
            if entry.enabled and coarsen:
                if metrics is not None:
                    metrics.observe("coarsen.block_len", entry.block_len)
                if tracer is not None:
                    span = tracer.begin_span("coarsen.fuse", pid=proc.pid)
                    tracer.end_span(
                        span, len=entry.block_len, critical=entry.block_crit
                    )
            out.append(cache.replay(entry, proc, config))
            continue
        footprint: list = []
        enabled, nes, blocked = enabledness(
            program, config, proc, footprint=footprint
        )
        if not enabled:
            exp = Expansion(
                proc=proc, enabled=False, nes=nes, blocked_children=blocked
            )
            cache.fill_disabled(proc, footprint, exp)
            out.append(exp)
            continue
        if coarsen:
            block = build_block(
                program,
                config,
                proc.pid,
                access,
                step_opts,
                max_len=opts.max_block_len,
                metrics=metrics,
                tracer=tracer,
                footprint=footprint,
            )
            exp = Expansion(
                proc=proc,
                enabled=True,
                succ=block.succ,
                actions=block.actions,
                reads=block.reads,
                writes=block.writes,
            )
            cache.fill(
                config, proc, footprint, exp, step_opts.gc,
                block_len=len(block.actions), block_crit=block.crit,
            )
        else:
            succ, action = execute(program, config, proc, step_opts)
            touched = {loc for loc, _ in footprint}
            for loc in action.reads:
                if loc not in touched:
                    touched.add(loc)
                    footprint.append((loc, loc_value(config, loc)))
            exp = Expansion(
                proc=proc,
                enabled=True,
                succ=succ,
                actions=(action,),
                reads=action.reads,
                writes=action.writes,
            )
            cache.fill(config, proc, footprint, exp, step_opts.gc)
        out.append(exp)
    return out
