"""The asyncio job server: ``repro serve`` / ``repro submit``.

Protocol — newline-delimited JSON over a unix or TCP socket.  One
request object per line, one response object per line::

    {"op": "submit", "program": {"kind": "corpus", "name": "peterson"},
     "options": {"policy": "stubborn", "coarsen": true},
     "deadline_s": 30}
    {"op": "schedules", "program": {...}, "options": {...},
     "schedules": {"sample": 32, "seed": 7}}
    {"op": "ping"}        {"op": "stats"}        {"op": "shutdown"}

A ``schedules`` request runs the same checkpointed exploration job and
then derives the canonical, replay-verified schedule set
(:mod:`repro.schedules`); the response (and the durable store entry,
keyed by exploration identity × generation options) carries the
scheduler-script document in ``schedules``.

Every submit response carries ``ok``; successful ones add ``key``,
``result_digest``, ``summary``, ``outcomes``, and ``cached`` (True when
the durable store replayed a finished result without running anything).
Failures carry a typed ``error`` object; overload is the dedicated
shape ``{"ok": false, "overloaded": true, ...}`` so clients can back
off and retry.

Crash-safety story (the tentpole):

- identical in-flight submissions **coalesce** onto one job keyed by
  :func:`repro.serve.keys.store_key`;
- admission is **bounded**: past ``max_pending`` distinct in-flight
  jobs the server sheds load with ``overloaded`` instead of queueing
  unboundedly;
- each job runs in a forked worker process that checkpoints
  periodically; a **crashed worker** (``serve-worker-kill``, a real
  OOM) is restarted with ``resume=True`` up to ``max_restarts`` times,
  continuing from the last quiescent snapshot;
- each job is recorded durably *before* it starts, so a **killed
  server** finds it again: ``recover()`` on startup re-runs every
  pending job from its checkpoint and publishes the result to the
  store — a re-submitted request then replays it as a store hit;
- **deadlines** ride the engine's own wall-clock budget
  (``time_limit_s``), so an expired job truncates gracefully and the
  client always gets a response — never a hang.

Live telemetry (``repro.serve/2``):

- every worker runs with a **progress pipe** back to the server; the
  in-run :class:`~repro.progress.ProgressEmitter` frames it ships
  become each job's live state (the ``stats`` op's ``jobs`` section);
- a submit/schedules request carrying ``"follow": true`` receives the
  frames **interleaved** before the final response, one
  ``{"progress": true, "key": ..., "frame": {...}}`` line each — the
  final response is the only line without ``"progress"`` (and is
  byte-identical to the non-streaming response for the same job);
- per-job **heartbeats**: a worker silent longer than ``heartbeat_s``
  (hung) or whose pipe hits EOF without an outcome (SIGKILLed) surfaces
  to followers as a typed ``progress.stalled`` frame within one
  heartbeat interval — not only at watchdog expiry — followed by a
  ``progress.resumed`` frame when the job restarts from checkpoint.

``/1`` clients are unaffected: requests without ``follow`` behave
exactly as before.
"""

from __future__ import annotations

import asyncio
import json
import logging
import multiprocessing
import os
import socket
import time
from dataclasses import dataclass, field

from repro.progress import SCHEMA_VERSION as PROGRESS_SCHEMA
from repro.serve import keys
from repro.serve.store import ResultStore
from repro.serve.worker import JobSpec, run_job
from repro.util.errors import ReproError, ServeError

LOG = logging.getLogger("repro.serve")

#: Protocol version, echoed by ``ping``.
PROTOCOL = "repro.serve/2"

#: Max request/response line length (a program source ships inline).
_LINE_LIMIT = 2**22


@dataclass
class ServeOptions:
    """Server tuning knobs (all operational — none affect results)."""

    #: distinct in-flight jobs beyond which submits are shed
    max_pending: int = 16
    #: jobs exploring concurrently (each is one worker process)
    max_active: int = 2
    #: worker relaunches per job after a crash (resume from checkpoint)
    max_restarts: int = 2
    #: expansions between a job's snapshots
    checkpoint_every: int = 200
    #: seconds a worker may run without finishing before it is killed
    #: (and treated as crashed); None disables the watchdog
    worker_watchdog_s: float | None = 300.0
    #: seconds of progress-pipe silence before a live worker is surfaced
    #: to followers as ``progress.stalled`` (None disables heartbeats)
    heartbeat_s: float | None = 2.0
    #: seconds between the frames a worker ships (operational only)
    progress_interval_s: float = 0.5


@dataclass
class _Job:
    key: str
    spec: JobSpec
    future: asyncio.Future
    waiters: int = 1
    task: asyncio.Task | None = None
    #: follower fan-out queues (one per ``--follow`` client)
    queues: list = field(default_factory=list)
    #: the job's most recent progress frame (the ``stats`` live state)
    live: dict | None = None


def _progress_frame(kind: str, phase: str, key: str, **fields) -> dict:
    frame = {
        "schema": PROGRESS_SCHEMA, "kind": kind, "phase": phase, "key": key,
    }
    frame.update(fields)
    return frame


def _error(kind: str, message: str, **extra) -> dict:
    out = {"ok": False, "error": {"type": kind, "message": message}}
    out.update(extra)
    return out


class ReproServer:
    """The job server.  One instance per store directory."""

    def __init__(
        self,
        store: ResultStore,
        options: ServeOptions | None = None,
        *,
        metrics=None,
        tracer=None,
    ) -> None:
        self.store = store
        self.options = options or ServeOptions()
        self.metrics = metrics
        self.tracer = tracer
        if store.metrics is None:
            store.metrics = metrics
        self._jobs: dict[str, _Job] = {}
        self._sem = asyncio.Semaphore(self.options.max_active)
        self._shutdown = asyncio.Event()
        self._server: asyncio.AbstractServer | None = None
        self.counters = {
            "serve.requests": 0,
            "serve.submits": 0,
            "serve.schedules": 0,
            "serve.coalesced": 0,
            "serve.shed": 0,
            "serve.worker_restarts": 0,
            "serve.recovered": 0,
            "serve.jobs_completed": 0,
            "serve.jobs_failed": 0,
        }

    def _inc(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        if self.metrics is not None:
            self.metrics.inc(name, n)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    async def handle_request(self, req: dict) -> dict:
        self._inc("serve.requests")
        if not isinstance(req, dict):
            return _error("bad-request", "request must be a JSON object")
        op = req.get("op")
        if op == "ping":
            return {"ok": True, "protocol": PROTOCOL}
        if op == "stats":
            return {
                "ok": True,
                "protocol": PROTOCOL,
                "counters": dict(self.counters),
                "store": self.store.counters(),
                "in_flight": len(self._jobs),
                # per-job live state: each in-flight job's most recent
                # progress frame (what ``repro watch <server>`` renders)
                "jobs": {
                    key: {
                        "waiters": job.waiters,
                        "followers": len(job.queues),
                        "last": job.live,
                    }
                    for key, job in self._jobs.items()
                },
            }
        if op == "shutdown":
            self._shutdown.set()
            return {"ok": True, "stopping": True}
        if op == "submit":
            return await self._submit(req)
        if op == "schedules":
            # same job machinery as submit, but the result is a
            # replay-verified canonical schedule set, cached under the
            # exploration identity × the generation options
            return await self._submit(req, schedules_op=True)
        return _error("bad-request", f"unknown op {op!r}")

    async def _submit(self, req: dict, *, schedules_op: bool = False) -> dict:
        self._inc("serve.submits")
        try:
            program = _load_program_checked(req.get("program"))
            options = keys.options_from_request(req.get("options"))
            options = _apply_deadline(options, req.get("deadline_s"))
            schedules = (
                keys.schedule_options_from_request(req.get("schedules"))
                if schedules_op
                else None
            )
        except ReproError as exc:
            return _error(type(exc).__name__, str(exc))

        if schedules_op:
            self._inc("serve.schedules")
            key = keys.schedules_key(program, options, schedules)
        else:
            key = keys.store_key(program, options)
        span = (
            self.tracer.begin_span("serve.job", key=key)
            if self.tracer is not None
            else None
        )
        try:
            response = await self._submit_keyed(
                key, program, options, req, schedules
            )
        finally:
            if span is not None:
                self.tracer.end_span(span, ok=bool(response.get("ok")))
        return response

    async def _submit_keyed(
        self, key, program, options, req, schedules=None
    ) -> dict:
        response, job = self._admit_keyed(key, program, options, req, schedules)
        if job is not None:
            return await asyncio.shield(job.future)
        return response

    def _admit_keyed(
        self, key, program, options, req, schedules=None
    ) -> tuple[dict | None, "_Job | None"]:
        """Admission control: exactly one of (ready response, live job).

        Shared by the one-shot and the follow paths — a follower of a
        coalesced job subscribes to the same frame fan-out as the
        admitting client's."""
        # 1. durable store: a finished result replays without running
        payload = self.store.get_result(key)
        if payload is not None:
            response = dict(payload)
            response.update({"ok": True, "key": key, "cached": True})
            response.pop("schema", None)
            return response, None

        # 2. coalesce with an identical in-flight job
        job = self._jobs.get(key)
        if job is not None:
            self._inc("serve.coalesced")
            job.waiters += 1
            return None, job

        # 3. bounded admission: shed rather than queue unboundedly
        if len(self._jobs) >= self.options.max_pending:
            self._inc("serve.shed")
            return _error(
                "overloaded",
                f"{len(self._jobs)} jobs in flight (max_pending="
                f"{self.options.max_pending}); retry later",
                overloaded=True,
            ), None

        # 4. durably record, then run
        spec = self._make_spec(
            key, program, req.get("program"), req.get("options"), options,
            schedules,
        )
        record = {
            "schema": "repro.serve.job/1",
            "key": key,
            "program": req.get("program"),
            "options": spec.options,
        }
        if schedules is not None:
            record["schedules"] = schedules
        self.store.record_pending(key, record)
        job = _Job(key=key, spec=spec,
                   future=asyncio.get_running_loop().create_future())
        self._jobs[key] = job
        job.task = asyncio.ensure_future(self._run_job(job))
        return None, job

    async def _submit_followed(self, req: dict, writer) -> None:
        """A ``"follow": true`` submit/schedules request: stream each
        live progress frame as its own NDJSON line, then the final
        response — the only line without ``"progress"``.  The final
        payload is built by the same :meth:`_publish`/store path as a
        one-shot submit, so it is byte-identical to the non-streaming
        response for the same job."""
        self._inc("serve.requests")
        self._inc("serve.submits")
        schedules_op = req.get("op") == "schedules"
        try:
            program = _load_program_checked(req.get("program"))
            options = keys.options_from_request(req.get("options"))
            options = _apply_deadline(options, req.get("deadline_s"))
            schedules = (
                keys.schedule_options_from_request(req.get("schedules"))
                if schedules_op
                else None
            )
        except ReproError as exc:
            writer.write(_encode(_error(type(exc).__name__, str(exc))))
            await writer.drain()
            return
        if schedules_op:
            self._inc("serve.schedules")
            key = keys.schedules_key(program, options, schedules)
        else:
            key = keys.store_key(program, options)
        span = (
            self.tracer.begin_span("serve.job", key=key, follow=True)
            if self.tracer is not None
            else None
        )
        response = None
        try:
            response, job = self._admit_keyed(
                key, program, options, req, schedules
            )
            if job is not None:
                response = await self._follow_job(job, writer)
        finally:
            if span is not None:
                self.tracer.end_span(
                    span, ok=bool(response and response.get("ok"))
                )
        writer.write(_encode(response))
        await writer.drain()

    async def _follow_job(self, job: _Job, writer) -> dict:
        """Relay *job*'s frames to one client until its future resolves
        (queued frames drain before the final response is returned)."""
        queue: asyncio.Queue = asyncio.Queue()
        job.queues.append(queue)
        fut = asyncio.shield(job.future)
        try:
            while not (fut.done() and queue.empty()):
                if fut.done():
                    frame = queue.get_nowait()
                else:
                    getter = asyncio.ensure_future(queue.get())
                    await asyncio.wait(
                        {getter, fut}, return_when=asyncio.FIRST_COMPLETED
                    )
                    if getter.done():
                        frame = getter.result()
                    else:
                        getter.cancel()
                        try:
                            # the get may have raced its cancellation and
                            # still hold a frame — losing it would skip one
                            frame = await getter
                        except asyncio.CancelledError:
                            continue
                writer.write(_encode(
                    {"progress": True, "key": job.key, "frame": frame}
                ))
                await writer.drain()
            return await fut
        finally:
            try:
                job.queues.remove(queue)
            except ValueError:
                pass

    def _job_frame(self, job: _Job, frame: dict) -> None:
        """One live frame for *job*: record it as the job's live state
        and fan it to every follower.  Scheduled onto the event loop via
        ``call_soon_threadsafe`` from the worker babysitter thread."""
        job.live = frame
        for queue in list(job.queues):
            queue.put_nowait(frame)

    def _make_spec(
        self, key, program, program_spec, raw_options, options,
        schedules=None,
    ) -> JobSpec:
        raw = dict(raw_options or {})
        if options.time_limit_s is not None:
            raw["time_limit_s"] = options.time_limit_s
        job_dir = self.store.job_dir(key)
        os.makedirs(job_dir, exist_ok=True)
        resume = os.path.exists(self.store.checkpoint_path(key))
        return JobSpec(
            key=key,
            program=dict(program_spec),
            options=raw,
            checkpoint_path=self.store.checkpoint_path(key),
            outcome_path=self.store.outcome_path(key),
            cache_path=(
                self.store._cache_path(keys.cache_key(program, options))
                if options.memo else None
            ),
            checkpoint_every=self.options.checkpoint_every,
            resume=resume,
            schedules=schedules,
            progress_interval_s=self.options.progress_interval_s,
        )

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------

    async def _run_job(self, job: _Job) -> None:
        try:
            response = await self._run_attempts(job)
        except Exception as exc:  # belt-and-braces: never hang a client
            LOG.exception("job %s failed unexpectedly", job.key)
            response = _error("internal", f"job runner crashed: {exc!r}")
        self._jobs.pop(job.key, None)
        if not job.future.done():
            job.future.set_result(response)

    async def _run_attempts(self, job: _Job) -> dict:
        loop = asyncio.get_running_loop()
        spec = job.spec

        def on_frame(frame: dict, _job=job) -> None:
            # runs in the babysitter's executor thread — hop to the loop
            loop.call_soon_threadsafe(self._job_frame, _job, frame)

        async with self._sem:
            for attempt in range(self.options.max_restarts + 1):
                if attempt:
                    self._job_frame(job, _progress_frame(
                        "progress.resumed", "resumed", job.key,
                        attempt=attempt + 1,
                    ))
                outcome = await loop.run_in_executor(
                    None, _run_worker_process, spec,
                    self.options.worker_watchdog_s, on_frame,
                    self.options.heartbeat_s,
                )
                if outcome is not None:
                    return self._publish(job.key, outcome)
                # crashed (or watchdog-killed): resume from checkpoint
                self._inc("serve.worker_restarts")
                self._job_frame(job, _progress_frame(
                    "progress.stalled", "stalled", job.key,
                    restarting=attempt < self.options.max_restarts,
                    attempt=attempt + 1,
                ))
                LOG.warning(
                    "job %s worker died (attempt %d); resuming from "
                    "checkpoint", job.key, attempt + 1,
                )
                spec = spec.resumed()
        self._inc("serve.jobs_failed")
        # the pending record and checkpoint stay on disk: a server
        # restart (or a later resubmit) picks the job up from there
        return _error(
            "worker-failed",
            f"job {job.key} crashed {self.options.max_restarts + 1} "
            "times; its checkpoint is kept for resume",
            resumable=True,
        )

    def _publish(self, key: str, outcome: dict) -> dict:
        """Turn a worker outcome into a response; persist complete
        results (and their warm caches) in the store."""
        if not outcome.get("ok"):
            self._inc("serve.jobs_failed")
            self.store.clear_pending(key)
            err = outcome.get("error") or {}
            return _error(
                err.get("type", "JobError"), err.get("message", "job failed")
            )
        self._inc("serve.jobs_completed")
        if self.metrics is not None and outcome.get("metrics"):
            self.metrics.merge(outcome["metrics"])
        summary = outcome.get("summary", {})
        payload = {
            "result_digest": outcome.get("result_digest"),
            "summary": summary,
            "outcomes": outcome.get("outcomes", []),
        }
        if outcome.get("schedules") is not None:
            payload["schedules"] = outcome["schedules"]
        if not summary.get("truncated"):
            # truncated results are budget-dependent, and budgets are
            # not part of the store key — only complete results persist
            self.store.put_result(key, payload)
            cache_export = outcome.get("cache_export")
            cache_id = _cache_id_of(outcome, self._jobs.get(key))
            if cache_export is not None and cache_id is not None:
                self.store.put_cache(cache_id, cache_export)
        self.store.clear_pending(key)
        response = dict(payload)
        response.update({"ok": True, "key": key, "cached": False})
        return response

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    def recover(self) -> int:
        """Re-schedule every durably recorded unfinished job (resuming
        from its checkpoint).  Call once, on startup, from within the
        event loop.  Returns the number of jobs recovered."""
        recovered = 0
        for key, record in self.store.pending_jobs():
            if key in self._jobs:
                continue
            if self.store.has_result(key):
                self.store.clear_pending(key)
                continue
            try:
                program = _load_program_checked(record.get("program"))
                options = keys.options_from_request(record.get("options"))
                schedules = (
                    keys.schedule_options_from_request(
                        record.get("schedules")
                    )
                    if record.get("schedules") is not None
                    else None
                )
            except ReproError as exc:
                LOG.warning(
                    "dropping unrecoverable pending job %s (%s)", key, exc
                )
                self.store.clear_pending(key)
                continue
            spec = self._make_spec(
                key, program, record.get("program"), record.get("options"),
                options, schedules,
            )
            job = _Job(key=key, spec=spec, waiters=0,
                       future=asyncio.get_running_loop().create_future())
            self._jobs[key] = job
            job.task = asyncio.ensure_future(self._run_job(job))
            recovered += 1
            self._inc("serve.recovered")
            LOG.info("recovered pending job %s", key)
        return recovered

    # ------------------------------------------------------------------
    # socket front end
    # ------------------------------------------------------------------

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(_encode(_error(
                        "bad-request", "request line too long")))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    req = json.loads(line)
                except json.JSONDecodeError as exc:
                    writer.write(_encode(
                        _error("bad-request", f"not JSON: {exc.msg}")
                    ))
                    await writer.drain()
                else:
                    if (
                        isinstance(req, dict)
                        and req.get("follow")
                        and req.get("op") in ("submit", "schedules")
                    ):
                        # streaming path: frames + final response are
                        # written by the follow handler itself
                        await self._submit_followed(req, writer)
                    else:
                        response = await self.handle_request(req)
                        writer.write(_encode(response))
                        await writer.drain()
                if self._shutdown.is_set():
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange; its job keeps running
        finally:
            writer.close()

    async def serve(self, address: str, *, ready=None) -> None:
        """Bind *address* (a unix-socket path, or ``host:port``) and
        serve until a ``shutdown`` request arrives."""
        host_port = _parse_tcp(address)
        if host_port is not None:
            self._server = await asyncio.start_server(
                self._on_client, host_port[0], host_port[1],
                limit=_LINE_LIMIT,
            )
        else:
            if os.path.exists(address):
                os.unlink(address)  # stale socket from a killed server
            self._server = await asyncio.start_unix_server(
                self._on_client, path=address, limit=_LINE_LIMIT
            )
        self.recover()
        if ready is not None:
            ready()
        async with self._server:
            await self._shutdown.wait()
            # let in-flight jobs finish so their results hit the store
            for job in list(self._jobs.values()):
                if job.task is not None:
                    await job.task


def _cache_id_of(outcome: dict, job: _Job | None) -> str | None:
    """Recover the cache file id for a finished job's export (from the
    spec's cache path — the worker does not recompute it)."""
    if job is None or job.spec.cache_path is None:
        return None
    base = os.path.basename(job.spec.cache_path)
    return base[:-4] if base.endswith(".pkl") else base


def _encode(obj: dict) -> bytes:
    return json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n"


def _parse_tcp(address: str) -> tuple[str, int] | None:
    """``host:port`` → tuple; anything else is a unix-socket path."""
    host, sep, port = address.rpartition(":")
    if sep and port.isdigit() and os.sep not in address:
        return (host or "127.0.0.1", int(port))
    return None


def _load_program_checked(spec):
    from repro.serve.worker import load_program

    return load_program(spec)


def _apply_deadline(options, deadline_s):
    """Fold a request deadline into the engine's wall-clock budget (the
    smaller of the two wins) — expiry truncates gracefully server-side,
    so the client always gets a response."""
    if deadline_s is None:
        return options
    try:
        deadline = float(deadline_s)
    except (TypeError, ValueError):
        raise ServeError(f"deadline_s: cannot coerce {deadline_s!r}")
    if deadline <= 0:
        raise ServeError(f"deadline_s must be positive, got {deadline}")
    from dataclasses import replace

    limit = options.time_limit_s
    return replace(
        options,
        time_limit_s=deadline if limit is None else min(limit, deadline),
    )


def _run_worker_process(
    spec: JobSpec, watchdog_s: float | None, on_frame=None,
    heartbeat_s: float | None = None,
):
    """Fork + babysit one job worker (runs in an executor thread).

    The worker ships live progress frames over a pipe; each one is
    handed to *on_frame*.  A worker silent for longer than *heartbeat_s*
    while still alive is surfaced as a ``progress.stalled`` frame (a
    hung worker becomes visible within one heartbeat, long before the
    watchdog fires); a SIGKILLed worker closes the pipe, so its death is
    detected within one poll tick.

    Returns the worker's outcome dict, or None when it crashed, was
    watchdog-killed, or exited without leaving an outcome file."""
    try:
        os.unlink(spec.outcome_path)
    except OSError:
        pass
    ctx = multiprocessing.get_context("fork")
    recv, send = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=run_job, args=(spec, send), daemon=True)
    proc.start()
    send.close()  # child holds the only writer: its exit is our EOF
    deadline = (
        None if watchdog_s is None else time.monotonic() + watchdog_s
    )
    last_frame_t = time.monotonic()
    stalled_sent = False
    eof = False
    while not eof:
        try:
            ready = recv.poll(0.05)
        except OSError:
            break
        if ready:
            try:
                frame = recv.recv()
            except (EOFError, OSError):
                break  # pipe closed: normal exit, crash, or SIGKILL
            last_frame_t = time.monotonic()
            stalled_sent = False
            if on_frame is not None and isinstance(frame, dict):
                on_frame(frame)
            continue
        if not proc.is_alive():
            break
        now = time.monotonic()
        if (
            heartbeat_s is not None
            and on_frame is not None
            and not stalled_sent
            and now - last_frame_t > heartbeat_s
        ):
            stalled_sent = True
            on_frame(_progress_frame(
                "progress.stalled", "stalled", spec.key,
                wall_silence_s=round(now - last_frame_t, 3),
            ))
        if deadline is not None and now > deadline:
            LOG.warning(
                "job %s worker exceeded the %ss watchdog; killing it",
                spec.key, watchdog_s,
            )
            proc.kill()
            break
    # drain frames that raced the exit, then reap
    while True:
        try:
            if not recv.poll(0):
                break
            frame = recv.recv()
        except (EOFError, OSError):
            break
        if on_frame is not None and isinstance(frame, dict):
            on_frame(frame)
    recv.close()
    proc.join()
    try:
        with open(spec.outcome_path, "rb") as fh:
            import pickle

            outcome = pickle.load(fh)
        os.unlink(spec.outcome_path)
        if not isinstance(outcome, dict):
            return None
        return outcome
    except Exception:
        return None  # crashed before (or while) writing the outcome


# --------------------------------------------------------------------------
# synchronous client
# --------------------------------------------------------------------------


def request(address: str, req: dict, *, timeout: float = 300.0) -> dict:
    """One request/response exchange with a running server.

    Raises :class:`ServeError` when the server is unreachable or the
    connection dies mid-exchange — protocol-level failures (overload,
    bad request) come back as ordinary response objects."""
    host_port = _parse_tcp(address)
    try:
        if host_port is not None:
            conn = socket.create_connection(host_port, timeout=timeout)
        else:
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.settimeout(timeout)
            conn.connect(address)
    except OSError as exc:
        raise ServeError(f"cannot reach server at {address!r}: {exc}")
    try:
        conn.sendall(_encode(req))
        chunks = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        data = b"".join(chunks)
        if not data:
            raise ServeError(
                f"server at {address!r} closed the connection without "
                "responding (it may have crashed; retry after restart)"
            )
        return json.loads(data)
    except socket.timeout:
        raise ServeError(
            f"no response from {address!r} within {timeout}s"
        )
    except (OSError, json.JSONDecodeError) as exc:
        raise ServeError(f"broken exchange with {address!r}: {exc}")
    finally:
        conn.close()


def request_stream(
    address: str, req: dict, *, timeout: float = 300.0, on_frame=None
) -> dict:
    """A following submit: *on_frame* receives each interleaved
    ``{"progress": true, ...}`` line as a dict; returns the final
    (non-progress) response.

    Sets ``follow=True`` on the request itself.  Against a ``/1``
    server the flag is ignored and the final response arrives with zero
    frames, so callers degrade gracefully.  *timeout* bounds each
    silence between lines, not the whole exchange — a streaming job
    resets it with every frame."""
    req = dict(req)
    req["follow"] = True
    host_port = _parse_tcp(address)
    try:
        if host_port is not None:
            conn = socket.create_connection(host_port, timeout=timeout)
        else:
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.settimeout(timeout)
            conn.connect(address)
    except OSError as exc:
        raise ServeError(f"cannot reach server at {address!r}: {exc}")
    try:
        conn.sendall(_encode(req))
        buf = b""
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                raise ServeError(
                    f"server at {address!r} closed the connection "
                    "mid-stream (it may have crashed; retry after restart)"
                )
            buf += chunk
            while b"\n" in buf:
                line, buf = buf.split(b"\n", 1)
                if not line.strip():
                    continue
                obj = json.loads(line)
                if isinstance(obj, dict) and obj.get("progress"):
                    if on_frame is not None:
                        on_frame(obj)
                    continue
                return obj
    except socket.timeout:
        raise ServeError(f"no response from {address!r} within {timeout}s")
    except (OSError, json.JSONDecodeError) as exc:
        raise ServeError(f"broken exchange with {address!r}: {exc}")
    finally:
        conn.close()
