"""Analysis-as-a-service: a crash-safe job server over the explorer.

- :mod:`repro.serve.store` — the durable result + warm-cache store
  (atomic writes, checksums, corruption quarantine);
- :mod:`repro.serve.keys` — request identity and the cache-import
  validity gate;
- :mod:`repro.serve.worker` — the per-job worker process
  (checkpointing, warm start, outcome handoff);
- :mod:`repro.serve.server` — the asyncio front end (coalescing,
  bounded admission, crash recovery) and the ``repro submit`` client.
"""

from repro.serve.keys import cache_key, options_from_request, store_key
from repro.serve.server import (
    PROTOCOL,
    ReproServer,
    ServeOptions,
    request,
    request_stream,
)
from repro.serve.store import ResultStore
from repro.serve.worker import JobSpec, run_job

__all__ = [
    "PROTOCOL",
    "JobSpec",
    "ReproServer",
    "ResultStore",
    "ServeOptions",
    "cache_key",
    "options_from_request",
    "request",
    "request_stream",
    "run_job",
    "store_key",
]
