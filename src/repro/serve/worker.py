"""The service's job worker: one exploration, in its own process.

The server forks one worker per admitted job.  The worker checkpoints
through the ordinary :class:`~repro.resilience.checkpoint.Checkpointer`,
warm-starts its expansion-memo cache from the store's persisted cache
file (gated by :func:`repro.serve.keys.keep_predicate`), and hands its
outcome back through a pickle file — the server performs every durable
*store* write itself, so a worker that dies mid-job (or outlives a
killed server as an orphan) can never publish a partial result.

The outcome file is the full success/typed-failure report; a worker
that crashes before writing it (the ``serve-worker-kill`` drill, a real
OOM kill) simply leaves nothing, and the server restarts the job with
``resume=True`` so it continues from the last checkpoint instead of
re-exploring from scratch.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, replace

from repro.resilience import chaos
from repro.resilience.checkpoint import CheckpointError, Checkpointer
from repro.serve import keys
from repro.serve.store import read_cache_file
from repro.util.errors import ReproError

#: Exit code of a worker hard-exited by the ``serve-worker-kill`` drill
#: (distinguishable from a Python traceback's exit 1 in tests).
KILLED_EXIT = 87

#: Version of the worker → server outcome payload.
OUTCOME_SCHEMA = "repro.serve.outcome/1"


@dataclass(frozen=True)
class JobSpec:
    """Everything a worker process needs — picklable, path-based."""

    key: str
    #: ``{"kind": "source", "text": ...}`` or ``{"kind": "corpus",
    #: "name": ...}``
    program: dict
    #: raw request options (re-normalized worker-side so the spec stays
    #: JSON-serializable for the store's pending-job records)
    options: dict
    checkpoint_path: str
    outcome_path: str
    #: persisted warm-cache file to import from (and whose refreshed
    #: contents the outcome carries back), or None
    cache_path: str | None
    checkpoint_every: int = 200
    #: continue from ``checkpoint_path`` if it holds a loadable snapshot
    resume: bool = False
    #: normalized schedule-generation options for a ``schedules``
    #: request (:func:`repro.serve.keys.schedule_options_from_request`),
    #: or None for a plain submit
    schedules: dict | None = None
    #: seconds between progress frames shipped over the server's
    #: progress pipe (operational — frames never affect the outcome)
    progress_interval_s: float = 0.5

    def resumed(self) -> "JobSpec":
        return replace(self, resume=True)


def load_program(spec: dict):
    """Materialize a request's program object; :class:`ReproError` (or a
    subclass from the front end) on anything malformed."""
    from repro.util.errors import ServeError

    if not isinstance(spec, dict):
        raise ServeError("program must be an object")
    kind = spec.get("kind")
    if kind == "source":
        from repro.lang import parse_program

        text = spec.get("text")
        if not isinstance(text, str):
            raise ServeError("program.text must be a string")
        return parse_program(text)
    if kind == "corpus":
        from repro.programs.corpus import CORPUS

        name = spec.get("name")
        if name not in CORPUS:
            raise ServeError(
                f"unknown corpus program {name!r}; known: "
                + ", ".join(sorted(CORPUS))
            )
        return CORPUS[name]()
    raise ServeError(
        f"unknown program kind {kind!r} (want 'source' or 'corpus')"
    )


def run_job(spec: JobSpec, progress_conn=None) -> None:
    """Process entry point: execute *spec*, leave an outcome file.

    Never raises out (the server diagnoses a missing outcome file as a
    crash) — every representable failure becomes a typed error outcome
    instead.  The ``serve-worker-kill`` drill fires *before* any work
    and hard-exits, modeling the kernel killing the job.

    *progress_conn* is the worker's end of the server's progress pipe
    (``repro.serve/2``); live frames ship through it, and closing it is
    also the server's normal-exit signal.  Frames are pure telemetry —
    the outcome is byte-identical with or without the pipe attached."""
    try:
        chaos.kick("serve-worker-kill")
    except chaos.ChaosFault:
        os._exit(KILLED_EXIT)
    try:
        try:
            outcome = _execute(spec, progress_conn)
        except ReproError as exc:
            outcome = {
                "schema": OUTCOME_SCHEMA,
                "key": spec.key,
                "ok": False,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }
        _write_outcome(spec.outcome_path, outcome)
    finally:
        if progress_conn is not None:
            try:
                progress_conn.close()
            except OSError:
                pass


def _write_outcome(path: str, outcome: dict) -> None:
    """Plain atomic write — transient IPC, deliberately outside the
    ``store-io``/``store-corrupt`` drills (a store fault must degrade
    the *store*, not masquerade as a worker crash)."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        pickle.dump(outcome, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def _execute(spec: JobSpec, progress_conn=None) -> dict:
    from repro.bench import result_digest
    from repro.explore import explore
    from repro.explore.memo import ExpandCache
    from repro.metrics import MetricsObserver

    program = load_program(spec.program)
    options = keys.options_from_request(spec.options)

    cache = None
    imported = 0
    if options.memo:
        cache = ExpandCache()
        if spec.cache_path is not None:
            document = read_cache_file(spec.cache_path)
            if document is not None:
                keep = keys.keep_predicate(document, program)
                if keep is not None:
                    imported = cache.load_state(
                        document.get("state"), keep=keep
                    )

    checkpointer = Checkpointer(
        spec.checkpoint_path, every=spec.checkpoint_every
    )
    resume_from = None
    if spec.resume and os.path.exists(spec.checkpoint_path):
        resume_from = spec.checkpoint_path

    metrics_ob = MetricsObserver()
    observers: tuple = (metrics_ob,)
    emitter = None
    if progress_conn is not None:
        from repro.progress import PipeSink, ProgressEmitter

        emitter = ProgressEmitter(
            PipeSink(progress_conn), interval_s=spec.progress_interval_s
        )
        emitter.set_context(key=spec.key)
        # an immediate frame: even an instant job yields start + done
        emitter.emit(
            "start",
            resume=resume_from is not None,
            schedules=spec.schedules is not None,
        )
        observers = (metrics_ob, emitter)
    try:
        result = explore(
            program,
            options=options,
            observers=observers,
            checkpointer=checkpointer,
            resume_from=resume_from,
            expand_cache=cache,
        )
        resume_failed = False
    except CheckpointError:
        # a truncated/corrupt snapshot must not fail the job: drop it
        # and re-explore cold (the result is identical, just slower)
        try:
            os.unlink(spec.checkpoint_path)
        except OSError:
            pass
        result = explore(
            program,
            options=options,
            observers=observers,
            checkpointer=checkpointer,
            expand_cache=cache,
        )
        resume_failed = True

    stats = result.stats
    outcome = {
        "schema": OUTCOME_SCHEMA,
        "key": spec.key,
        "ok": True,
        "error": None,
        "result_digest": result_digest(result),
        "summary": {
            "configs": stats.num_configs,
            "edges": stats.num_edges,
            "terminated": stats.num_terminated,
            "deadlocks": stats.num_deadlocks,
            "faults": stats.num_faults,
            "truncated": stats.truncated,
            "truncation_reason": stats.truncation_reason,
            "resumed": stats.resumed,
            "resume_failed": resume_failed,
            "policy": options.describe(),
        },
        "outcomes": sorted(
            repr(dict(zip(program.global_names, g)))
            for g in result.terminal_globals()
        ),
        "metrics": metrics_ob.registry.snapshot(),
        "imported_cache_entries": imported,
        "cache_export": None,
    }
    if spec.schedules is not None:
        # a schedules job: derive the canonical schedule set, replay-
        # verify it (the self-check — a divergence is a typed error,
        # never a published wrong answer), and ship the document.
        # ``generate`` rejects truncated explorations itself.
        from repro.schedules import generate, schedule_document, verify_set

        sset = generate(
            result,
            sample=spec.schedules.get("sample"),
            seed=spec.schedules.get("seed", 0),
            max_paths=spec.schedules["max_paths"],
            max_schedules=spec.schedules["max_schedules"],
            metrics=metrics_ob.registry,
            progress=emitter,
        )
        verify_set(result, sset, metrics=metrics_ob.registry)
        outcome["schedules"] = schedule_document(sset)
        outcome["metrics"] = metrics_ob.registry.snapshot()
    # a truncated run saw only part of the state space: neither its
    # result nor its memo cache may be published (the cache itself is
    # sound, but exporting it is pointless churn on a failed budget)
    if cache is not None and not stats.truncated:
        outcome["cache_export"] = keys.cache_document(
            program, cache.export_state()
        )
    return outcome
