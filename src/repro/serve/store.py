"""The durable result store: crash-safe persistence for the service.

Layout (all writes atomic — temp file + ``os.replace``)::

    <root>/
      manifest.json             # {"schema": "repro.store/1"}
      entries/<key>/
        result.pkl              # pickled result payload
        meta.json               # checksum + summary; written LAST (commit)
      caches/<cache-key>.pkl    # checksum line + pickled cache document
      jobs/<key>/
        job.json                # pending-job record (program + options)
        checkpoint.ckpt         # the job's periodic snapshot
        outcome.pkl             # worker → server handoff (transient)
      quarantine/               # entries/files that failed validation

Failure contract — the store **never fails a request**:

- every read path (``get_result``, ``get_cache``, ``pending_jobs``)
  returns data or ``None``/empty, never raises: unreadable or
  checksum-mismatched artifacts are *quarantined* (moved aside, counted
  in ``quarantined``) so the bad bytes cannot be re-read next time and
  a later investigation still has them;
- every write path (``put_result``, ``put_cache``, ``record_pending``)
  returns False on failure after logging and counting it — a full disk
  degrades the service to cache-miss behavior, it does not take it
  down;
- ``meta.json`` is the commit point of an entry: it is written after
  ``result.pkl``, so a crash between the two leaves an invisible (and
  later overwritten) result file, never a half-entry that validates.

Fault drills (:mod:`repro.resilience.chaos`): ``store-io`` fires per
low-level write inside store writes — a mid-file failure leaves only
temp files, which the atomic-rename discipline never promotes;
``store-corrupt`` silently flips bytes in a payload being written, so
the checksum verification and quarantine path get exercised end to end.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle

from repro.resilience import chaos
from repro.resilience.checkpoint import _ChaosWriteFile

LOG = logging.getLogger("repro.serve")

#: Version of the store layout; a manifest with a different schema is
#: refused (the store directory is not silently misread).
STORE_SCHEMA = "repro.store/1"

#: Version of the pickled result payload inside an entry.
RESULT_SCHEMA = "repro.store.result/1"

_CHECKSUM_SIZE = 16


def _checksum(blob: bytes) -> str:
    return hashlib.blake2b(blob, digest_size=_CHECKSUM_SIZE).hexdigest()


def _corrupt(blob: bytes) -> bytes:
    """Flip a few bytes mid-payload (the ``store-corrupt`` drill)."""
    if not blob:
        return blob
    mid = len(blob) // 2
    return blob[:mid] + bytes(b ^ 0xFF for b in blob[mid:mid + 4]) + blob[mid + 4:]


class StoreCorrupt(Exception):
    """Internal: an artifact failed validation (checksum/JSON/pickle).
    Never escapes the store — it routes to quarantine."""


class ResultStore:
    """Disk-backed result + warm-cache + pending-job store.

    Thread-safety: all mutating operations go through atomic renames,
    so concurrent writers (a recovered server racing an orphaned
    worker's outcome, say) can only replace whole files with other
    valid whole files.  Counters are plain ints — call sites live on
    one event loop.
    """

    def __init__(self, root: str, *, metrics=None) -> None:
        self.root = root
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.put_failures = 0
        self.quarantined = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.evictions = 0
        for sub in ("entries", "caches", "jobs", "quarantine"):
            os.makedirs(os.path.join(root, sub), exist_ok=True)
        self._init_manifest()

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    def _init_manifest(self) -> None:
        path = os.path.join(self.root, "manifest.json")
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    manifest = json.load(fh)
                schema = manifest.get("schema")
            except (OSError, json.JSONDecodeError, AttributeError):
                schema = None
            if schema != STORE_SCHEMA:
                from repro.util.errors import ServeError

                raise ServeError(
                    f"store at {self.root!r} has schema {schema!r}; this "
                    f"engine speaks {STORE_SCHEMA!r} — point the server at "
                    "a fresh directory or delete the old store"
                )
            return
        # manifest writes bypass the chaos points: they happen once at
        # startup, before any drill should be able to wedge the server
        self._atomic_write(path, json.dumps({"schema": STORE_SCHEMA}).encode(),
                           chaos_points=False)

    # ------------------------------------------------------------------
    # low-level atomic writes
    # ------------------------------------------------------------------

    def _atomic_write(
        self, path: str, data: bytes, *, chaos_points: bool = True
    ) -> None:
        if chaos_points and chaos.fired("store-corrupt"):
            data = _corrupt(data)
        tmp = f"{path}.tmp"
        try:
            with open(tmp, "wb") as fh:
                out = _ChaosWriteFile(fh) if chaos_points else fh
                view = memoryview(data)
                # chunked so a mid-file store-io firing leaves a
                # genuinely truncated temp file
                for i in range(0, len(view) or 1, 1 << 16):
                    out.write(view[i:i + (1 << 16)])
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def _inc(self, name: str, n: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, n)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def _entry_dir(self, key: str) -> str:
        return os.path.join(self.root, "entries", key)

    def has_result(self, key: str) -> bool:
        return os.path.exists(os.path.join(self._entry_dir(key), "meta.json"))

    def put_result(self, key: str, payload: dict) -> bool:
        """Persist *payload* (a plain picklable dict) under *key*.
        Returns False (after logging + counting) on any failure."""
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            meta = {
                "schema": RESULT_SCHEMA,
                "key": key,
                "checksum": _checksum(blob),
                "result_digest": payload.get("result_digest"),
            }
            entry = self._entry_dir(key)
            os.makedirs(entry, exist_ok=True)
            self._atomic_write(os.path.join(entry, "result.pkl"), blob)
            # meta.json is the commit point: written only after the
            # payload landed completely
            self._atomic_write(
                os.path.join(entry, "meta.json"),
                json.dumps(meta, sort_keys=True).encode(),
            )
        except Exception as exc:
            self.put_failures += 1
            self._inc("serve.store_put_failures")
            LOG.warning("store: cannot persist entry %s (%s)", key, exc)
            return False
        self.puts += 1
        self._inc("serve.store_puts")
        return True

    def get_result(self, key: str) -> dict | None:
        """The payload stored under *key*, or None.  Validation failures
        quarantine the entry and report a miss — never an exception."""
        entry = self._entry_dir(key)
        meta_path = os.path.join(entry, "meta.json")
        if not os.path.exists(meta_path):
            self.misses += 1
            self._inc("serve.store_misses")
            return None
        try:
            try:
                with open(meta_path, "r", encoding="utf-8") as fh:
                    meta = json.load(fh)
                if not isinstance(meta, dict) or meta.get("schema") != RESULT_SCHEMA:
                    raise StoreCorrupt(f"bad meta schema in {meta_path}")
                with open(os.path.join(entry, "result.pkl"), "rb") as fh:
                    blob = fh.read()
                if _checksum(blob) != meta.get("checksum"):
                    raise StoreCorrupt(f"checksum mismatch for entry {key}")
                payload = pickle.loads(blob)
                if not isinstance(payload, dict):
                    raise StoreCorrupt(f"entry {key} payload is not a dict")
            except StoreCorrupt:
                raise
            except Exception as exc:
                raise StoreCorrupt(f"entry {key} unreadable: {exc!r}")
        except StoreCorrupt as exc:
            LOG.warning("store: quarantining bad entry (%s)", exc)
            self._quarantine(entry)
            self.misses += 1
            self._inc("serve.store_misses")
            self._inc("serve.store_quarantined")
            return None
        self.hits += 1
        self._inc("serve.store_hits")
        try:
            # meta.json's mtime is the entry's last-hit timestamp — the
            # LRU ordering ``gc`` evicts by
            os.utime(meta_path)
        except OSError:
            pass
        return payload

    def _quarantine(self, path: str) -> None:
        """Move a bad artifact into quarantine/ (fall back to deleting
        it; never raise — the caller is already on a degraded path)."""
        self.quarantined += 1
        base = os.path.basename(path.rstrip(os.sep))
        try:
            for n in range(1000):
                target = os.path.join(
                    self.root, "quarantine", f"{base}.{n}"
                )
                if not os.path.exists(target):
                    os.replace(path, target)
                    return
        except OSError:
            pass
        try:
            import shutil

            if os.path.isdir(path):
                shutil.rmtree(path, ignore_errors=True)
            elif os.path.exists(path):
                os.unlink(path)
        except OSError:  # pragma: no cover - last-resort guard
            LOG.warning("store: cannot quarantine or remove %s", path)

    # ------------------------------------------------------------------
    # warm caches
    # ------------------------------------------------------------------

    def _cache_path(self, cache_id: str) -> str:
        return os.path.join(self.root, "caches", f"{cache_id}.pkl")

    def put_cache(self, cache_id: str, document: dict) -> bool:
        """Persist a cache document (see
        :func:`repro.serve.keys.cache_document`)."""
        try:
            blob = pickle.dumps(document, protocol=pickle.HIGHEST_PROTOCOL)
            data = _checksum(blob).encode("ascii") + b"\n" + blob
            self._atomic_write(self._cache_path(cache_id), data)
        except Exception as exc:
            self.put_failures += 1
            self._inc("serve.store_put_failures")
            LOG.warning("store: cannot persist cache %s (%s)", cache_id, exc)
            return False
        self._inc("serve.cache_puts")
        return True

    def get_cache(self, cache_id: str) -> dict | None:
        return read_cache_file(self._cache_path(cache_id), store=self)

    # ------------------------------------------------------------------
    # pending jobs (crash recovery)
    # ------------------------------------------------------------------

    def job_dir(self, key: str) -> str:
        return os.path.join(self.root, "jobs", key)

    def checkpoint_path(self, key: str) -> str:
        return os.path.join(self.job_dir(key), "checkpoint.ckpt")

    def outcome_path(self, key: str) -> str:
        return os.path.join(self.job_dir(key), "outcome.pkl")

    def record_pending(self, key: str, record: dict) -> bool:
        """Durably mark *key* as submitted-but-unfinished, with enough
        context (program spec + options) to re-run it after a crash."""
        try:
            path = self.job_dir(key)
            os.makedirs(path, exist_ok=True)
            self._atomic_write(
                os.path.join(path, "job.json"),
                json.dumps(record, sort_keys=True).encode(),
            )
        except Exception as exc:
            self.put_failures += 1
            self._inc("serve.store_put_failures")
            LOG.warning("store: cannot record pending job %s (%s)", key, exc)
            return False
        return True

    def clear_pending(self, key: str) -> None:
        """Forget a finished (or permanently failed) job, checkpoint
        included."""
        path = self.job_dir(key)
        try:
            import shutil

            shutil.rmtree(path, ignore_errors=True)
        except OSError:  # pragma: no cover - ignore_errors covers it
            pass

    def pending_jobs(self) -> list[tuple[str, dict]]:
        """Every recoverable job record, sorted by key.  Unreadable
        records are quarantined and skipped."""
        jobs_root = os.path.join(self.root, "jobs")
        out = []
        try:
            keys = sorted(os.listdir(jobs_root))
        except OSError:
            return []
        for key in keys:
            path = os.path.join(jobs_root, key, "job.json")
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    record = json.load(fh)
                if not isinstance(record, dict):
                    raise StoreCorrupt(f"job record {key} is not an object")
            except FileNotFoundError:
                continue  # job dir without a record: checkpoint debris
            except Exception as exc:
                LOG.warning(
                    "store: quarantining bad job record %s (%s)", key, exc
                )
                self._quarantine(os.path.join(jobs_root, key))
                self._inc("serve.store_quarantined")
                continue
            out.append((key, record))
        return out

    # ------------------------------------------------------------------
    # eviction (``repro store gc``)
    # ------------------------------------------------------------------

    def gc(
        self,
        *,
        max_bytes: int | None = None,
        max_age_s: float | None = None,
        now: float | None = None,
    ) -> dict:
        """Evict finished results and warm caches, LRU by last-hit
        manifest timestamp (``meta.json``/cache-file mtime, refreshed on
        every hit).

        ``max_age_s`` first drops everything idle longer than that;
        ``max_bytes`` then drops least-recently-hit items until the
        survivors fit.  ``quarantine/`` and ``jobs/`` are never touched:
        quarantined artifacts are evidence, and pending jobs are the
        crash-recovery contract.  Returns eviction counts and byte
        totals; never raises.
        """
        import shutil
        import time as _time

        now = _time.time() if now is None else now
        items: list[tuple[float, int, str, str]] = []
        entries_root = os.path.join(self.root, "entries")
        try:
            entry_keys = sorted(os.listdir(entries_root))
        except OSError:
            entry_keys = []
        for key in entry_keys:
            path = os.path.join(entries_root, key)
            try:
                last = os.path.getmtime(os.path.join(path, "meta.json"))
            except OSError:
                last = 0.0  # uncommitted half-entry: oldest, evicted first
            items.append((last, _dir_size(path), "entry", path))
        caches_root = os.path.join(self.root, "caches")
        try:
            cache_names = sorted(os.listdir(caches_root))
        except OSError:
            cache_names = []
        for name in cache_names:
            path = os.path.join(caches_root, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            items.append((st.st_mtime, st.st_size, "cache", path))

        evicted = {"entry": 0, "cache": 0}
        freed = 0

        def evict(item) -> None:
            nonlocal freed
            _last, size, kind, path = item
            try:
                if kind == "entry":
                    shutil.rmtree(path, ignore_errors=True)
                else:
                    os.unlink(path)
            except OSError:
                return
            evicted[kind] += 1
            freed += size
            self.evictions += 1
            self._inc("serve.store_evictions")

        survivors = []
        for item in items:
            if max_age_s is not None and now - item[0] > max_age_s:
                evict(item)
            else:
                survivors.append(item)
        if max_bytes is not None:
            survivors.sort()  # least recently hit first
            total = sum(item[1] for item in survivors)
            while total > max_bytes and survivors:
                item = survivors.pop(0)
                evict(item)
                total -= item[1]
        return {
            "evicted_entries": evicted["entry"],
            "evicted_caches": evicted["cache"],
            "freed_bytes": freed,
            "kept_bytes": sum(item[1] for item in survivors),
            "kept_items": len(survivors),
        }

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        return {
            "serve.store_hits": self.hits,
            "serve.store_misses": self.misses,
            "serve.store_puts": self.puts,
            "serve.store_put_failures": self.put_failures,
            "serve.store_quarantined": self.quarantined,
            "serve.store_evictions": self.evictions,
        }


def _dir_size(path: str) -> int:
    total = 0
    try:
        for name in os.listdir(path):
            try:
                total += os.path.getsize(os.path.join(path, name))
            except OSError:
                continue
    except OSError:
        pass
    return total


def read_cache_file(path: str, *, store: ResultStore | None = None) -> dict | None:
    """Read + validate a warm-cache file; None on absence or damage.

    Module-level so job workers can read a cache file directly without
    opening the whole store.  Damage quarantines (when a store is
    given) or deletes the file — a corrupt cache must never be able to
    wedge every future job that probes it.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        if store is not None:
            store.cache_misses += 1
            store._inc("serve.cache_store_misses")
        return None
    try:
        nl = data.index(b"\n")
        recorded = data[:nl].decode("ascii")
        blob = data[nl + 1:]
        if _checksum(blob) != recorded:
            raise StoreCorrupt(f"cache checksum mismatch: {path}")
        document = pickle.loads(blob)
        if not isinstance(document, dict):
            raise StoreCorrupt(f"cache payload is not a dict: {path}")
    except Exception as exc:
        LOG.warning("store: bad cache file %s (%s)", path, exc)
        if store is not None:
            store._quarantine(path)
            store.cache_misses += 1
            store._inc("serve.cache_store_misses")
            store._inc("serve.store_quarantined")
        else:
            try:
                os.unlink(path)
            except OSError:
                pass
        return None
    try:
        os.utime(path)  # last-hit timestamp for ``ResultStore.gc``
    except OSError:
        pass
    if store is not None:
        store.cache_hits += 1
        store._inc("serve.cache_store_hits")
    return document
