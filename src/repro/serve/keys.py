"""Identity for the durable store: request keys and warm-cache gating.

Three identities, three scopes:

``store_key``
    *exact* result identity: the program fingerprint (hash of its
    compiled disassembly) plus the non-budget exploration options
    (:meth:`~repro.explore.ExploreOptions.resume_key`).  Two
    submissions with the same store key are the same analysis — the
    server coalesces them and the store replays the finished result.

``cache_key``
    *family* identity for the persisted expansion-memo cache: the
    program's **shape** (sorted function names + globals layout) plus
    the option fields that change what an expansion computes (coarsen,
    block budget, step semantics).  Deliberately **not** the full
    fingerprint — a lightly-edited program keeps its shape, finds the
    old cache file, and imports whatever entries are still valid.

``func_digests`` / ``keep_predicate``
    the validity gate for that import.  A memoized expansion replays the
    interpreter's work for one process; it stays exact for an edited
    program iff every function that work could have executed is
    byte-identical.  We over-approximate "could have executed" with the
    static call-graph closure of the functions on the process's frame
    stack — any call executed inside a step or coarsened block starts at
    the top frame's function, so the closure covers it (frame setup for
    a callee consults that callee's signature, and the callee is in the
    closure).  Programs using first-class function values defeat static
    call targets, so they degrade to all-or-nothing: import only when
    every function digest matches.

Footprint probes re-check every shared *value* at replay time, so the
gate only needs to pin down *code*: globals are addressed by index
(hence the ``global_names`` tuple must match), heap cells by object
identity plus offset (value-checked like everything else).
"""

from __future__ import annotations

import hashlib
from dataclasses import fields as dataclass_fields, is_dataclass

from repro.explore import ExploreOptions
from repro.lang.instructions import ICall, RFunc
from repro.lang.program import Program
from repro.resilience.checkpoint import program_fingerprint
from repro.semantics.step import StepOptions
from repro.util.errors import ServeError

#: Version of the persisted cache document layout (see
#: :func:`cache_document`).
CACHE_SCHEMA = "repro.serve.cache/1"

#: ExploreOptions fields a submit request may set, with coercers.
_OPTION_FIELDS = {
    "policy": str,
    "coarsen": bool,
    "sleep": bool,
    "coarse_derefs": bool,
    "memo": bool,
    "max_configs": int,
    "max_block_len": int,
    "time_limit_s": float,
    "max_rss_bytes": int,
}


def options_from_request(raw: dict | None) -> ExploreOptions:
    """Normalize a request's ``options`` object into
    :class:`ExploreOptions` (serial backend — service jobs are single
    worker processes; parallelism comes from running many jobs).

    Unknown keys and bad value types raise :class:`ServeError` — a
    misspelled option must not silently analyze the wrong thing.
    """
    raw = raw or {}
    if not isinstance(raw, dict):
        raise ServeError(f"options must be an object, got {type(raw).__name__}")
    kwargs = {}
    for name, value in raw.items():
        coerce = _OPTION_FIELDS.get(name)
        if coerce is None:
            raise ServeError(
                f"unknown option {name!r}; known: "
                + ", ".join(sorted(_OPTION_FIELDS))
            )
        if value is None and name in ("time_limit_s", "max_rss_bytes"):
            continue
        try:
            kwargs[name] = coerce(value)
        except (TypeError, ValueError):
            raise ServeError(f"option {name!r}: cannot coerce {value!r}")
    opts = ExploreOptions(backend="serial", jobs=1, **kwargs)
    if opts.policy not in ("full", "stubborn", "stubborn-proc"):
        raise ServeError(f"unknown policy {opts.policy!r}")
    return opts


def store_key(program: Program, options: ExploreOptions) -> str:
    """Exact result identity: fingerprint × non-budget options."""
    payload = (
        program_fingerprint(program) + "|" + repr(options.resume_key())
    ).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


#: Schedule-generation fields a ``schedules`` request may set.  They
#: are part of the *result's* identity (a different sample or seed is a
#: different schedule set), unlike the budget fields of a submit.
_SCHEDULE_FIELDS = {
    "sample": int,
    "seed": int,
    "max_paths": int,
    "max_schedules": int,
}


def schedule_options_from_request(raw: dict | None) -> dict:
    """Normalize a ``schedules`` request's generation options into a
    complete, deterministic dict (defaults filled in, so the key does
    not depend on which fields the client spelled out)."""
    from repro.schedules.canonical import (
        DEFAULT_MAX_PATHS,
        DEFAULT_MAX_SCHEDULES,
    )

    raw = raw or {}
    if not isinstance(raw, dict):
        raise ServeError(
            f"schedules must be an object, got {type(raw).__name__}"
        )
    out: dict = {
        "sample": None,
        "seed": 0,
        "max_paths": DEFAULT_MAX_PATHS,
        "max_schedules": DEFAULT_MAX_SCHEDULES,
    }
    for name, value in raw.items():
        coerce = _SCHEDULE_FIELDS.get(name)
        if coerce is None:
            raise ServeError(
                f"unknown schedules option {name!r}; known: "
                + ", ".join(sorted(_SCHEDULE_FIELDS))
            )
        if value is None and name == "sample":
            continue
        try:
            out[name] = coerce(value)
        except (TypeError, ValueError):
            raise ServeError(
                f"schedules option {name!r}: cannot coerce {value!r}"
            )
    if out["sample"] is not None and out["sample"] < 1:
        raise ServeError(f"schedules sample must be >= 1, got {out['sample']}")
    if out["max_paths"] < 1 or out["max_schedules"] < 1:
        raise ServeError("schedules max_paths/max_schedules must be >= 1")
    return out


def schedules_key(
    program: Program, options: ExploreOptions, schedules: dict
) -> str:
    """Identity of a cached schedule set: the exploration's store
    identity × the normalized generation options."""
    payload = (
        program_fingerprint(program)
        + "|"
        + repr(options.resume_key())
        + "|schedules|"
        + repr(sorted(schedules.items()))
    ).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def _expansion_options_key(options: ExploreOptions) -> tuple:
    """The option fields that change what one expansion computes (and
    therefore what a memo entry contains).  Policy and sleep sets pick
    *which* expansions happen, not what each one is — caches are shared
    across them."""
    return (
        options.coarsen,
        options.max_block_len,
        options.coarse_derefs,
        options.step,
    )


def cache_key(program: Program, options: ExploreOptions) -> str:
    """Family identity for the persisted warm cache (shape, not
    content — see the module docstring)."""
    payload = repr(
        (
            tuple(sorted(program.funcs)),
            tuple(program.global_names),
            _expansion_options_key(options),
        )
    ).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


# --------------------------------------------------------------------------
# function digests and the static call graph
# --------------------------------------------------------------------------


def func_digests(program: Program) -> dict[str, str]:
    """Per-function code digests: signature + instruction listing."""
    out = {}
    for name in program.funcs:
        fc = program.funcs[name]
        payload = repr(
            (fc.num_params, fc.num_locals, tuple(repr(i) for i in fc.instrs))
        ).encode("utf-8")
        out[name] = hashlib.blake2b(payload, digest_size=16).hexdigest()
    return out


def _walk_values(node):
    """Yield every dataclass-field value reachable from *node*
    (instructions hold expression trees; expressions hold
    sub-expressions)."""
    stack = [node]
    while stack:
        value = stack.pop()
        yield value
        if is_dataclass(value) and not isinstance(value, type):
            for f in dataclass_fields(value):
                stack.append(getattr(value, f.name))
        elif isinstance(value, tuple):
            stack.extend(value)


def call_graph(program: Program) -> tuple[dict[str, frozenset[str]], bool]:
    """``(direct-call edges per function, uses_dynamic_calls)``.

    ``dynamic`` is True when any call's callee is not a literal
    function name, or a function value appears outside a direct callee
    position (it may flow anywhere) — static targets are then
    unknowable and callers must fall back to whole-program gating.
    """
    edges: dict[str, set[str]] = {}
    dynamic = False
    for name in program.funcs:
        out = edges.setdefault(name, set())
        for instr in program.funcs[name].instrs:
            direct_callee = None
            if isinstance(instr, ICall):
                if isinstance(instr.callee, RFunc):
                    direct_callee = instr.callee
                    out.add(instr.callee.name)
                else:
                    dynamic = True
            for value in _walk_values(instr):
                if isinstance(value, RFunc) and value is not direct_callee:
                    dynamic = True
    return {k: frozenset(v) for k, v in edges.items()}, dynamic


def _closure(roots, edges) -> frozenset[str]:
    seen = set()
    stack = list(roots)
    while stack:
        f = stack.pop()
        if f in seen:
            continue
        seen.add(f)
        stack.extend(edges.get(f, ()))
    return frozenset(seen)


# --------------------------------------------------------------------------
# cache documents and the import gate
# --------------------------------------------------------------------------


def cache_document(program: Program, state: dict) -> dict:
    """Wrap an :meth:`ExpandCache.export_state` payload with the
    program identity the import gate needs."""
    _, dynamic = call_graph(program)
    return {
        "schema": CACHE_SCHEMA,
        "func_digests": func_digests(program),
        "dynamic": dynamic,
        "global_names": tuple(program.global_names),
        "state": state,
    }


def keep_predicate(document: dict, program: Program):
    """The per-process import filter for *document* against (a possibly
    edited) *program*, or None when nothing is importable.

    Returns a callable ``keep(proc) -> bool`` suitable for
    :meth:`ExpandCache.load_state`.
    """
    if not isinstance(document, dict) or document.get("schema") != CACHE_SCHEMA:
        return None
    if tuple(document.get("global_names", ())) != tuple(program.global_names):
        return None  # global indices renumbered: footprints unreadable
    old_digests = document.get("func_digests", {})
    new_digests = func_digests(program)
    edges, new_dynamic = call_graph(program)
    if document.get("dynamic") or new_dynamic:
        # first-class function values: static targets unknowable —
        # import only when every function is byte-identical
        if old_digests == new_digests:
            return lambda proc: True
        return None
    unchanged = {
        f for f, d in new_digests.items() if old_digests.get(f) == d
    }
    if not unchanged:
        return None

    def keep(proc) -> bool:
        roots = {frame.func for frame in proc.frames}
        return _closure(roots, edges) <= unchanged

    return keep
