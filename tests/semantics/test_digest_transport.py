"""O(delta) digest caching across pickle transport (counter-based).

The incremental digest layer (:func:`repro.semantics.config.stable_digest`)
caches 16-byte component digests on every :class:`Process` and
:class:`HeapObj` and the composed digest on the :class:`Config`, and
``__reduce__`` carries all three through pickling.  These tests assert
the *no re-hash* property with the process-global
:func:`~repro.semantics.config.digest_stats` counters:

- an in-process pickle round-trip of an already-digested config costs
  zero new component digests and zero compositions;
- a worker process receiving a digested config over a real
  :mod:`multiprocessing` pipe serves ``stable_digest`` entirely from
  the transported cache (``config_cached`` only — the parallel
  backend's scatter/gather never re-hashes received configs);
- a successor config digests in O(delta): only the components that
  changed are rehashed, everything inherited from the parent is reused.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle

from repro.explore import ExploreOptions, explore
from repro.programs.philosophers import philosophers
from repro.semantics.config import digest_stats, stable_digest


def _sample_configs(n=12):
    """Distinct reachable configurations of a real program (heap-free
    but multi-process, with varied statuses)."""
    result = explore(
        philosophers(3), options=ExploreOptions(policy="stubborn")
    )
    configs = list(result.graph.configs)
    return configs[:: max(1, len(configs) // n)][:n]


def _delta(before, after):
    return {k: after[k] - before[k] for k in before}


def test_roundtrip_costs_no_rehash():
    configs = _sample_configs()
    for c in configs:
        stable_digest(c)  # populate every component + config cache
    before = digest_stats()
    for c in configs:
        r = pickle.loads(pickle.dumps(c))
        assert stable_digest(r) == stable_digest(c)
    d = _delta(before, digest_stats())
    assert d["component_new"] == 0
    assert d["config_composed"] == 0
    assert d["config_cached"] >= len(configs)


def test_successor_digest_is_o_delta():
    """Digesting a successor after its parent re-hashes only the
    components the step changed — the reuse counter dominates."""
    result = explore(
        philosophers(3), options=ExploreOptions(policy="stubborn")
    )
    g = result.graph
    before = digest_stats()
    for c in g.configs:
        stable_digest(c)
    d = _delta(before, digest_stats())
    # philosophers(3): 4 processes per config; successive configs share
    # nearly all of them, so reuse must far exceed fresh hashing
    assert d["component_reused"] > d["component_new"]


def _worker(conn):
    """Receive digested configs, digest them, report the local counter
    delta and the digests themselves."""
    configs = conn.recv()
    before = digest_stats()
    digests = [stable_digest(c) for c in configs]
    conn.send((digests, _delta(before, digest_stats())))
    conn.close()


def test_no_rehash_across_process_boundary():
    configs = _sample_configs()
    parent_digests = [stable_digest(c) for c in configs]

    # spawn, not fork: a forked child inherits the parent's intern table
    # and digest caches, which would make the assertion vacuous — spawn
    # starts from a clean interpreter where *only* the pickled payload
    # can carry the digests across
    ctx = mp.get_context("spawn")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_worker, args=(child,), daemon=True)
    proc.start()
    child.close()
    try:
        parent.send(configs)
        worker_digests, d = parent.recv()
    finally:
        parent.close()
        proc.join(timeout=30)

    assert worker_digests == parent_digests
    assert d["component_new"] == 0, "worker re-hashed a component digest"
    assert d["config_composed"] == 0, "worker re-composed a config digest"
    assert d["config_cached"] == len(configs)
