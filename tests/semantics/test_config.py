"""Configuration structure tests: hashing, canonicity, GC."""

from repro.lang import parse_program
from repro.semantics import (
    Config,
    Frame,
    HeapObj,
    Pointer,
    Process,
    collect_garbage,
    initial_config,
)


def _mk(heap=(), globals_=(0,)):
    root = Process(pid=(0,), frames=(Frame(func="main", pc=0, locals=()),))
    return Config(procs=(root,), globals=tuple(globals_), heap=tuple(heap))


def test_equal_configs_hash_equal():
    a = _mk()
    b = _mk()
    assert a == b and hash(a) == hash(b)


def test_configs_differ_on_globals():
    assert _mk(globals_=(0,)) != _mk(globals_=(1,))


def test_configs_differ_on_fault():
    a = _mk()
    b = Config(procs=a.procs, globals=a.globals, heap=a.heap, fault="boom")
    assert a != b


def test_initial_config_shape():
    prog = parse_program("var g = 3; func main() { var t = 0; g = t; }")
    cfg = initial_config(prog)
    assert cfg.globals == (3,)
    assert cfg.procs[0].pid == (0,)
    assert cfg.procs[0].top.locals == (0,)


def test_fresh_oid_skips_used():
    heap = (HeapObj(oid=("s", 0), cells=(0,)), HeapObj(oid=("s", 2), cells=(0,)))
    cfg = _mk(heap=heap)
    assert cfg.fresh_oid("s") == ("s", 1)
    assert cfg.fresh_oid("other") == ("other", 0)


def test_gc_keeps_reachable_from_global():
    obj = HeapObj(oid=("s", 0), cells=(5,))
    cfg = _mk(heap=(obj,), globals_=(Pointer(("s", 0), 0),))
    assert collect_garbage(cfg).heap == (obj,)


def test_gc_drops_unreachable():
    obj = HeapObj(oid=("s", 0), cells=(5,))
    cfg = _mk(heap=(obj,), globals_=(0,))
    assert collect_garbage(cfg).heap == ()


def test_gc_follows_pointer_chains():
    a = HeapObj(oid=("a", 0), cells=(Pointer(("b", 0), 0),))
    b = HeapObj(oid=("b", 0), cells=(7,))
    cfg = _mk(heap=(a, b), globals_=(Pointer(("a", 0), 0),))
    assert len(collect_garbage(cfg).heap) == 2


def test_gc_keeps_locals_roots():
    obj = HeapObj(oid=("s", 0), cells=(1,))
    root = Process(
        pid=(0,),
        frames=(Frame(func="main", pc=0, locals=(Pointer(("s", 0), 0),)),),
    )
    cfg = Config(procs=(root,), globals=(0,), heap=(obj,))
    assert collect_garbage(cfg).heap == (obj,)


def test_result_store_excludes_process_state():
    # two configs with different pcs but same store have the same result
    p0 = Process(pid=(0,), frames=(Frame(func="main", pc=0, locals=()),))
    p1 = Process(pid=(0,), frames=(Frame(func="main", pc=1, locals=()),))
    a = Config(procs=(p0,), globals=(1,), heap=())
    b = Config(procs=(p1,), globals=(1,), heap=())
    assert a.result_store() == b.result_store()


def test_is_terminated():
    done = Process(pid=(0,), frames=(), status="done")
    cfg = Config(procs=(done,), globals=(), heap=())
    assert cfg.is_terminated and cfg.is_terminal
