"""Value universe tests."""

from repro.semantics.values import (
    GLOBALS_OBJ,
    FuncRef,
    Pointer,
    is_int,
    show_value,
    truthy,
)


def test_truthy_ints():
    assert truthy(1) and truthy(-1)
    assert not truthy(0)


def test_truthy_pointer_and_func():
    assert truthy(Pointer(("s", 0), 0))
    assert truthy(FuncRef("f"))


def test_pointer_equality_structural():
    assert Pointer(("s", 0), 1) == Pointer(("s", 0), 1)
    assert Pointer(("s", 0), 1) != Pointer(("s", 0), 2)
    assert Pointer(("s", 0), 0) != Pointer(("s", 1), 0)


def test_pointer_hashable():
    assert len({Pointer(("s", 0), 0), Pointer(("s", 0), 0)}) == 1


def test_is_int():
    assert is_int(3)
    assert not is_int(Pointer(("s", 0), 0))
    assert not is_int(FuncRef("f"))


def test_show_value_forms():
    assert show_value(3) == "3"
    assert "s" in show_value(Pointer(("s", 0), 0))
    assert "f" in show_value(FuncRef("f"))


def test_globals_obj_distinguished():
    assert GLOBALS_OBJ == ("<globals>", 0)
    assert Pointer(GLOBALS_OBJ, 2).obj == GLOBALS_OBJ
