"""Expression evaluation tests: values, read sets, faults."""

import pytest

from repro.lang import parse_program
from repro.semantics import initial_config, run_program
from repro.util.errors import RuntimeFault


def run_expr(expr_src: str, decls: str = "var g = 7; var h = 0;"):
    """Evaluate an expression by assigning it to a fresh global."""
    src = f"{decls} var out = 0; func main() {{ out = {expr_src}; }}"
    prog = parse_program(src)
    r = run_program(prog)
    assert r.terminated, r.config.fault
    return r.global_value(prog, "out")


def fault_of(body: str, decls: str = "var g = 7;") -> str:
    prog = parse_program(f"{decls} func main() {{ {body} }}")
    r = run_program(prog)
    assert r.faulted
    return r.config.fault


# -- arithmetic ------------------------------------------------------------


def test_arith_basic():
    assert run_expr("1 + 2 * 3") == 7
    assert run_expr("10 - 4") == 6
    assert run_expr("-5 + 2") == -3


def test_division_truncates_toward_zero():
    assert run_expr("7 / 2") == 3
    assert run_expr("-7 / 2") == -3
    assert run_expr("7 / -2") == -3
    assert run_expr("-7 / -2") == 3


def test_modulo_c_semantics():
    assert run_expr("7 % 2") == 1
    assert run_expr("-7 % 2") == -1
    assert run_expr("7 % -2") == 1


def test_div_by_zero_faults():
    assert "div-by-zero" in fault_of("g = 1 / (g - 7);")


def test_mod_by_zero_faults():
    assert "div-by-zero" in fault_of("g = 1 % (g - 7);")


def test_comparisons():
    assert run_expr("3 < 4") == 1
    assert run_expr("4 <= 4") == 1
    assert run_expr("5 > 6") == 0
    assert run_expr("5 >= 6") == 0
    assert run_expr("3 == 3") == 1
    assert run_expr("3 != 3") == 0


def test_logical_values_normalized():
    assert run_expr("2 && 3") == 1
    assert run_expr("0 || 7") == 1
    assert run_expr("0 && 1") == 0


def test_short_circuit_avoids_fault():
    # right arm would divide by zero; short-circuit must skip it
    assert run_expr("0 && (1 / 0)") == 0
    assert run_expr("1 || (1 / 0)") == 1


def test_unary_not_and_neg():
    assert run_expr("!0") == 1
    assert run_expr("!5") == 0
    assert run_expr("- (3 + 4)") == -7


def test_globals_read():
    assert run_expr("g + 1") == 8


# -- pointers ---------------------------------------------------------------


def test_malloc_deref_roundtrip():
    src = """
    var p = 0; var out = 0;
    func main() { p = malloc(2); p[0] = 5; p[1] = 6; out = p[0] + p[1]; }
    """
    prog = parse_program(src)
    r = run_program(prog)
    assert r.global_value(prog, "out") == 11


def test_pointer_arithmetic():
    src = """
    var p = 0; var q = 0; var out = 0;
    func main() { p = malloc(3); q = p + 2; *q = 9; out = p[2]; }
    """
    prog = parse_program(src)
    r = run_program(prog)
    assert r.global_value(prog, "out") == 9


def test_addrof_global_read_write():
    src = """
    var g = 3; var p = 0; var out = 0;
    func main() { p = &g; *p = 10; out = g + *p; }
    """
    prog = parse_program(src)
    r = run_program(prog)
    assert r.global_value(prog, "out") == 20


def test_deref_non_pointer_faults():
    assert "bad-deref" in fault_of("g = *g;")


def test_out_of_bounds_faults():
    assert "bad-deref" in fault_of("var p = 0; p = malloc(1); g = p[3];")


def test_negative_offset_faults():
    assert "bad-deref" in fault_of("var p = 0; p = malloc(1); g = p[-1];")


def test_pointer_equality():
    src = """
    var p = 0; var q = 0; var out = 0;
    func main() { p = malloc(1); q = p; out = (p == q) + (p == p + 1); }
    """
    prog = parse_program(src)
    assert run_program(prog).global_value(prog, "out") == 1


def test_malloc_negative_size_faults():
    assert "bad-alloc" in fault_of("var p = 0; p = malloc(0 - 1);")


def test_type_error_on_pointer_arith():
    assert "type-error" in fault_of("var p = 0; p = malloc(1); g = p * 2;")


# -- read sets ----------------------------------------------------------------


def test_read_sets_recorded():
    from repro.semantics.step import StepOptions, next_infos

    prog = parse_program("var a = 1; var b = 2; var c = 0; func main() { c = a + b; }")
    config = initial_config(prog)
    infos = next_infos(prog, config, StepOptions())
    action = infos[0].action
    assert set(action.reads) == {("g", 0), ("g", 1)}
    assert set(action.writes) == {("g", 2)}


def test_locals_not_in_read_sets():
    from repro.semantics.step import StepOptions, next_infos

    prog = parse_program("var g = 0; func main() { var t = 3; g = t; }")
    config = initial_config(prog)
    infos = next_infos(prog, config, StepOptions())
    # first action: t = 3 (local only)
    assert infos[0].action.reads == ()
    assert infos[0].action.writes == ()


def test_short_circuit_read_set():
    from repro.semantics.step import StepOptions, next_infos

    prog = parse_program(
        "var a = 0; var b = 5; var c = 0; func main() { c = a && b; }"
    )
    config = initial_config(prog)
    action = next_infos(prog, config, StepOptions())[0].action
    assert set(action.reads) == {("g", 0)}  # b never read
