"""Scheduler / single-run interpreter tests."""

import pytest

from repro.lang import parse_program
from repro.programs.paper import deadlock_pair, fig2_shasha_snir
from repro.semantics import run_program


def test_roundrobin_terminates():
    r = run_program(fig2_shasha_snir())
    assert r.terminated and not r.deadlocked


def test_random_seeded_reproducible():
    prog = fig2_shasha_snir()
    a = run_program(prog, scheduler="random", seed=7, keep_trace=True)
    b = run_program(prog, scheduler="random", seed=7, keep_trace=True)
    assert [x.label for x in a.trace] == [x.label for x in b.trace]
    assert a.config == b.config


def test_random_seeds_differ():
    prog = fig2_shasha_snir()
    outcomes = {
        tuple(run_program(prog, scheduler="random", seed=s).config.globals)
        for s in range(40)
    }
    assert len(outcomes) >= 2  # several interleavings actually observed


def test_first_scheduler_deterministic():
    prog = fig2_shasha_snir()
    a = run_program(prog, scheduler="first")
    b = run_program(prog, scheduler="first")
    assert a.config == b.config


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        run_program(fig2_shasha_snir(), scheduler="nope")


def test_deadlock_reported():
    prog = parse_program("var f = 0; func main() { assume(f == 1); }")
    r = run_program(prog)
    assert r.deadlocked and not r.terminated


def test_deadlock_pair_sometimes_deadlocks():
    prog = deadlock_pair()
    seen = {run_program(prog, scheduler="random", seed=s).deadlocked for s in range(60)}
    assert seen == {True, False}


def test_fault_reported():
    prog = parse_program("var g = 0; func main() { g = 1 / g; }")
    r = run_program(prog)
    assert r.faulted and "div-by-zero" in r.config.fault


def test_max_steps_guard():
    prog = parse_program("var g = 0; func main() { while (true) { g = g + 1; } }")
    with pytest.raises(RuntimeError):
        run_program(prog, max_steps=100)


def test_trace_collection():
    prog = parse_program("var g = 0; func main() { s1: g = 1; s2: g = 2; }")
    r = run_program(prog, keep_trace=True)
    assert [a.label for a in r.trace][:2] == ["s1", "s2"]


def test_steps_counted():
    prog = parse_program("var g = 0; func main() { g = 1; }")
    r = run_program(prog)
    assert r.steps == 2  # assign + implicit return
