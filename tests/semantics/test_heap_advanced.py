"""Advanced heap / first-class-function semantics tests."""

import pytest

from repro.lang import parse_program
from repro.semantics import run_program


def final(src, *names):
    prog = parse_program(src)
    r = run_program(prog)
    assert r.terminated, r.config.fault
    return tuple(r.global_value(prog, n) for n in names)


def test_function_values_through_heap():
    src = """
    var table = 0; var r = 0;
    func inc(v) { return v + 1; }
    func dbl(v) { return v * 2; }
    func main() {
        var f = 0;
        t1: table = malloc(2);
        table[0] = inc;
        table[1] = dbl;
        f = table[1];
        r = f(21);
    }
    """
    assert final(src, "r") == (42,)


def test_linked_list_sum():
    src = """
    var head = 0; var total = 0;
    func push(h, v) {
        var node = 0;
        n1: node = malloc(2);
        node[0] = v;
        node[1] = h;
        return node;
    }
    func main() {
        var cur = 0;
        head = push(head, 1);
        head = push(head, 2);
        head = push(head, 3);
        cur = head;
        while (cur != 0) {
            total = total + cur[0];
            cur = cur[1];
        }
    }
    """
    assert final(src, "total") == (6,)


def test_pointer_into_middle_of_object():
    src = """
    var p = 0; var q = 0; var r = 0;
    func main() {
        a1: p = malloc(3);
        p[2] = 9;
        q = p + 1;
        r = q[1];
    }
    """
    assert final(src, "r") == (9,)


def test_aliased_writes_visible():
    src = """
    var p = 0; var q = 0; var r = 0;
    func main() { m: p = malloc(1); q = p; *p = 5; r = *q; }
    """
    assert final(src, "r") == (5,)


def test_object_passed_to_function_mutated():
    src = """
    var p = 0; var r = 0;
    func bump(ptr) { *ptr = *ptr + 1; }
    func main() { m: p = malloc(1); *p = 10; bump(p); bump(p); r = *p; }
    """
    assert final(src, "r") == (12,)


def test_global_pointer_via_addrof_in_function():
    src = """
    var g = 1; var r = 0;
    func write_through(ptr, v) { *ptr = v; }
    func main() { write_through(&g, 7); r = g; }
    """
    assert final(src, "r") == (7,)


def test_two_sites_do_not_alias():
    src = """
    var p = 0; var q = 0; var r = 0;
    func main() {
        m1: p = malloc(1);
        m2: q = malloc(1);
        *p = 1;
        *q = 2;
        r = *p * 10 + *q;
    }
    """
    assert final(src, "r") == (12,)


def test_deep_recursion_with_heap():
    src = """
    var r = 0;
    func build(n) {
        var node = 0;
        if (n == 0) { return 0; }
        m: node = malloc(2);
        node[0] = n;
        node[1] = build(n - 1);
        return node;
    }
    func total(node) {
        var rest = 0;
        if (node == 0) { return 0; }
        rest = total(node[1]);
        return node[0] + rest;
    }
    func main() { var lst = 0; lst = build(6); r = total(lst); }
    """
    assert final(src, "r") == (21,)


def test_shared_heap_across_threads_with_handshake():
    src = """
    var p = 0; var r = 0;
    func main() {
        cobegin
        { m: p = malloc(1); *p = 33; }
        { assume(p != 0); assume(*p != 0); r = *p; }
    }
    """
    assert final(src, "r") == (33,)


def test_dangling_after_gc_not_possible():
    # GC never collects reachable objects: the pointer survives a call
    src = """
    var p = 0; var r = 0;
    func id(x) { return x; }
    func main() { m: p = malloc(1); *p = 4; p = id(p); r = *p; }
    """
    assert final(src, "r") == (4,)
