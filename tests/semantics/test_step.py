"""Atomic-step / transition-system tests."""

import pytest

from repro.lang import parse_program
from repro.semantics import (
    DONE,
    JOINING,
    StepOptions,
    execute,
    initial_config,
    next_infos,
    run_program,
)
from repro.semantics.config import proc_loc


def step_all(prog, config, opts=StepOptions()):
    return next_infos(prog, config, opts)


def first_enabled(prog, config, opts=StepOptions()):
    for ni in step_all(prog, config, opts):
        if ni.enabled:
            return ni
    raise AssertionError("nothing enabled")


def drive(prog, opts=StepOptions(), limit=10_000):
    """Run to completion always picking the first enabled process."""
    config = initial_config(prog, track_procstrings=opts.track_procstrings)
    for _ in range(limit):
        if config.fault is not None or config.is_terminated:
            return config
        infos = [n for n in step_all(prog, config, opts) if n.enabled]
        if not infos:
            return config
        config = infos[0].succ
    raise AssertionError("did not terminate")


# -- sequential control ------------------------------------------------------


def test_sequence_runs_to_done():
    prog = parse_program("var g = 0; func main() { g = 1; g = g + 1; }")
    final = drive(prog)
    assert final.is_terminated
    assert final.globals == (2,)


def test_branch_then_else():
    prog = parse_program(
        "var g = 5; var r = 0; func main() { if (g > 3) { r = 1; } else { r = 2; } }"
    )
    assert drive(prog).globals == (5, 1)


def test_while_loop_terminates():
    prog = parse_program(
        "var g = 0; func main() { while (g < 5) { g = g + 1; } }"
    )
    assert drive(prog).globals == (5,)


def test_call_return_value_to_global():
    prog = parse_program(
        "var r = 0; func f(a) { return a + 1; } func main() { r = f(41); }"
    )
    assert drive(prog).globals == (42,)


def test_call_return_value_to_local():
    prog = parse_program(
        """
        var r = 0;
        func f() { return 10; }
        func main() { var t = 0; t = f(); r = t + 1; }
        """
    )
    assert drive(prog).globals == (11,)


def test_call_return_into_heap_cell():
    prog = parse_program(
        """
        var p = 0; var r = 0;
        func f() { return 7; }
        func main() { p = malloc(1); *p = f(); r = *p; }
        """
    )
    assert drive(prog).globals[1] == 7


def test_recursion():
    prog = parse_program(
        """
        var r = 0;
        func fact(n) { var t = 0; if (n <= 1) { return 1; } t = fact(n - 1); return n * t; }
        func main() { r = fact(5); }
        """
    )
    assert drive(prog).globals == (120,)


def test_first_class_function_dispatch():
    prog = parse_program(
        """
        var r = 0; var which = 1;
        func inc(v) { return v + 1; }
        func dbl(v) { return v * 2; }
        func main() { var f = 0; if (which == 0) { f = inc; } else { f = dbl; } r = f(10); }
        """
    )
    assert drive(prog).globals == (20, 1)


def test_dynamic_call_arity_fault():
    prog = parse_program(
        "func f(a) { } func main() { var g = 0; g = f; g(); }"
    )
    final = drive(prog)
    assert final.fault is not None and "bad-call" in final.fault


def test_call_non_function_faults():
    prog = parse_program("var g = 3; func main() { g(); }")
    final = drive(prog)
    assert final.fault is not None


# -- cobegin / join -----------------------------------------------------------


def test_cobegin_spawns_children():
    prog = parse_program("var g = 0; func main() { cobegin { g = 1; } { g = 2; } }")
    config = initial_config(prog)
    ni = first_enabled(prog, config)
    succ = ni.succ
    assert len(succ.procs) == 3
    parent = succ.proc((0,))
    assert parent.status == JOINING
    assert parent.children == ((0, 0), (0, 1))
    assert set(ni.action.writes) == {proc_loc((0, 0)), proc_loc((0, 1))}


def test_join_waits_for_all_children():
    prog = parse_program("var g = 0; func main() { cobegin { g = 1; } { g = 2; } }")
    config = first_enabled(prog, initial_config(prog)).succ
    # parent disabled while children run
    infos = {n.proc.pid: n for n in step_all(prog, config)}
    assert not infos[(0,)].enabled
    assert infos[(0,)].blocked_children == ((0, 0), (0, 1))


def test_join_removes_children():
    prog = parse_program("var g = 0; func main() { cobegin { g = 1; } { g = 2; } }")
    final = drive(prog)
    assert final.is_terminated
    assert len(final.procs) == 1  # only the root remains


def test_nested_cobegin_pids():
    prog = parse_program(
        "var g = 0; func main() { cobegin { cobegin { g = 1; } { g = 2; } } { g = 3; } }"
    )
    final = drive(prog)
    assert final.is_terminated


def test_threadend_writes_own_proc_loc():
    prog = parse_program("var g = 0; func main() { cobegin { skip; } { skip; } }")
    config = first_enabled(prog, initial_config(prog)).succ
    # run child (0,0)'s skip then its threadend
    child = next(n for n in step_all(prog, config) if n.proc.pid == (0, 0))
    config = child.succ
    child = next(n for n in step_all(prog, config) if n.proc.pid == (0, 0))
    assert proc_loc((0, 0)) in child.action.writes
    assert child.succ.proc((0, 0)).status == DONE


# -- synchronization -----------------------------------------------------------


def test_assume_blocks_until_true():
    prog = parse_program(
        """
        var f = 0; var r = 0;
        func main() {
            cobegin { assume(f == 1); r = 1; } { f = 1; }
        }
        """
    )
    final = drive(prog)
    assert final.is_terminated
    assert final.globals == (1, 1)


def test_assume_nes_reports_guard_reads():
    prog = parse_program(
        "var f = 0; func main() { cobegin { assume(f == 1); } { f = 1; } }"
    )
    config = first_enabled(prog, initial_config(prog)).succ
    blocked = next(n for n in step_all(prog, config) if not n.enabled and n.proc.pid == (0, 0))
    assert ("g", 0) in blocked.nes


def test_acquire_release_mutual_exclusion():
    from repro.programs.paper import mutex_counter

    prog = mutex_counter()
    final = drive(prog)
    assert final.is_terminated
    assert final.globals[prog.global_index("count")] == 2


def test_acquire_blocked_when_held():
    prog = parse_program("var l = 1; func main() { acquire(l); }")
    config = initial_config(prog)
    infos = step_all(prog, config)
    assert not infos[0].enabled
    assert infos[0].nes == (("g", 0),)


def test_assert_failure_faults():
    prog = parse_program("var g = 0; func main() { assert(g == 1); }")
    final = drive(prog)
    assert final.fault is not None and "assert" in final.fault


def test_assert_success_continues():
    prog = parse_program("var g = 1; func main() { assert(g == 1); g = 2; }")
    assert drive(prog).globals == (2,)


def test_deadlock_detected_as_no_enabled():
    prog = parse_program("var f = 0; func main() { assume(f == 1); }")
    config = initial_config(prog)
    infos = [n for n in step_all(prog, config) if n.enabled]
    assert infos == []


# -- instrumentation -------------------------------------------------------------


def test_procstrings_tracked_when_enabled():
    prog = parse_program(
        "var r = 0; func f() { return 1; } func main() { r = f(); }"
    )
    opts = StepOptions(track_procstrings=True)
    config = initial_config(prog, track_procstrings=True)
    assert config.procs[0].ps == (("+", "main", "<entry>"),)
    ni = first_enabled(prog, config, opts)  # the call
    assert ni.action.entered == "f"
    inner = ni.succ.procs[0]
    assert inner.ps[-1][1] == "f"


def test_birthdates_recorded():
    prog = parse_program("var p = 0; func main() { m1: p = malloc(1); }")
    opts = StepOptions(track_procstrings=True, gc=False)
    config = initial_config(prog, track_procstrings=True)
    ni = first_enabled(prog, config, opts)
    obj = ni.succ.heap[0]
    assert obj.oid == ("m1", 0)
    assert obj.birth_pid == (0,)
    assert obj.birth_ps == (("+", "main", "<entry>"),)


def test_gc_collects_dead_objects():
    prog = parse_program(
        "var p = 0; func main() { p = malloc(1); p = 0; }"
    )
    final = drive(prog, StepOptions(gc=True))
    assert final.heap == ()
    final = drive(prog, StepOptions(gc=False))
    assert len(final.heap) == 1


def test_canonical_oids_merge_interleavings():
    # two threads each allocate at their own site; oid independent of order
    prog = parse_program(
        """
        var p = 0; var q = 0;
        func main() { cobegin { a1: p = malloc(1); } { b1: q = malloc(1); } }
        """
    )
    from repro.explore import explore

    r = explore(prog, "full", options=None)
    # all terminal configs identical (same oids regardless of order)
    stores = {c.result_store() for cid, c in enumerate(r.graph.configs)
              if r.graph.terminal.get(cid) == "terminated"}
    assert len(stores) == 1


def test_depth_reported_in_action():
    prog = parse_program("var r = 0; func f() { r = 1; } func main() { f(); }")
    config = initial_config(prog)
    ni = first_enabled(prog, config)  # the call itself, depth 1
    assert ni.action.depth == 1
    ni2 = first_enabled(prog, ni.succ)  # r = 1 inside f, depth 2
    assert ni2.action.depth == 2
    assert ni2.action.stack == ("main", "f")
