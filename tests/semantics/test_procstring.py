"""Procedure-string tests ([Har89] instrumentation)."""

from repro.semantics import procstring as PS


def test_push_enter():
    ps = PS.push((), PS.enter_proc("f", "c1"))
    assert ps == (("+", "f", "c1"),)


def test_exit_cancels_matching_enter():
    ps = PS.push((), PS.enter_proc("f", "c1"))
    ps = PS.push(ps, PS.exit_proc("f", "c1"))
    assert ps == ()


def test_exit_does_not_cancel_mismatched_site():
    ps = PS.push((), PS.enter_proc("f", "c1"))
    ps = PS.push(ps, PS.exit_proc("f", "c2"))
    assert len(ps) == 2


def test_nested_enters_cancel_inside_out():
    ps = ()
    ps = PS.push(ps, PS.enter_proc("f", "c1"))
    ps = PS.push(ps, PS.enter_proc("g", "c2"))
    ps = PS.push(ps, PS.exit_proc("g", "c2"))
    ps = PS.push(ps, PS.exit_proc("f", "c1"))
    assert ps == ()


def test_thread_ops():
    ps = PS.push((), PS.enter_thread(0, "cb"))
    assert ps == (("[", "0", "cb"),)
    ps = PS.push(ps, PS.exit_thread(0, "cb"))
    assert ps == ()


def test_concat():
    ops = [PS.enter_proc("f", "a"), PS.enter_proc("g", "b"), PS.exit_proc("g", "b")]
    assert PS.concat((), ops) == (("+", "f", "a"),)


def test_is_prefix():
    p = (("+", "main", "<entry>"),)
    q = p + (("+", "f", "c1"),)
    assert PS.is_prefix(p, q)
    assert not PS.is_prefix(q, p)
    assert PS.is_prefix(p, p)


def test_common_prefix():
    a = (("+", "m", "e"), ("+", "f", "1"))
    b = (("+", "m", "e"), ("+", "g", "2"))
    assert PS.common_prefix(a, b) == (("+", "m", "e"),)


def test_depth():
    assert PS.depth(()) == 0
    assert PS.depth((("+", "f", "c"), ("[", "0", "cb"))) == 2


def test_pretty_root():
    assert PS.pretty(()) == "<root>"


def test_pretty_path():
    ps = (("+", "main", "<entry>"), ("[", "1", "s5"), ("+", "f", "s7"))
    text = PS.pretty(ps)
    assert "main" in text and "branch 1" in text and "f" in text
