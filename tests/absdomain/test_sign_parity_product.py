"""Sign, parity, and product domain unit tests."""

from repro.absdomain.parity import EVEN, ODD, ParityDomain
from repro.absdomain.product import ProductDomain
from repro.absdomain.sign import NEG, POS, ZERO, SignDomain
from repro.absdomain.interval import IntervalDomain

S = SignDomain()
P = ParityDomain()


# -- signs --------------------------------------------------------------------


def test_sign_abstract():
    assert S.abstract(-3) == frozenset((NEG,))
    assert S.abstract(0) == frozenset((ZERO,))
    assert S.abstract(7) == frozenset((POS,))


def test_sign_add_table():
    pos, neg = S.abstract(1), S.abstract(-1)
    assert S.binop("+", pos, pos) == frozenset((POS,))
    assert S.binop("+", pos, neg) == S.top
    assert S.binop("+", S.abstract(0), pos) == frozenset((POS,))


def test_sign_mul_table():
    pos, neg, zero = S.abstract(1), S.abstract(-1), S.abstract(0)
    assert S.binop("*", neg, neg) == frozenset((POS,))
    assert S.binop("*", neg, pos) == frozenset((NEG,))
    assert S.binop("*", zero, S.top) == frozenset((ZERO,))


def test_sign_neg():
    assert S.unop("-", S.abstract(5)) == frozenset((NEG,))
    assert S.unop("-", S.top) == S.top


def test_sign_division_includes_zero():
    # 1 / 2 == 0: positive/positive may truncate to zero
    r = S.binop("/", S.abstract(1), S.abstract(2))
    assert ZERO in r and POS in r


def test_sign_compare_definite():
    assert S.binop("<", S.abstract(-1), S.abstract(1)) == S.abstract(1)
    assert S.binop(">", S.abstract(-1), S.abstract(1)) == S.abstract(0)


def test_sign_compare_unknown():
    r = S.binop("<", S.abstract(1), S.abstract(2))  # both positive
    assert S.contains(r, 0) and S.contains(r, 1)


def test_sign_truth():
    assert S.truth(S.abstract(0)) == (False, True)
    assert S.truth(S.abstract(3)) == (True, False)
    assert S.truth(S.top) == (True, True)


def test_sign_soundness_samples():
    for x in (-5, -1, 0, 1, 5):
        for y in (-3, 0, 2):
            for op in ("+", "-", "*"):
                res = eval(f"{x} {op} {y}")
                assert S.contains(S.binop(op, S.abstract(x), S.abstract(y)), res)


# -- parity -------------------------------------------------------------------


def test_parity_abstract():
    assert P.abstract(4) == frozenset((EVEN,))
    assert P.abstract(-3) == frozenset((ODD,))


def test_parity_add():
    even, odd = P.abstract(0), P.abstract(1)
    assert P.binop("+", odd, odd) == frozenset((EVEN,))
    assert P.binop("+", odd, even) == frozenset((ODD,))


def test_parity_mul():
    even, odd = P.abstract(0), P.abstract(1)
    assert P.binop("*", odd, odd) == frozenset((ODD,))
    assert P.binop("*", even, P.top) == frozenset((EVEN,))


def test_parity_refutes_equality():
    even, odd = P.abstract(2), P.abstract(3)
    assert P.binop("==", even, odd) == P.abstract(0)
    assert P.binop("!=", even, odd) == P.abstract(1)


def test_parity_truth():
    assert P.truth(P.abstract(0)) == (True, True)  # even: 0 or 2
    assert P.truth(P.abstract(1)) == (True, False)  # odd never zero


def test_parity_soundness_samples():
    for x in range(-4, 5):
        for y in range(-3, 4):
            for op in ("+", "-", "*"):
                res = eval(f"{x} {op} ({y})")
                assert P.contains(P.binop(op, P.abstract(x), P.abstract(y)), res)


# -- product ------------------------------------------------------------------


def test_product_componentwise():
    D = ProductDomain(IntervalDomain(), ParityDomain())
    a = D.abstract(4)
    assert D.contains(a, 4)
    assert not D.contains(a, 5)  # parity rules 5 out even if interval grew
    grown = D.join(a, D.abstract(6))
    assert D.contains(grown, 4) and D.contains(grown, 6)
    assert not D.contains(grown, 5)  # interval allows 5, parity refutes


def test_product_binop():
    D = ProductDomain(IntervalDomain(), ParityDomain())
    r = D.binop("+", D.abstract(2), D.abstract(4))
    assert D.contains(r, 6)
    assert not D.contains(r, 7)


def test_product_truth_conjunctive():
    D = ProductDomain(IntervalDomain(), ParityDomain())
    odd_interval = (D.factors[0].make(1, 3), D.factors[1].abstract(1))
    may_t, may_f = D.truth(odd_interval)
    assert may_t and not may_f  # interval excludes 0? no — parity does


def test_product_requires_two_factors():
    import pytest

    with pytest.raises(ValueError):
        ProductDomain(IntervalDomain())
