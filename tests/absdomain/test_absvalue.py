"""Abstract-value (num × ptrs × funcs) tests."""

from repro.absdomain.absvalue import AbsValueDomain
from repro.absdomain.flat import FlatConstDomain
from repro.semantics.values import GLOBALS_OBJ, FuncRef, Pointer

D = AbsValueDomain(FlatConstDomain())


def test_abstract_concrete_values():
    assert D.contains(D.abstract(5), 5)
    assert D.contains(D.abstract(Pointer(("m1", 0), 0)), Pointer(("m1", 3), 1))
    assert not D.contains(D.abstract(Pointer(("m1", 0), 0)), Pointer(("m2", 0), 0))
    assert D.contains(D.abstract(FuncRef("f")), FuncRef("f"))
    assert not D.contains(D.abstract(FuncRef("f")), FuncRef("g"))


def test_globals_pointer_abstracted():
    av = D.abstract(Pointer(GLOBALS_OBJ, 2))
    assert ("gobj",) in av[1]


def test_join_unions_components():
    j = D.join(D.const(1), D.ptr_val((("site", "a"),)))
    assert D.contains(j, 1)
    assert D.contains(j, Pointer(("a", 0), 0))


def test_leq():
    assert D.leq(D.bottom, D.const(1))
    assert D.leq(D.const(1), D.join(D.const(1), D.const(2)))
    assert not D.leq(D.ptr_val((("site", "a"),)), D.const(1))


def test_arith_on_numbers():
    r = D.binop("+", D.const(2), D.const(3))
    assert D.contains(r, 5) and not D.contains(r, 6)


def test_pointer_arith_keeps_targets():
    p = D.ptr_val((("site", "a"),))
    r = D.binop("+", p, D.const(1))
    assert D.contains(r, Pointer(("a", 0), 1))


def test_pointer_comparison_unknown():
    p = D.ptr_val((("site", "a"),))
    r = D.binop("==", p, p)
    assert D.contains(r, 0) and D.contains(r, 1)


def test_truth_pointer_is_true():
    may_t, may_f = D.truth(D.ptr_val((("site", "a"),)))
    assert may_t and not may_f


def test_truth_mixed():
    mixed = D.join(D.const(0), D.ptr_val((("site", "a"),)))
    assert D.truth(mixed) == (True, True)


def test_logical_ops():
    r = D.binop("&&", D.const(1), D.const(1))
    assert D.contains(r, 1) and not D.contains(r, 0)
    r = D.binop("||", D.const(0), D.const(0))
    assert D.contains(r, 0) and not D.contains(r, 1)


def test_not():
    r = D.unop("!", D.const(0))
    assert D.contains(r, 1) and not D.contains(r, 0)
