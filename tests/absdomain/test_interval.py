"""Interval domain unit tests."""

from repro.absdomain.interval import BOT, TOP, IntervalDomain

D = IntervalDomain()


def iv(lo, hi):
    return D.make(lo, hi)


def test_make_normalizes_empty():
    assert iv(3, 2) == BOT


def test_order():
    assert D.leq(iv(1, 2), iv(0, 3))
    assert not D.leq(iv(0, 3), iv(1, 2))
    assert D.leq(BOT, iv(5, 5))
    assert D.leq(iv(1, 2), TOP)
    assert D.leq(iv(0, None), TOP)
    assert not D.leq(TOP, iv(0, None))


def test_join_hull():
    assert D.join(iv(0, 1), iv(5, 6)) == iv(0, 6)
    assert D.join(iv(0, None), iv(-3, 2)) == iv(-3, None)
    assert D.join(BOT, iv(1, 1)) == iv(1, 1)


def test_meet_intersection():
    assert D.meet(iv(0, 5), iv(3, 9)) == iv(3, 5)
    assert D.meet(iv(0, 1), iv(3, 4)) == BOT
    assert D.meet(TOP, iv(2, 3)) == iv(2, 3)


def test_widen_unstable_bounds_to_infinity():
    assert D.widen(iv(0, 1), iv(0, 5)) == iv(0, None)
    assert D.widen(iv(0, 1), iv(-2, 1)) == iv(None, 1)
    assert D.widen(iv(0, 1), iv(0, 1)) == iv(0, 1)
    assert D.widen(BOT, iv(1, 2)) == iv(1, 2)


def test_widening_stabilizes_chains():
    x = D.abstract(0)
    for i in range(1, 100):
        nxt = D.join(x, D.abstract(i))
        x2 = D.widen(x, nxt)
        if x2 == x:
            break
        x = x2
    else:
        raise AssertionError("widening failed to stabilize")
    assert D.contains(x, 10**9)


def test_narrow_refines_infinite_bounds():
    assert D.narrow(iv(0, None), iv(0, 10)) == iv(0, 10)
    assert D.narrow(iv(0, 10), iv(2, 5)) == iv(0, 10)


def test_add_sub():
    assert D.binop("+", iv(1, 2), iv(10, 20)) == iv(11, 22)
    assert D.binop("-", iv(1, 2), iv(10, 20)) == iv(-19, -8)
    assert D.binop("+", iv(0, None), iv(1, 1)) == iv(1, None)


def test_mul_signs():
    assert D.binop("*", iv(-2, 3), iv(4, 5)) == iv(-10, 15)
    assert D.binop("*", iv(-2, -1), iv(-3, -2)) == iv(2, 6)


def test_div_by_constant():
    assert D.binop("/", iv(4, 9), iv(2, 2)) == iv(2, 4)
    assert D.binop("/", iv(-7, 7), iv(2, 2)) == iv(-3, 3)


def test_comparisons_definite():
    assert D.binop("<", iv(0, 1), iv(5, 9)) == D.abstract(1)
    assert D.binop("<", iv(5, 9), iv(0, 1)) == D.abstract(0)
    assert D.binop("==", iv(3, 3), iv(3, 3)) == D.abstract(1)
    assert D.binop("==", iv(0, 1), iv(5, 6)) == D.abstract(0)


def test_comparisons_unknown_are_boolean():
    r = D.binop("<", iv(0, 9), iv(5, 6))
    assert D.contains(r, 0) and D.contains(r, 1) and not D.contains(r, 2)


def test_truth():
    assert D.truth(iv(1, 5)) == (True, False)
    assert D.truth(iv(0, 0)) == (False, True)
    assert D.truth(iv(-1, 1)) == (True, True)
    assert D.truth(BOT) == (False, False)


def test_unop_neg():
    assert D.unop("-", iv(1, 3)) == iv(-3, -1)
    assert D.unop("-", iv(0, None)) == iv(None, 0)


def test_contains():
    assert D.contains(iv(None, 5), -1000)
    assert not D.contains(iv(None, 5), 6)
    assert D.contains(TOP, 0)
