"""k-bounded set domain unit tests."""

import pytest

from repro.absdomain.kset import TOP, KSetDomain

D = KSetDomain(3)


def s(*xs):
    return frozenset(xs)


def test_join_keeps_small_sets():
    assert D.join(D.abstract(0), D.abstract(1)) == s(0, 1)


def test_join_saturates_beyond_k():
    a = D.abstract_all([1, 2, 3])
    assert D.join(a, D.abstract(4)) == TOP


def test_order():
    assert D.leq(s(1), s(1, 2))
    assert not D.leq(s(1, 3), s(1, 2))
    assert D.leq(s(1, 2, 3), TOP)
    assert not D.leq(TOP, s(1))
    assert D.leq(D.bottom, s(5))


def test_meet():
    assert D.meet(s(1, 2), s(2, 3)) == s(2)
    assert D.meet(TOP, s(7)) == s(7)
    assert D.meet(s(1), s(2)) == D.bottom


def test_exact_binop():
    assert D.binop("+", s(1, 2), s(10)) == s(11, 12)
    assert D.binop("*", s(2), s(3)) == s(6)
    assert D.binop("<", s(1), s(2)) == s(1)
    assert D.binop("==", s(0, 1), s(1)) == s(0, 1)


def test_binop_saturation():
    a = D.abstract_all([1, 2, 3])
    b = D.abstract_all([10, 20])
    assert D.binop("+", a, b) == TOP  # six results > k


def test_faulting_combo_goes_top():
    assert D.binop("/", s(1), s(0, 2)) == TOP


def test_truth():
    assert D.truth(s(0)) == (False, True)
    assert D.truth(s(1, 2)) == (True, False)
    assert D.truth(s(0, 5)) == (True, True)
    assert D.truth(TOP) == (True, True)
    assert D.truth(D.bottom) == (False, False)


def test_refine_filters_members():
    assert D.refine(s(0, 1, 2), "!=", 1) == s(0, 2)
    assert D.refine(s(0, 1, 2), ">", 0) == s(1, 2)
    assert D.refine(s(0, 1), "==", 1) == s(1)
    assert D.refine(TOP, "==", 5) == s(5)


def test_unop():
    assert D.unop("-", s(1, 2)) == s(-1, -2)
    assert D.unop("!", s(0, 3)) == s(0, 1)


def test_k_validation():
    with pytest.raises(ValueError):
        KSetDomain(0)


def test_precision_beats_flat_on_racy_flag():
    from repro.absdomain import AbsValueDomain
    from repro.abstraction import taylor_explore
    from repro.lang import parse_program

    # after the if the two paths merge with g ∈ {0, 1}: flat joins to
    # ⊤ and warns; kset keeps the set and *verifies* the assert
    prog = parse_program(
        """
        var c = 0; var g = 0;
        func main() {
            cobegin { c = 1; }
            {
                if (c == 1) { g = 1; } else { g = 0; }
                a1: assert(g != 2);
            }
        }
        """
    )
    folded = taylor_explore(prog, AbsValueDomain(KSetDomain(3)))
    assert not any("a1" in w for w in folded.warnings)
    from repro.absdomain import FlatConstDomain

    folded_flat = taylor_explore(prog, AbsValueDomain(FlatConstDomain()))
    assert any("a1" in w for w in folded_flat.warnings)  # flat can't tell
