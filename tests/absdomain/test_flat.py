"""Flat constant domain unit tests."""

from repro.absdomain.flat import BOT, TOP, FlatConstDomain

D = FlatConstDomain()


def test_order():
    c = D.abstract(3)
    assert D.leq(BOT, c) and D.leq(c, TOP) and D.leq(BOT, TOP)
    assert not D.leq(c, D.abstract(4))
    assert D.leq(c, c)


def test_join():
    assert D.join(D.abstract(3), D.abstract(3)) == D.abstract(3)
    assert D.join(D.abstract(3), D.abstract(4)) == TOP
    assert D.join(BOT, D.abstract(5)) == D.abstract(5)


def test_meet():
    assert D.meet(D.abstract(3), D.abstract(3)) == D.abstract(3)
    assert D.meet(D.abstract(3), D.abstract(4)) == BOT
    assert D.meet(TOP, D.abstract(5)) == D.abstract(5)


def test_contains():
    assert D.contains(D.abstract(3), 3)
    assert not D.contains(D.abstract(3), 4)
    assert D.contains(TOP, 123) and not D.contains(BOT, 0)


def test_binop_exact_on_constants():
    assert D.binop("+", D.abstract(2), D.abstract(3)) == D.abstract(5)
    assert D.binop("*", D.abstract(2), D.abstract(3)) == D.abstract(6)
    assert D.binop("<", D.abstract(2), D.abstract(3)) == D.abstract(1)


def test_binop_strict_on_bottom():
    assert D.binop("+", BOT, D.abstract(1)) == BOT


def test_binop_top_propagates():
    assert D.binop("+", TOP, D.abstract(1)) == TOP


def test_division_fault_goes_top():
    assert D.binop("/", D.abstract(1), D.abstract(0)) == TOP


def test_div_matches_c_semantics():
    assert D.binop("/", D.abstract(-7), D.abstract(2)) == D.abstract(-3)
    assert D.binop("%", D.abstract(-7), D.abstract(2)) == D.abstract(-1)


def test_unop():
    assert D.unop("-", D.abstract(3)) == D.abstract(-3)
    assert D.unop("!", D.abstract(0)) == D.abstract(1)
    assert D.unop("!", D.abstract(7)) == D.abstract(0)


def test_truth():
    assert D.truth(D.abstract(0)) == (False, True)
    assert D.truth(D.abstract(2)) == (True, False)
    assert D.truth(TOP) == (True, True)
    assert D.truth(BOT) == (False, False)


def test_value_of():
    assert D.value_of(D.abstract(9)) == 9
    assert D.value_of(TOP) is None and D.value_of(BOT) is None
