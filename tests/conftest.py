"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.explore import ExploreOptions, explore
from repro.lang import parse_program
from repro.semantics import StepOptions


@pytest.fixture(scope="session")
def fig2():
    from repro.programs import paper

    return paper.fig2_shasha_snir()


@pytest.fixture(scope="session")
def fig5():
    from repro.programs import paper

    return paper.fig5_locality()


@pytest.fixture(scope="session")
def example8():
    from repro.programs import paper

    return paper.example8_pointers()


@pytest.fixture(scope="session")
def example15():
    from repro.programs import paper

    return paper.example15_calls()


@pytest.fixture(scope="session")
def mutex_counter():
    from repro.programs import paper

    return paper.mutex_counter()


def compile_src(src: str):
    """Helper: parse+compile a snippet."""
    return parse_program(src)


def explore_analysis(program, **kw):
    """Full exploration with instrumentation on (gc off) for analyses."""
    opts = ExploreOptions(
        policy="full",
        step=StepOptions(gc=False, track_procstrings=True),
        **kw,
    )
    return explore(program, options=opts)


@pytest.fixture
def analysis_result():
    return explore_analysis
