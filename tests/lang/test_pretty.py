"""Pretty-printer round-trip tests: parse(pretty(ast)) ≡ ast."""

import dataclasses

import pytest

from repro.lang import ast_nodes as A
from repro.lang.parser import parse
from repro.lang.pretty import pretty_expr, pretty_program
from repro.programs.corpus import CORPUS


def _strip_positions(node):
    """Structural comparison modulo source positions."""
    if isinstance(node, A.ProgramAST):
        return (
            tuple(_strip_positions(g) for g in node.globals),
            tuple(_strip_positions(f) for f in node.funcs),
        )
    if isinstance(node, A.FuncDef):
        return (
            "func",
            node.name,
            node.params,
            tuple(_strip_positions(s) for s in node.body),
        )
    if dataclasses.is_dataclass(node):
        items = []
        for f in dataclasses.fields(node):
            if f.name == "line":
                continue
            items.append((f.name, _strip_positions(getattr(node, f.name))))
        return (type(node).__name__, tuple(items))
    if isinstance(node, tuple):
        return tuple(_strip_positions(x) for x in node)
    return node


SOURCES = {
    "simple": "var A = 1;\nfunc main() { A = A + 2; }",
    "labels": "var A = 0;\nfunc main() { s1: A = 1; s2: skip; }",
    "control": """
        var A = 0;
        func main() {
            if (A == 0) { A = 1; } else { A = 2; }
            while (A < 10) { A = A + 1; }
        }
    """,
    "parallel": """
        var A = 0; var B = 0;
        func main() {
            cobegin { A = 1; } { B = 2; } { skip; }
        }
    """,
    "pointers": """
        var p = 0;
        func main() {
            p = malloc(3);
            p[1] = 7;
            *p = p[1] + 1;
        }
    """,
    "calls": """
        var r = 0;
        func f(a, b) { return a * b; }
        func main() { var t = 0; r = f(2, 3); t = f(t, r); }
    """,
    "sync": """
        var l = 0; var x = 0;
        func main() {
            cobegin
            { acquire(l); x = x + 1; release(l); }
            { assume(x == 1); assert(x >= 1); }
        }
    """,
    "firstclass": """
        var r = 0;
        func inc(v) { return v + 1; }
        func main() { var f = 0; f = inc; r = f(1); }
    """,
}


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_roundtrip_sources(name):
    ast = parse(SOURCES[name])
    printed = pretty_program(ast)
    reparsed = parse(printed)
    assert _strip_positions(ast) == _strip_positions(reparsed)


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_roundtrip_corpus(name):
    prog = CORPUS[name]()
    assert prog.source is not None
    ast = parse(prog.source)
    printed = pretty_program(ast)
    assert _strip_positions(parse(printed)) == _strip_positions(ast)


@pytest.mark.parametrize(
    "src",
    [
        "1 + 2 * 3",
        "(1 + 2) * 3",
        "1 - 2 - 3",
        "1 - (2 - 3)",
        "a && b || c && d",
        "(a || b) && c",
        "-x + !y",
        "*p + q[3]",
        "&g == p",
        "a < b == (c > d)",
    ],
)
def test_expr_roundtrip(src):
    def parse_expr(text):
        prog = parse(f"func main() {{ x = {text}; }}")
        return prog.funcs[0].body[0].expr

    ast = parse_expr(src)
    assert _strip_positions(parse_expr(pretty_expr(ast))) == _strip_positions(ast)


def test_minimal_parens():
    def parse_expr(text):
        prog = parse(f"func main() {{ x = {text}; }}")
        return prog.funcs[0].body[0].expr

    assert pretty_expr(parse_expr("1 + 2 * 3")) == "1 + 2 * 3"
    assert pretty_expr(parse_expr("(1 + 2) * 3")) == "(1 + 2) * 3"
