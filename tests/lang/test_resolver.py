"""Resolver (scoping) tests — especially the cobegin thread boundary."""

import pytest

from repro.lang import parse_program
from repro.util.errors import ResolveError


def test_undeclared_name_rejected():
    with pytest.raises(ResolveError):
        parse_program("func main() { x = 1; }")


def test_global_visible_in_function():
    parse_program("var g = 0; func main() { g = 1; }")


def test_param_is_local():
    parse_program("var r = 0; func f(a) { return a; } func main() { r = f(1); }")


def test_local_shadowing_global():
    prog = parse_program(
        "var x = 5; func main() { var x = 1; x = x + 1; }"
    )
    # the assignment targets the local slot, not the global
    fc = prog.funcs["main"]
    from repro.lang.instructions import IAssign, LLocal

    assigns = [i for i in fc.instrs if isinstance(i, IAssign)]
    assert all(isinstance(a.target, LLocal) for a in assigns)


def test_duplicate_local_same_scope_rejected():
    with pytest.raises(ResolveError):
        parse_program("func main() { var x = 1; var x = 2; }")


def test_shadowing_in_nested_block_allowed():
    parse_program("func main() { var x = 1; if (x) { var x = 2; x = 3; } }")


def test_duplicate_global_rejected():
    with pytest.raises(ResolveError):
        parse_program("var g = 0; var g = 1; func main() { }")


def test_duplicate_function_rejected():
    with pytest.raises(ResolveError):
        parse_program("func f() { } func f() { } func main() { }")


def test_global_and_function_name_clash_rejected():
    with pytest.raises(ResolveError):
        parse_program("var f = 0; func f() { } func main() { }")


def test_main_required():
    with pytest.raises(ResolveError):
        parse_program("func notmain() { }")


def test_main_with_params_rejected():
    with pytest.raises(ResolveError):
        parse_program("func main(a) { }")


def test_branch_cannot_touch_enclosing_local():
    with pytest.raises(ResolveError) as exc:
        parse_program(
            "func main() { var t = 0; cobegin { t = 1; } { skip; } }"
        )
    assert "cobegin" in str(exc.value)


def test_branch_can_touch_global():
    parse_program("var g = 0; func main() { cobegin { g = 1; } { g = 2; } }")


def test_branch_own_locals_fine():
    parse_program(
        "func main() { cobegin { var t = 0; t = 1; } { var t = 5; t = 2; } }"
    )


def test_nested_branch_cannot_reach_outer_branch_local():
    with pytest.raises(ResolveError):
        parse_program(
            """
            func main() {
                cobegin {
                    var t = 0;
                    cobegin { t = 1; } { skip; }
                } { skip; }
            }
            """
        )


def test_function_called_from_branch_uses_own_locals():
    parse_program(
        """
        var g = 0;
        func f() { var t = 1; g = t; }
        func main() { cobegin { f(); } { f(); } }
        """
    )


def test_addrof_local_rejected():
    with pytest.raises(ResolveError):
        parse_program("var p = 0; func main() { var t = 0; p = &t; }")


def test_addrof_global_ok():
    parse_program("var g = 0; var p = 0; func main() { p = &g; }")


def test_acquire_requires_global():
    with pytest.raises(ResolveError):
        parse_program("func main() { var l = 0; acquire(l); }")


def test_global_initializer_must_be_constant():
    with pytest.raises(ResolveError):
        parse_program("var a = 0; var b = a + 1; func main() { }")


def test_constant_folded_initializer():
    prog = parse_program("var a = 2 * 3 + 1; func main() { }")
    assert prog.global_init[0] == 7
