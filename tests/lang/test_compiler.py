"""Compiler (AST → instruction IR) tests."""

import pytest

from repro.lang import parse_program
from repro.lang.instructions import (
    IAlloc,
    IAssign,
    IBranch,
    ICall,
    ICobegin,
    IJump,
    IReturn,
    IThreadEnd,
)
from repro.util.errors import CompileError


def instrs(src, func="main"):
    return parse_program(src).funcs[func].instrs


def test_implicit_return_appended():
    ins = instrs("func main() { }")
    assert len(ins) == 1 and isinstance(ins[0], IReturn)


def test_assign_compiles_to_single_instr():
    ins = instrs("var g = 0; func main() { g = 1; }")
    assert isinstance(ins[0], IAssign)


def test_if_branch_targets():
    ins = instrs("var g = 0; func main() { if (g) { g = 1; } g = 2; }")
    br = ins[0]
    assert isinstance(br, IBranch)
    assert br.then_target == 1
    assert isinstance(ins[br.else_target], IAssign)  # the g = 2


def test_if_else_skips_else_on_then_path():
    src = "var g = 0; func main() { if (g) { g = 1; } else { g = 2; } g = 3; }"
    ins = instrs(src)
    br = ins[0]
    jump = ins[br.then_target + 0 + 1]  # assign then jump
    assert isinstance(jump, IJump)
    assert isinstance(ins[jump.target], IAssign)


def test_while_shape():
    ins = instrs("var g = 0; func main() { while (g < 3) { g = g + 1; } }")
    br = ins[0]
    assert isinstance(br, IBranch)
    backjump = ins[br.else_target - 1]
    assert isinstance(backjump, IJump) and backjump.target == 0


def test_cobegin_layout():
    ins = instrs("var g = 0; func main() { cobegin { g = 1; } { g = 2; } }")
    cb = ins[0]
    assert isinstance(cb, ICobegin)
    assert len(cb.branch_targets) == 2
    for t in cb.branch_targets:
        assert isinstance(ins[t], IAssign)
    # each branch ends with IThreadEnd
    assert isinstance(ins[cb.branch_targets[1] - 1], IThreadEnd)
    assert isinstance(ins[cb.join_target - 1], IThreadEnd)


def test_return_in_branch_rejected():
    with pytest.raises(CompileError):
        parse_program("func main() { cobegin { return; } { skip; } }")


def test_return_in_function_called_from_branch_ok():
    parse_program(
        "var g = 0; func f() { return 1; } func main() { cobegin { f(); } { skip; } }"
    )


def test_labels_unique_across_program():
    with pytest.raises(CompileError):
        parse_program("var g = 0; func main() { s1: g = 1; s1: g = 2; }")


def test_auto_labels_assigned():
    prog = parse_program("var g = 0; func main() { g = 1; g = 2; }")
    labels = [i.label for i in prog.funcs["main"].instrs if isinstance(i, IAssign)]
    assert len(set(labels)) == 2
    assert all(l.startswith("main#") for l in labels)


def test_malloc_site_is_label():
    prog = parse_program("var p = 0; func main() { m1: p = malloc(2); }")
    ins = prog.funcs["main"].instrs[0]
    assert isinstance(ins, IAlloc) and ins.site == "m1"
    assert prog.sites == ("m1",)


def test_call_arity_checked_statically():
    with pytest.raises(CompileError):
        parse_program("func f(a) { } func main() { f(); }")


def test_call_through_variable_not_arity_checked():
    # dynamic callee: checked at run time instead
    parse_program(
        "func f(a) { } func main() { var g = 0; g = f; g(1); }"
    )


def test_label_registry_info():
    prog = parse_program("var g = 0; func main() { s1: g = 1; }")
    info = prog.labels["s1"]
    assert info.func == "main" and info.kind == "IAssign"


def test_locals_layout_params_first():
    prog = parse_program("func f(a, b) { var c = 0; } func main() { f(1,2); }")
    fc = prog.funcs["f"]
    assert fc.num_params == 2 and fc.num_locals == 3
    assert fc.local_names == ("a", "b", "c")


def test_nested_cobegin_compiles():
    ins = instrs(
        "var g = 0; func main() { cobegin { cobegin { g = 1; } { g = 2; } } { g = 3; } }"
    )
    cobegins = [i for i in ins if isinstance(i, ICobegin)]
    assert len(cobegins) == 2


def test_disassemble_readable():
    prog = parse_program("var g = 3; func main() { g = g + 1; }")
    text = prog.disassemble()
    assert "g=3" in text and "IAssign" in text


def test_num_instrs():
    prog = parse_program("var g = 0; func main() { g = 1; }")
    assert prog.num_instrs() == 2  # assign + implicit return


def test_max_cobegin_width():
    prog = parse_program(
        "var g = 0; func main() { cobegin { g = 1; } { g = 2; } { g = 3; } }"
    )
    assert prog.max_cobegin_width == 3
