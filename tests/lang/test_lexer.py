"""Lexer unit tests."""

import pytest

from repro.lang.lexer import tokenize
from repro.lang.tokens import EOF, IDENT, INT, KEYWORD, OP, PUNCT
from repro.util.errors import LexError


def kinds(src):
    return [t.kind for t in tokenize(src)]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


def test_empty_source_gives_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind == EOF


def test_integer_literal():
    toks = tokenize("42")
    assert toks[0].kind == INT
    assert toks[0].text == "42"


def test_identifier():
    toks = tokenize("foo_bar9")
    assert toks[0].kind == IDENT
    assert toks[0].text == "foo_bar9"


def test_keywords_recognized():
    for kw in ("var", "func", "if", "else", "while", "cobegin", "return",
               "malloc", "assume", "assert", "acquire", "release", "skip",
               "true", "false", "shared", "coend"):
        toks = tokenize(kw)
        assert toks[0].kind == KEYWORD, kw


def test_keyword_prefix_is_identifier():
    toks = tokenize("variable whiles iffy")
    assert all(t.kind == IDENT for t in toks[:-1])


def test_multichar_operators_longest_match():
    assert texts("== != <= >= && ||") == ["==", "!=", "<=", ">=", "&&", "||"]


def test_single_char_operators():
    assert texts("+ - * / % < > ! & =") == list("+-*/%<>!&=")


def test_lt_followed_by_eq_separate():
    # "< =" with a space is two tokens
    assert texts("< =") == ["<", "="]


def test_punctuation():
    assert texts("( ) { } [ ] ; , :") == list("(){}[];,:")


def test_line_comment_skipped():
    assert texts("1 // comment here\n2") == ["1", "2"]


def test_block_comment_skipped():
    assert texts("1 /* anything \n at all */ 2") == ["1", "2"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("1 /* never ends")


def test_line_numbers_tracked():
    toks = tokenize("a\nb\n  c")
    assert toks[0].line == 1
    assert toks[1].line == 2
    assert toks[2].line == 3
    assert toks[2].col == 3


def test_identifier_cannot_start_with_digit():
    with pytest.raises(LexError):
        tokenize("1abc")


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_error_carries_position():
    with pytest.raises(LexError) as exc:
        tokenize("ok\n  @")
    assert exc.value.line == 2


def test_whitespace_variants():
    assert texts("a\tb\r\nc") == ["a", "b", "c"]


def test_adjacent_tokens_without_space():
    assert texts("x=y+1;") == ["x", "=", "y", "+", "1", ";"]


def test_ampersand_single():
    assert texts("&x && y") == ["&", "x", "&&", "y"]


def test_full_statement_token_stream():
    toks = tokenize("s1: x = malloc(2);")
    assert [t.kind for t in toks[:-1]] == [
        IDENT, PUNCT, IDENT, OP, KEYWORD, PUNCT, INT, PUNCT, PUNCT
    ]
