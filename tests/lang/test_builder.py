"""Builder DSL tests: programmatic ASTs compile and behave."""

from repro.lang import builder as B
from repro.lang import compile_program
from repro.semantics import run_program


def test_builder_fig2_equivalent():
    prog_ast = B.program(
        B.globals(A=0, B=0, x=0, y=0),
        B.func("main")(
            B.cobegin(
                [B.assign("A", 1, label="s1"), B.assign("y", B.var("B"), label="s2")],
                [B.assign("B", 1, label="s3"), B.assign("x", B.var("A"), label="s4")],
            ),
        ),
    )
    prog = compile_program(prog_ast)
    assert set(prog.global_names) == {"A", "B", "x", "y"}
    assert "s1" in prog.labels


def test_builder_coercions():
    prog = compile_program(
        B.program(
            B.globals(g=0),
            B.func("main")(
                B.assign("g", B.add("g", 5)),
            ),
        )
    )
    r = run_program(prog)
    assert r.global_value(prog, "g") == 5


def test_builder_control_flow():
    prog = compile_program(
        B.program(
            B.globals(g=0),
            B.func("main")(
                B.while_(B.lt("g", 4), [B.assign("g", B.add("g", 1))]),
                B.if_(B.eq("g", 4), [B.assign("g", 100)], [B.assign("g", -1)]),
            ),
        )
    )
    r = run_program(prog)
    assert r.global_value(prog, "g") == 100


def test_builder_calls_and_return():
    prog = compile_program(
        B.program(
            B.globals(r=0),
            B.func("dbl", "v")(B.ret(B.mul("v", 2))),
            B.func("main")(B.call("dbl", 21, target="r")),
        )
    )
    r = run_program(prog)
    assert r.global_value(prog, "r") == 42


def test_builder_malloc_and_deref():
    prog = compile_program(
        B.program(
            B.globals(p=0, out=0),
            B.func("main")(
                B.malloc("p", 2, label="site_a"),
                B.assign(B.store("p", 1), 9),
                B.assign("out", B.deref("p", 1)),
            ),
        )
    )
    r = run_program(prog)
    assert r.global_value(prog, "out") == 9
    assert prog.sites == ("site_a",)


def test_builder_sync_statements():
    prog = compile_program(
        B.program(
            B.globals(l=0, g=0),
            B.func("main")(
                B.acquire("l"),
                B.assign("g", 1),
                B.release("l"),
                B.assert_(B.eq("g", 1)),
                B.skip(),
            ),
        )
    )
    r = run_program(prog)
    assert r.terminated


def test_builder_cobegin_runs():
    prog = compile_program(
        B.program(
            B.globals(g=0),
            B.func("main")(
                B.cobegin(
                    [B.assign("g", B.add("g", 1))],
                    [B.assign("g", B.add("g", 1))],
                ),
            ),
        )
    )
    r = run_program(prog)
    assert r.terminated
