"""Parser unit tests."""

import pytest

from repro.lang import ast_nodes as A
from repro.lang.parser import parse
from repro.util.errors import ParseError


def first_stmt(src_body: str) -> A.Stmt:
    prog = parse(f"func main() {{ {src_body} }}")
    return prog.funcs[0].body[0]


def expr_of(src: str) -> A.Expr:
    stmt = first_stmt(f"x = {src};")
    assert isinstance(stmt, A.Assign)
    return stmt.expr


# -- top level --------------------------------------------------------------


def test_empty_program():
    prog = parse("")
    assert prog.globals == () and prog.funcs == ()


def test_global_with_init():
    prog = parse("var A = 3;")
    assert prog.globals[0].ident == "A"
    assert isinstance(prog.globals[0].init, A.IntLit)


def test_shared_keyword_accepted():
    prog = parse("shared var A = 0;")
    assert prog.globals[0].ident == "A"


def test_func_params():
    prog = parse("func f(a, b, c) { }")
    assert prog.funcs[0].params == ("a", "b", "c")


def test_top_level_junk_rejected():
    with pytest.raises(ParseError):
        parse("x = 1;")


# -- statements -------------------------------------------------------------


def test_assign():
    stmt = first_stmt("x = 1;")
    assert isinstance(stmt, A.Assign)
    assert isinstance(stmt.target, A.NameLV)


def test_labeled_statement():
    stmt = first_stmt("s1: x = 1;")
    assert stmt.label == "s1"


def test_deref_store():
    stmt = first_stmt("*p = 1;")
    assert isinstance(stmt, A.Assign)
    assert isinstance(stmt.target, A.DerefLV)


def test_index_store():
    stmt = first_stmt("p[2] = 1;")
    assert isinstance(stmt.target, A.DerefLV)
    assert isinstance(stmt.target.index, A.IntLit)


def test_malloc_statement():
    stmt = first_stmt("p = malloc(4);")
    assert isinstance(stmt, A.Malloc)


def test_call_statement_bare():
    stmt = first_stmt("f(1, 2);")
    assert isinstance(stmt, A.CallStmt)
    assert stmt.target is None
    assert len(stmt.args) == 2


def test_call_statement_with_result():
    stmt = first_stmt("x = f();")
    assert isinstance(stmt, A.CallStmt)
    assert isinstance(stmt.target, A.NameLV)


def test_call_through_expression():
    stmt = first_stmt("x = (f)(3);")
    assert isinstance(stmt, A.CallStmt)


def test_nested_call_rejected():
    with pytest.raises(ParseError):
        first_stmt("x = f() + 1;")


def test_call_in_condition_rejected():
    with pytest.raises(ParseError):
        first_stmt("if (f()) { }")


def test_return_forms():
    assert isinstance(first_stmt("return;"), A.Return)
    r = first_stmt("return 1 + 2;")
    assert isinstance(r, A.Return) and r.expr is not None


def test_if_else():
    stmt = first_stmt("if (x) { y = 1; } else { y = 2; }")
    assert isinstance(stmt, A.If)
    assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1


def test_if_without_else():
    stmt = first_stmt("if (x) { y = 1; }")
    assert stmt.else_body == ()


def test_else_if_chain():
    stmt = first_stmt("if (x) { } else if (y) { } else { z = 1; }")
    inner = stmt.else_body[0]
    assert isinstance(inner, A.If)
    assert len(inner.else_body) == 1


def test_while():
    stmt = first_stmt("while (x < 3) { x = x + 1; }")
    assert isinstance(stmt, A.While)


def test_cobegin_two_branches():
    stmt = first_stmt("cobegin { x = 1; } { y = 2; }")
    assert isinstance(stmt, A.Cobegin)
    assert len(stmt.branches) == 2


def test_cobegin_coend_optional():
    stmt = first_stmt("cobegin { x = 1; } coend;")
    assert isinstance(stmt, A.Cobegin)


def test_cobegin_without_branch_rejected():
    with pytest.raises(ParseError):
        first_stmt("cobegin x = 1;")


def test_assume_assert():
    assert isinstance(first_stmt("assume(x == 1);"), A.Assume)
    assert isinstance(first_stmt("assert(x == 1);"), A.Assert)


def test_acquire_release():
    assert isinstance(first_stmt("acquire(l);"), A.Acquire)
    assert isinstance(first_stmt("release(l);"), A.Release)


def test_skip():
    assert isinstance(first_stmt("skip;"), A.Skip)


def test_var_decl_local():
    stmt = first_stmt("var t = 5;")
    assert isinstance(stmt, A.VarDecl)


def test_bare_expression_statement_rejected():
    with pytest.raises(ParseError):
        first_stmt("x + 1;")


def test_assign_to_literal_rejected():
    with pytest.raises(ParseError):
        first_stmt("3 = x;")


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        first_stmt("x = 1")


# -- expressions ------------------------------------------------------------


def test_precedence_mul_over_add():
    e = expr_of("1 + 2 * 3")
    assert isinstance(e, A.Binary) and e.op == "+"
    assert isinstance(e.right, A.Binary) and e.right.op == "*"


def test_precedence_cmp_over_and():
    e = expr_of("a < b && c < d")
    assert e.op == "&&"
    assert e.left.op == "<" and e.right.op == "<"


def test_or_lowest():
    e = expr_of("a && b || c")
    assert e.op == "||"


def test_left_associativity():
    e = expr_of("1 - 2 - 3")
    assert e.op == "-" and isinstance(e.left, A.Binary)
    assert e.left.op == "-"


def test_parens_override():
    e = expr_of("(1 + 2) * 3")
    assert e.op == "*" and e.left.op == "+"


def test_unary_ops():
    e = expr_of("-x")
    assert isinstance(e, A.Unary) and e.op == "-"
    e = expr_of("!x")
    assert e.op == "!"


def test_deref_expr_sugar():
    e = expr_of("*p")
    assert isinstance(e, A.Deref)
    assert isinstance(e.index, A.IntLit) and e.index.value == 0


def test_index_expr():
    e = expr_of("p[i + 1]")
    assert isinstance(e, A.Deref) and isinstance(e.index, A.Binary)


def test_addrof():
    e = expr_of("&g")
    assert isinstance(e, A.AddrOf) and e.ident == "g"


def test_true_false_literals():
    assert expr_of("true").value == 1
    assert expr_of("false").value == 0


def test_double_deref():
    e = expr_of("**p")
    assert isinstance(e, A.Deref) and isinstance(e.base, A.Deref)
