"""Unit tests for the canonicalizer and the schedule-document codec."""

from __future__ import annotations

import json

import pytest

from repro.explore import explore
from repro.programs.corpus import CORPUS
from repro.schedules import (
    SCHEMA_VERSION,
    canonicalize,
    dumps_document,
    generate,
    replay_schedule,
    schedule_document,
    schedule_trace_records,
    schedules_from_document,
    verify_schedule,
    write_schedule_perfetto,
    write_schedules,
)
from repro.schedules.canonical import _Event
from repro.util.errors import ScheduleError


def _ev(pid, label, reads=(), writes=()):
    return _Event(
        pid=pid,
        labels=(label,),
        reads=frozenset(reads),
        writes=frozenset(writes),
    )


# ---------------------------------------------------------------------------
# canonicalize
# ---------------------------------------------------------------------------


def test_canonicalize_is_reordering_invariant():
    """Two interleavings of the same trace class canonicalize to the
    same step sequence (commuting the independent adjacent pair)."""
    a = _ev((0,), "a", writes=["x"])
    b = _ev((1,), "b", writes=["y"])  # independent of a
    c = _ev((1,), "c", reads=["x"])  # same pid as b, conflicts with a
    assert canonicalize([a, b, c]) == canonicalize([b, a, c])


def test_canonicalize_respects_dependence():
    """Dependent events keep their order even when the lexicographic
    key would prefer to swap them."""
    w = _ev((1,), "w", writes=["x"])
    r = _ev((0,), "r", reads=["x"])  # conflicts: must stay after w
    steps = canonicalize([w, r])
    assert [s.pid for s in steps] == [(1,), (0,)]


def test_canonicalize_orders_independent_events_lexicographically():
    lo = _ev((0,), "lo", writes=["x"])
    hi = _ev((2,), "hi", writes=["y"])
    assert [s.pid for s in canonicalize([hi, lo])] == [(0,), (2,)]


def test_canonicalize_same_pid_keeps_program_order():
    first = _ev((0,), "z-later-label")
    second = _ev((0,), "a-earlier-label")
    steps = canonicalize([first, second])
    assert [s.labels for s in steps] == [("z-later-label",), ("a-earlier-label",)]


# ---------------------------------------------------------------------------
# generate() input validation
# ---------------------------------------------------------------------------


def test_generate_rejects_truncated_exploration():
    from repro.explore import ExploreOptions

    result = explore(
        CORPUS["philosophers_3"](),
        options=ExploreOptions(policy="full", max_configs=10),
    )
    assert result.stats.truncated
    with pytest.raises(ScheduleError, match="truncated"):
        generate(result)


def test_generate_rejects_bad_arguments():
    result = explore(CORPUS["fig2_shasha_snir"](), "stubborn", coarsen=True)
    with pytest.raises(ScheduleError):
        generate(result, sample=0)
    with pytest.raises(ScheduleError):
        generate(result, max_paths=0)
    with pytest.raises(ScheduleError):
        generate(result, max_schedules=0)


# ---------------------------------------------------------------------------
# document round-trip
# ---------------------------------------------------------------------------


def test_document_round_trips_and_replays(tmp_path):
    program = CORPUS["deadlock_pair"]()
    result = explore(program, "stubborn", coarsen=True, sleep=True)
    sset = generate(result)
    path = tmp_path / "schedules.json"
    write_schedules(str(path), sset)

    document = json.loads(path.read_text())
    assert document["schema"] == SCHEMA_VERSION
    rebuilt = schedules_from_document(document)
    assert len(rebuilt) == len(sset.schedules)
    for original, loaded in zip(sset.schedules, rebuilt):
        assert loaded.steps == original.steps
        assert loaded.final_digest == original.final_digest
        # a schedule loaded from JSON replays like the in-memory one
        verify_schedule(program, loaded, opts=result.options.step)

    # serialization is canonical: re-serializing the parsed document
    # reproduces the bytes
    assert dumps_document(document) == path.read_text()


def test_malformed_documents_raise():
    with pytest.raises(ScheduleError, match="JSON object"):
        schedules_from_document([1, 2])
    with pytest.raises(ScheduleError, match="unsupported schedule schema"):
        schedules_from_document({"schema": "repro.schedules/999"})
    with pytest.raises(ScheduleError, match="malformed"):
        schedules_from_document(
            {"schema": SCHEMA_VERSION, "schedules": [{"steps": "oops"}]}
        )


def test_replay_divergence_is_typed():
    """Tampering with a schedule's digest turns replay into a typed
    ScheduleError, not a wrong-but-silent success."""
    program = CORPUS["fig2_shasha_snir"]()
    result = explore(program, "stubborn", coarsen=True)
    sset = generate(result)
    document = schedule_document(sset)
    document["schedules"][0]["final_digest"] = "0x0000000000000bad"
    bad = schedules_from_document(document)[0]
    replay_schedule(program, bad, opts=result.options.step)  # steps still run
    with pytest.raises(ScheduleError, match="digest"):
        verify_schedule(program, bad, opts=result.options.step)


# ---------------------------------------------------------------------------
# Perfetto export
# ---------------------------------------------------------------------------


def test_perfetto_export_one_track_per_schedule(tmp_path):
    result = explore(
        CORPUS["philosophers_3"](), "stubborn", coarsen=True, sleep=True
    )
    sset = generate(result)
    records = schedule_trace_records(sset)
    assert {r["shard"] for r in records} == set(range(len(sset.schedules)))
    assert all(r["kind"] == "span" for r in records)

    path = tmp_path / "schedules.perfetto.json"
    write_schedule_perfetto(str(path), sset)
    document = json.loads(path.read_text())
    names = {
        e["args"]["name"]
        for e in document["traceEvents"]
        if e.get("ph") == "M" and e["name"] == "thread_name" and e["tid"] > 0
    }
    assert names == {f"schedule-{k}" for k in range(len(sset.schedules))}


def test_trace_records_respect_limit():
    result = explore(
        CORPUS["philosophers_3"](), "stubborn", coarsen=True, sleep=True
    )
    sset = generate(result)
    assert len(sset.schedules) > 2
    records = schedule_trace_records(sset, limit=2)
    assert {r["shard"] for r in records} == {0, 1}
