"""Fault drills for the ``schedules`` service op.

Same contract as the submit drills (tests/serve/test_chaos_drills.py):
under every injected fault the client gets a correct schedule document,
a clean typed error, or a resumable checkpoint — never a wrong answer.
The extra stake here is the *derived* payload: the schedule set is
generated after exploration and replay-verified in the worker before
publishing, so a resumed or recomputed job must reproduce the
uninterrupted run's document byte for byte, and a corrupted cached
entry must quarantine to a recompute, never decode into garbage
schedules.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.explore import ExploreOptions, explore
from repro.programs.corpus import CORPUS
from repro.resilience import chaos
from repro.schedules import generate, schedule_document
from repro.serve import ReproServer, ResultStore, ServeOptions

PROGRAM = {"kind": "corpus", "name": "philosophers_3"}
OPTIONS = {"policy": "stubborn", "coarsen": True, "sleep": True}
REQUEST = {
    "op": "schedules",
    "program": PROGRAM,
    "options": OPTIONS,
    "schedules": {"sample": 5, "seed": 11},
}


@pytest.fixture(autouse=True)
def no_leaked_injector():
    assert chaos.active() is None
    yield
    leaked = chaos.active() is not None
    chaos.uninstall()
    assert not leaked, "test left a chaos injector installed"


def _clean_document() -> dict:
    """The uninterrupted run's answer, computed without the service."""
    result = explore(
        CORPUS["philosophers_3"](),
        options=ExploreOptions(policy="stubborn", coarsen=True, sleep=True),
    )
    return schedule_document(generate(result, sample=5, seed=11))


def _server(tmp_path, **kw) -> ReproServer:
    kw.setdefault("checkpoint_every", 20)
    return ReproServer(ResultStore(str(tmp_path / "store")), ServeOptions(**kw))


def _ask(server, req=REQUEST) -> dict:
    async def main():
        return await asyncio.wait_for(server.handle_request(dict(req)), 120)

    return asyncio.run(main())


def test_killed_worker_resumes_to_identical_schedule_set(tmp_path):
    """An OOM-killed schedules worker restarts from its exploration
    checkpoint; the resumed job's schedule document matches the
    uninterrupted run exactly."""
    server = _server(tmp_path)
    with chaos.injected("serve-worker-kill", shared=True, times=1) as inj:
        response = _ask(server)
    assert inj.armed_fired("serve-worker-kill") == 1
    assert response["ok"]
    assert response["schedules"] == _clean_document()
    assert server.counters["serve.worker_restarts"] == 1
    assert server.store.pending_jobs() == []


def test_kill_every_attempt_then_clean_retry_matches(tmp_path):
    """Restart budget exhausted → typed resumable error; with the fault
    gone the same server finishes the job and the answer is exact."""
    server = _server(tmp_path, max_restarts=1)
    with chaos.injected("serve-worker-kill", shared=True, times=-1):
        response = _ask(server)
    assert response["ok"] is False
    assert response["error"]["type"] == "worker-failed"
    assert response["resumable"] is True
    assert len(server.store.pending_jobs()) == 1
    retry = _ask(server)
    assert retry["ok"]
    assert retry["schedules"] == _clean_document()
    assert server.store.pending_jobs() == []


def test_store_io_fault_degrades_to_miss_not_wrong_schedules(tmp_path):
    """Failed durable writes must not fail the request or dent the
    document; the next identical request recomputes (a miss)."""
    server = _server(tmp_path)
    clean = _clean_document()
    with chaos.injected("store-io", times=-1):
        r1 = _ask(server)
    assert r1["ok"]
    assert r1["schedules"] == clean
    assert server.store.put_failures > 0
    assert server.store.get_result(r1["key"]) is None
    # disk healthy again: recompute, persist, then replay from store
    r2 = _ask(server)
    assert r2["ok"] and r2["cached"] is False
    assert r2["schedules"] == clean
    r3 = _ask(server)
    assert r3["cached"] is True
    assert r3["schedules"] == clean


def test_store_corrupt_quarantines_cached_schedules_to_a_miss(tmp_path):
    """Bit-rot on the persisted schedules entry: the read path must
    quarantine and recompute — damaged bytes never reach a response."""
    server = _server(tmp_path)
    clean = _clean_document()
    # after=1: let the pending-record write through so the flip lands
    # on the result payload holding the schedule document
    with chaos.injected("store-corrupt", after=1, times=1):
        r1 = _ask(server)
    assert r1["ok"]
    assert r1["schedules"] == clean  # response came from the live run
    r2 = _ask(server)
    assert r2["ok"]
    assert r2["cached"] is False  # quarantined, not replayed
    assert r2["schedules"] == clean
    assert server.store.quarantined >= 1
    r3 = _ask(server)
    assert r3["cached"] is True
    assert r3["schedules"] == clean


def test_schedules_and_submit_keys_do_not_collide(tmp_path):
    """A schedules job and a plain submit of the same program+options
    occupy distinct store keys: caching one never serves the other's
    payload shape."""
    server = _server(tmp_path)
    plain = {"op": "submit", "program": PROGRAM, "options": OPTIONS}
    r1 = _ask(server, plain)
    r2 = _ask(server)
    assert r1["ok"] and r2["ok"]
    assert r1["key"] != r2["key"]
    assert "schedules" not in r1
    assert r2["schedules"] == _clean_document()
    # both replay independently from the store
    assert _ask(server, plain)["cached"] is True
    assert _ask(server)["cached"] is True
