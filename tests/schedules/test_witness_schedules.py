"""Witness-path schedules: a ``witness.found`` counterexample must be a
*checked* counterexample.

Two layers under test:

* the :func:`repro.analyses.witness.outcome_witness` regression — its
  old filter was "any terminal whose fault is None", which let a
  **deadlocked** configuration with matching globals answer a "can the
  program finish with these values?" query.  Only TERMINATED
  configurations may qualify.
* :func:`repro.schedules.witness.verified_witness_schedule` — the
  emitted schedule replays to the explorer-recorded digest AND the
  witness predicate actually holds on the replayed configuration
  (deadlocks deadlock, faults fault, outcomes terminate with the
  claimed globals).
"""

from __future__ import annotations

import pytest

from repro.analyses.witness import (
    deadlock_witness,
    fault_witness,
    outcome_witness,
)
from repro.explore import ExploreOptions, explore
from repro.programs.corpus import CORPUS
from repro.schedules import (
    check_predicate,
    replay_schedule,
    verified_witness_schedule,
    witness_schedule,
)
from repro.semantics.config import stable_digest
from repro.util.errors import ScheduleError


def _explore(name, **kw):
    return explore(CORPUS[name](), options=ExploreOptions(**kw))


# ---------------------------------------------------------------------------
# the outcome_witness regression
# ---------------------------------------------------------------------------


def test_outcome_witness_rejects_deadlocked_configs():
    """deadlock_pair's only deadlock carries globals la=1,lb=1,done=0.
    No *terminating* execution reaches those values, so the witness
    query must come back empty — the old filter returned the deadlock
    path here."""
    result = _explore("deadlock_pair", policy="full")
    assert outcome_witness(result, la=1, lb=1, done=0) is None


def test_outcome_witness_still_finds_real_outcomes():
    result = _explore("deadlock_pair", policy="full")
    w = outcome_witness(result, la=0, lb=0, done=1)
    assert w is not None
    assert result.graph.terminal[w.target] == "terminated"


# ---------------------------------------------------------------------------
# verified witness schedules
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("coarsen", [False, True])
def test_deadlock_witness_schedule_verifies(coarsen):
    result = _explore(
        "deadlock_pair", policy="stubborn", coarsen=coarsen, sleep=True
    )
    w = deadlock_witness(result)
    assert w is not None
    schedule = verified_witness_schedule(result, w, "deadlock")
    # independent replay: the canonical schedule reaches the digest
    final = replay_schedule(
        result.program, schedule, opts=result.options.step
    )
    assert stable_digest(final) == schedule.final_digest
    assert final.fault is None and not final.is_terminated


@pytest.mark.parametrize("coarsen", [False, True])
def test_fault_witness_schedule_verifies(coarsen):
    result = _explore("peterson_broken", policy="stubborn", coarsen=coarsen)
    w = fault_witness(result)
    assert w is not None
    schedule = verified_witness_schedule(result, w, "fault")
    final = replay_schedule(
        result.program, schedule, opts=result.options.step
    )
    assert final.fault is not None


def test_outcome_witness_schedule_verifies():
    result = _explore("deadlock_pair", policy="stubborn", coarsen=True)
    w = outcome_witness(result, done=1)
    assert w is not None
    schedule = verified_witness_schedule(result, w, "outcome", done=1)
    final = replay_schedule(
        result.program, schedule, opts=result.options.step
    )
    assert final.is_terminated
    assert final.globals[result.program.global_index("done")] == 1


def test_predicate_mismatch_raises():
    """A schedule reaching the wrong kind of configuration is rejected:
    the deadlock predicate must not accept a terminated config, nor the
    outcome predicate a deadlocked one."""
    result = _explore("deadlock_pair", policy="full")
    term = outcome_witness(result, done=1)
    dead = deadlock_witness(result)
    assert term is not None and dead is not None

    with pytest.raises(ScheduleError, match="terminated instead"):
        verified_witness_schedule(result, term, "deadlock")
    with pytest.raises(ScheduleError, match="did not terminate"):
        verified_witness_schedule(result, dead, "outcome", done=1)
    with pytest.raises(ScheduleError, match="unknown witness kind"):
        verified_witness_schedule(result, term, "nonsense")


def test_check_predicate_outcome_value_mismatch():
    result = _explore("deadlock_pair", policy="full")
    w = outcome_witness(result, done=1)
    schedule = witness_schedule(result, w)
    final = replay_schedule(result.program, schedule)
    with pytest.raises(ScheduleError, match="done=1"):
        check_predicate(result.program, final, "outcome", done=7)
