"""The replay differential: every emitted canonical schedule, replayed
through the interpreter, must reach the exact final configuration the
explorer recorded — across every corpus program, the three policy
settings, and both backends.

Three invariants per (program, policy, backend) cell:

1. **replay equality** — ``verify_set`` re-executes each schedule with
   the plain interpreter (no explorer involved) and compares the
   reached configuration's ``stable_digest`` against the digest the
   explorer stored for that schedule's terminal; any divergence raises.
2. **backend identity** — the serialized schedule document from the
   serial backend is *byte-identical* to the one from the parallel
   backend at jobs=2 (the canonical form depends only on the trace
   equivalence classes, which all sound explorations share).
3. **run-to-run identity** — generating twice from the same exploration
   (and from a fresh exploration) yields the same bytes.

The ``full`` policy enumerates interleavings rather than classes, so
its path walk explodes combinatorially on the bigger programs; the
modest ``max_paths`` cap below keeps it bounded.  Truncated enumeration
is still deterministic (the DFS order is fixed), so the byte-identity
assertions hold regardless.
"""

from __future__ import annotations

import pytest

from repro.explore import ExploreOptions, explore
from repro.programs.corpus import CORPUS
from repro.schedules import (
    dumps_document,
    generate,
    schedule_document,
    verify_set,
)

#: (policy, sleep) — always coarsened: the interesting replay case is
#: multi-action blocks, and it keeps `full` tractable corpus-wide.
COMBOS = (("full", False), ("stubborn", False), ("stubborn", True))

MAX_CONFIGS = 20_000
MAX_PATHS = 2_000
MAX_SCHEDULES = 256


def _options(policy: str, sleep: bool, jobs: int) -> ExploreOptions:
    return ExploreOptions(
        policy=policy,
        coarsen=True,
        sleep=sleep,
        max_configs=MAX_CONFIGS,
        backend="parallel" if jobs > 1 else "serial",
        jobs=jobs,
    )


def _generate(result):
    return generate(result, max_paths=MAX_PATHS, max_schedules=MAX_SCHEDULES)


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_replay_reaches_recorded_digest(name):
    """Invariants 1+2: replay equality on both backends, and byte-equal
    documents between them, for every policy combo."""
    program = CORPUS[name]()
    for policy, sleep in COMBOS:
        docs = []
        for jobs in (1, 2):
            result = explore(program, options=_options(policy, sleep, jobs))
            assert not result.stats.truncated, (
                f"{name}/{policy}: raise MAX_CONFIGS for this test"
            )
            sset = _generate(result)
            assert sset.schedules, f"{name}/{policy}: empty schedule set"
            # replays every schedule; ScheduleError on any digest
            # mismatch or mid-replay divergence
            replays = verify_set(result, sset)
            assert replays == len(sset.schedules)
            docs.append(dumps_document(schedule_document(sset)))
        assert docs[0] == docs[1], (
            f"{name}/{policy}{'+sleep' if sleep else ''}: schedule "
            f"document differs between serial and parallel backends"
        )


@pytest.mark.parametrize("name", ["fig2_shasha_snir", "deadlock_pair",
                                  "philosophers_3", "peterson_broken"])
def test_generation_is_deterministic(name):
    """Invariant 3: same exploration → same bytes; fresh exploration →
    same bytes."""
    program = CORPUS[name]()
    opts = _options("stubborn", True, 1)
    result = explore(program, options=opts)
    first = dumps_document(schedule_document(_generate(result)))
    again = dumps_document(schedule_document(_generate(result)))
    fresh = dumps_document(
        schedule_document(_generate(explore(program, options=opts)))
    )
    assert first == again == fresh


def test_schedule_statuses_cover_terminal_kinds():
    """Deadlocking programs must emit deadlock-status schedules and
    faulting programs fault-status ones — the generator covers every
    terminal class, not just clean terminations."""
    result = explore(
        CORPUS["deadlock_pair"](), options=_options("stubborn", True, 1)
    )
    statuses = {s.status for s in _generate(result).schedules}
    assert "deadlock" in statuses and "terminated" in statuses

    result = explore(
        CORPUS["peterson_broken"](), options=_options("stubborn", True, 1)
    )
    assert "fault" in {s.status for s in _generate(result).schedules}
