"""Resume equivalence: a run interrupted at a checkpoint and resumed is
indistinguishable from the uninterrupted run.

Exploration is deterministic, so this is an exact-equality property —
graph shape, result stores, terminal counts, and cumulative stats all
match.  The acceptance criterion requires it for *every* corpus program,
so the main test parametrizes over the whole bundled corpus.
"""

from __future__ import annotations

import pytest

from repro.explore import ExploreOptions, explore
from repro.programs.corpus import CORPUS
from repro.resilience.checkpoint import CheckpointError, Checkpointer
from repro.semantics.step import StepOptions


def _signature(result):
    """Everything observable about a finished exploration."""
    g = result.graph
    s = result.stats
    return {
        "stores": result.final_stores(),
        "faults": result.fault_messages(),
        "configs": g.num_configs,
        "edges": g.num_edges,
        "edge_set": {(e.src, e.dst, e.labels) for e in g.edges},
        "terminal": dict(g.terminal),
        "num_terminated": s.num_terminated,
        "num_deadlocks": s.num_deadlocks,
        "num_faults": s.num_faults,
        "expansions": s.expansions,
        "actions": s.actions_executed,
    }


def _interrupt_and_resume(program, opts, tmp_path, *, every=3, stop_after=1):
    """Run to the *stop_after*-th checkpoint, then resume to completion.
    Returns (resumed_result, interrupted_result) — or (None, full_run)
    when the search finished before a checkpoint fired."""
    path = str(tmp_path / "snap.ckpt")
    cp = Checkpointer(path, every=every, stop_after=stop_after)
    first = explore(program, options=opts, checkpointer=cp)
    if not first.stats.truncated:
        return None, first  # too small to interrupt at this cadence
    assert first.stats.truncation_reason == "interrupted"
    assert cp.written >= stop_after
    resumed = explore(program, options=opts, resume_from=path)
    assert resumed.stats.resumed
    return resumed, first


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_resume_matches_uninterrupted_bfs(name, tmp_path):
    program = CORPUS[name]()
    opts = ExploreOptions(policy="stubborn", max_configs=30_000)
    reference = explore(program, options=opts)
    assert not reference.stats.truncated, f"{name}: corpus program truncated"

    resumed, first = _interrupt_and_resume(program, opts, tmp_path)
    if resumed is None:
        # finished before the first checkpoint: nothing to interrupt,
        # but the run itself must already equal the reference
        assert _signature(first) == _signature(reference)
        return
    assert first.stats.expansions <= reference.stats.expansions
    sig, ref = _signature(resumed), _signature(reference)
    assert sig == ref, f"{name}: resumed run diverged from uninterrupted"


@pytest.mark.parametrize(
    "opts",
    [
        ExploreOptions(policy="full"),
        ExploreOptions(policy="full", coarsen=True),
        ExploreOptions(policy="stubborn-proc", coarsen=True),
        ExploreOptions(policy="full", sleep=True),
        ExploreOptions(policy="stubborn", sleep=True, coarsen=True),
    ],
    ids=lambda o: o.describe(),
)
def test_resume_across_drivers_and_policies(opts, tmp_path):
    """Both drivers (BFS and sleep-set DFS), all policy knobs."""
    program = CORPUS["philosophers_3"]()
    reference = explore(program, options=opts)
    resumed, _ = _interrupt_and_resume(program, opts, tmp_path)
    assert resumed is not None, "philosophers_3 must outlive one checkpoint"
    assert _signature(resumed) == _signature(reference)


@pytest.mark.parametrize("stop_after", [1, 2, 5])
def test_resume_from_different_depths(stop_after, tmp_path):
    """Pull the plug earlier or later: the answer never changes."""
    program = CORPUS["peterson"]()
    opts = ExploreOptions(policy="full")
    reference = explore(program, options=opts)
    resumed, _ = _interrupt_and_resume(
        program, opts, tmp_path, every=7, stop_after=stop_after
    )
    assert resumed is not None
    assert _signature(resumed) == _signature(reference)


def test_resume_chain(tmp_path):
    """Interrupt, resume, interrupt the resumed run, resume again."""
    program = CORPUS["philosophers_3"]()
    opts = ExploreOptions(policy="stubborn")
    reference = explore(program, options=opts)

    path = str(tmp_path / "snap.ckpt")
    first = explore(
        program,
        options=opts,
        checkpointer=Checkpointer(path, every=3, stop_after=1),
    )
    assert first.stats.truncation_reason == "interrupted"
    second = explore(
        program,
        options=opts,
        resume_from=path,
        checkpointer=Checkpointer(path, every=3, stop_after=2),
    )
    assert second.stats.resumed
    assert second.stats.truncation_reason == "interrupted"
    final = explore(program, options=opts, resume_from=path)
    assert final.stats.resumed
    assert _signature(final) == _signature(reference)


def test_resume_rejects_wrong_program(tmp_path):
    opts = ExploreOptions(policy="stubborn")
    path = str(tmp_path / "snap.ckpt")
    explore(
        CORPUS["philosophers_3"](),
        options=opts,
        checkpointer=Checkpointer(path, every=3, stop_after=1),
    )
    with pytest.raises(CheckpointError, match="different program"):
        explore(CORPUS["mutex_counter"](), options=opts, resume_from=path)


def test_resume_rejects_wrong_options(tmp_path):
    path = str(tmp_path / "snap.ckpt")
    explore(
        CORPUS["philosophers_3"](),
        options=ExploreOptions(policy="stubborn"),
        checkpointer=Checkpointer(path, every=3, stop_after=1),
    )
    with pytest.raises(CheckpointError, match="do not match"):
        explore(
            CORPUS["philosophers_3"](),
            options=ExploreOptions(policy="full"),
            resume_from=path,
        )


def test_resume_rejects_wrong_driver(tmp_path):
    path = str(tmp_path / "snap.ckpt")
    explore(
        CORPUS["philosophers_3"](),
        options=ExploreOptions(policy="full"),
        checkpointer=Checkpointer(path, every=3, stop_after=1),
    )
    with pytest.raises(CheckpointError, match="driver"):
        explore(
            CORPUS["philosophers_3"](),
            options=ExploreOptions(policy="full", sleep=True),
            resume_from=path,
        )


def test_resume_may_raise_budget(tmp_path):
    """Budgets are excluded from the options key on purpose: the whole
    point of resuming is often to continue with a bigger budget."""
    program = CORPUS["philosophers_3"]()
    path = str(tmp_path / "snap.ckpt")
    small = explore(
        program,
        options=ExploreOptions(policy="stubborn", max_configs=40),
        checkpointer=Checkpointer(path, every=3, stop_after=1),
    )
    assert small.stats.truncated
    big = explore(
        program,
        options=ExploreOptions(policy="stubborn", max_configs=100_000),
        resume_from=path,
    )
    assert not big.stats.truncated
    reference = explore(program, "stubborn")
    assert big.final_stores() == reference.final_stores()


def test_resume_preserves_step_options_key(tmp_path):
    """StepOptions participate in the options key."""
    program = CORPUS["philosophers_3"]()
    path = str(tmp_path / "snap.ckpt")
    explore(
        program,
        options=ExploreOptions(
            policy="stubborn", step=StepOptions(track_procstrings=True)
        ),
        checkpointer=Checkpointer(path, every=3, stop_after=1),
    )
    with pytest.raises(CheckpointError, match="do not match"):
        explore(
            program,
            options=ExploreOptions(policy="stubborn"),
            resume_from=path,
        )
