"""The fault injector itself: arming semantics and engine coverage.

The headline test at the bottom is the acceptance criterion for the
whole harness: with a fault armed at *every* point, at every offset,
``explore_resilient`` never raises.
"""

from __future__ import annotations

import pytest

from repro.programs import paper
from repro.resilience import Budgets, chaos, explore_resilient
from repro.resilience.chaos import ChaosFault, FaultInjector
from repro.util.errors import ReproError


def test_unknown_point_rejected():
    with pytest.raises(ValueError, match="unknown failure point"):
        FaultInjector().arm("not-a-point")


def test_kick_noop_without_injector():
    assert chaos.active() is None
    chaos.kick("eval")  # no injector installed: must be silent


def test_unarmed_point_does_not_fire():
    inj = FaultInjector()
    inj.arm("eval")
    inj.kick("selector")  # armed "eval", kicked "selector"
    assert inj.fired == {}


def test_fires_once_by_default():
    inj = FaultInjector()
    inj.arm("eval")
    with pytest.raises(ChaosFault, match="injected fault at 'eval'"):
        inj.kick("eval")
    inj.kick("eval")  # spent
    assert inj.fired == {"eval": 1}


def test_after_skips_leading_kicks():
    inj = FaultInjector()
    inj.arm("observer", after=2)
    inj.kick("observer")
    inj.kick("observer")
    with pytest.raises(ChaosFault):
        inj.kick("observer")
    assert inj.fired == {"observer": 1}


def test_times_unlimited():
    inj = FaultInjector()
    inj.arm("selector", times=-1)
    for _ in range(5):
        with pytest.raises(ChaosFault):
            inj.kick("selector")
    assert inj.fired == {"selector": 5}


def test_injected_context_installs_and_uninstalls():
    with chaos.injected("eval") as inj:
        assert chaos.active() is inj
        with pytest.raises(ChaosFault):
            chaos.kick("eval")
    assert chaos.active() is None


def test_chaosfault_is_not_a_repro_error():
    # Injected faults simulate internal bugs: they must hit the generic
    # `except Exception` guards, not the typed ReproError paths.
    assert not issubclass(ChaosFault, ReproError)


@pytest.mark.parametrize("point", chaos.POINTS)
@pytest.mark.parametrize("after", [0, 1, 3])
def test_explore_resilient_survives_any_fault(point, after, tmp_path):
    """Acceptance: `explore_resilient` never raises, whichever point
    fires and however deep into the run it fires."""
    program = paper.mutex_counter()
    with chaos.injected(point, after=after, times=-1):
        rr = explore_resilient(program, budgets=Budgets(max_configs=5_000))
    result = rr.result
    s = result.stats
    if point == "selector":
        # the full rung has no selector; the run completes exactly there
        assert rr.exact and rr.rung == "full"
    elif point == "eval":
        # every expansion crashes on every rung: the ladder must still
        # hand back an answer (the abstract fold, or a truthful zero)
        assert not rr.exact
        assert s.engine_faults > 0
        assert s.truncation_reason == "internal-error"
        assert rr.trail  # the escalation trail names every hop
    elif point == "observer":
        # no observers attached here: the kick site never runs
        assert rr.exact
    elif point == "checkpoint":
        # no checkpointer attached: the kick site never runs
        assert rr.exact


def test_explore_resilient_survives_all_points_at_once():
    program = paper.mutex_counter()
    with chaos.injected(*chaos.POINTS, times=-1):
        rr = explore_resilient(program, budgets=Budgets(max_configs=5_000))
    assert rr.result is not None
